//! `x10-apgas` — umbrella crate of the Rust reproduction of *"X10 and
//! APGAS at Petascale"* (Tardieu et al., PPoPP 2014).
//!
//! This crate re-exports the whole stack so applications can depend on one
//! name:
//!
//! * [`apgas`] — the APGAS runtime: places, activities, the scalable
//!   `finish` protocols, teams, clocks, place groups, global refs, RDMA
//!   rails (paper §2–§3);
//! * [`x10rt`] — the transport layer, registered segments, congruent
//!   memory allocator (§3.3);
//! * [`glb`] — lifeline-based global load balancing (§3.4, §6);
//! * [`uts`] — the Unbalanced Tree Search benchmark (§6);
//! * [`kernels`] — HPL, FFT, RandomAccess, Stream, K-Means,
//!   Smith-Waterman, Betweenness Centrality (§5, §7);
//! * [`p775`] — the Power 775 machine/interconnect model (§4);
//! * [`obs`] — the observability layer: metrics registry, event tracing,
//!   chrome-trace export (see OBSERVABILITY.md).
//!
//! Start with the `quickstart` example (`cargo run --release --example
//! quickstart`), then see DESIGN.md for the system inventory and
//! EXPERIMENTS.md for how every table and figure of the paper is
//! regenerated.

pub use apgas;
pub use glb;
pub use kernels;
pub use obs;
pub use p775;
pub use uts;
pub use x10rt;

pub use apgas::{
    launch, Clock, Config, Ctx, FinishKind, GlobalRail, GlobalRef, PlaceGroup, PlaceId,
    PlaceLocalHandle, Runtime, Team, TeamOp,
};
