//! Property-based tests (proptest) on the core invariants:
//! * the finish protocols detect termination exactly, for *random* spawn
//!   DAGs, under every applicable pragma;
//! * UTS bags conserve work under arbitrary split/merge/process schedules;
//! * team collectives equal their local folds for random inputs;
//! * delta merging (FINISH_DENSE hop aggregation) is order-insensitive.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use x10_apgas::{Config, FinishKind, PlaceId, Runtime};

/// A random spawn tree: each node runs at a place and spawns children.
#[derive(Clone, Debug)]
struct SpawnNode {
    place: u8,
    children: Vec<SpawnNode>,
}

fn spawn_tree(depth: u32) -> impl Strategy<Value = SpawnNode> {
    let leaf = (0u8..6).prop_map(|place| SpawnNode {
        place,
        children: vec![],
    });
    leaf.prop_recursive(depth, 24, 3, |inner| {
        ((0u8..6), prop::collection::vec(inner, 0..3))
            .prop_map(|(place, children)| SpawnNode { place, children })
    })
}

fn count_nodes(n: &SpawnNode) -> u64 {
    1 + n.children.iter().map(count_nodes).sum::<u64>()
}

fn run_node(ctx: &apgas::Ctx, node: SpawnNode, hits: Arc<AtomicU64>) {
    hits.fetch_add(1, Ordering::Relaxed);
    for child in node.children {
        let h = hits.clone();
        let target = PlaceId(child.place as u32 % ctx.num_places() as u32);
        ctx.at_async(target, move |c| run_node(c, child, h));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn default_finish_counts_random_dags(tree in spawn_tree(3)) {
        let want = count_nodes(&tree);
        let rt = Runtime::new(Config::new(6).places_per_host(2));
        let got = rt.run(move |ctx| {
            let hits = Arc::new(AtomicU64::new(0));
            let h = hits.clone();
            ctx.finish(|c| {
                let target = PlaceId(tree.place as u32 % c.num_places() as u32);
                let t = tree.clone();
                c.at_async(target, move |cc| run_node(cc, t, h));
            });
            hits.load(Ordering::Relaxed)
        });
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dense_finish_counts_random_dags(tree in spawn_tree(3)) {
        let want = count_nodes(&tree);
        let rt = Runtime::new(Config::new(6).places_per_host(2));
        let got = rt.run(move |ctx| {
            let hits = Arc::new(AtomicU64::new(0));
            let h = hits.clone();
            ctx.finish_pragma(FinishKind::Dense, |c| {
                let target = PlaceId(tree.place as u32 % c.num_places() as u32);
                let t = tree.clone();
                c.at_async(target, move |cc| run_node(cc, t, h));
            });
            hits.load(Ordering::Relaxed)
        });
        prop_assert_eq!(got, want);
    }

    #[test]
    fn uts_bag_conserves_work_under_random_schedules(
        ops in prop::collection::vec(0u8..3, 1..60),
        depth in 4u32..7,
    ) {
        use glb::TaskBag;
        let tree = uts::GeoTree::paper(depth);
        let want = uts::traverse(&tree).nodes;
        let mut bags = vec![uts::UtsBag::root(tree)];
        for op in ops {
            match op {
                0 => {
                    // process a chunk on a random-ish bag (first non-empty)
                    if let Some(b) = bags.iter_mut().find(|b| !b.is_empty()) {
                        b.process(7);
                    }
                }
                1 => {
                    // split the fullest bag
                    if let Some(b) = bags.iter_mut().max_by_key(|b| b.intervals().len()) {
                        if let Some(loot) = b.split() {
                            bags.push(loot);
                        }
                    }
                }
                _ => {
                    // merge the last bag into the first
                    if bags.len() > 1 {
                        let loot = bags.pop().unwrap();
                        bags[0].merge(loot);
                    }
                }
            }
        }
        // drain everything
        let mut total = 0;
        for mut b in bags {
            while b.process(4096) > 0 {}
            total += b.take_result().nodes;
        }
        prop_assert_eq!(total, want);
    }

    #[test]
    fn team_allreduce_equals_local_fold(values in prop::collection::vec(-1e6f64..1e6, 5)) {
        let want: f64 = values.iter().sum();
        let rt = Runtime::new(Config::new(5));
        let vals = values.clone();
        let got = rt.run(move |ctx| {
            let team = apgas::Team::world(ctx);
            let out = Arc::new(parking_lot::Mutex::new(0.0));
            let o = out.clone();
            apgas::PlaceGroup::world(ctx).broadcast(ctx, move |c| {
                let mine = vals[c.here().index()];
                let sum = team.allreduce(c, mine, |a, b| a + b);
                if c.here().index() == 0 {
                    *o.lock() = sum;
                }
            });
            let r = *out.lock();
            r
        });
        prop_assert!((got - want).abs() < 1e-6 * want.abs().max(1.0));
    }

    #[test]
    fn dense_delta_merge_is_order_insensitive(
        edges in prop::collection::vec((0u32..8, 0u32..8, 1u64..5), 1..12),
        perm_seed in 0u64..1000,
    ) {
        use apgas::finish::Deltas;
        // Merge the same delta pieces in two different orders; the merged
        // edge multiset must be identical.
        let pieces: Vec<Deltas> = edges
            .iter()
            .map(|&(s, d, k)| Deltas {
                spawned: vec![(s, d, k)],
                recv: vec![(d, s, k)],
                live: vec![(s, k as i64)],
                panics: vec![],
            })
            .collect();
        let mut order: Vec<usize> = (0..pieces.len()).collect();
        // simple seeded shuffle
        let mut x = perm_seed.wrapping_add(1);
        for i in (1..order.len()).rev() {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            order.swap(i, (x as usize) % (i + 1));
        }
        let mut a = Deltas::default();
        for p in &pieces {
            a.merge(Deltas {
                spawned: p.spawned.clone(),
                recv: p.recv.clone(),
                live: p.live.clone(),
                panics: vec![],
            });
        }
        let mut b = Deltas::default();
        for &i in &order {
            let p = &pieces[i];
            b.merge(Deltas {
                spawned: p.spawned.clone(),
                recv: p.recv.clone(),
                live: p.live.clone(),
                panics: vec![],
            });
        }
        let norm = |mut v: Vec<(u32, u32, u64)>| { v.sort_unstable(); v };
        prop_assert_eq!(norm(a.spawned), norm(b.spawned));
        prop_assert_eq!(norm(a.recv), norm(b.recv));
        let norml = |mut v: Vec<(u32, i64)>| { v.sort_unstable(); v };
        prop_assert_eq!(norml(a.live), norml(b.live));
    }

    #[test]
    fn sw_fragmentation_invariant(
        qlen in 5usize..20,
        tlen in 100usize..400,
        places in 1usize..7,
        seed in 0u64..500,
    ) {
        let q = kernels::sw::generate_query(qlen, seed);
        let t = kernels::sw::generate_dna(tlen, seed, &q, tlen / 3);
        let s = kernels::sw::Scoring::default();
        let global = kernels::sw::sw_score(&q, &t, s);
        let best = (0..places)
            .map(|p| {
                let (lo, hi) = kernels::sw::fragment_range(tlen, places, p, qlen - 1);
                kernels::sw::sw_score(&q, &t[lo..hi], s)
            })
            .max()
            .unwrap();
        prop_assert_eq!(best, global);
    }
}
