//! Cross-crate integration tests: the full stack (transport → runtime →
//! balancer → kernels) exercised together, as a downstream user would.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use x10_apgas::{Config, FinishKind, Runtime};

#[test]
fn whole_stack_uts_smoke() {
    let tree = uts::GeoTree::paper(7);
    let want = uts::traverse(&tree);
    let rt = Runtime::new(Config::new(4));
    let got = rt.run(move |ctx| uts::run_distributed(ctx, tree, glb::GlbConfig::default()));
    assert_eq!(got.stats.nodes, want.nodes);
}

#[test]
fn hpcc_mini_all_four_verify() {
    let rt = Runtime::new(Config::new(2));
    // HPL
    let params = kernels::hpl::HplParams {
        n: 32,
        nb: 8,
        seed: 1,
    };
    let hpl = rt.run(move |ctx| kernels::hpl::hpl_distributed(ctx, params));
    assert!(hpl.residual < 16.0);
    // FFT
    let fft = rt.run(|ctx| kernels::fft::fft_distributed(ctx, 256, true));
    assert!(fft.max_err < 1e-9);
    // RandomAccess
    let ra = rt.run(|ctx| kernels::ra::ra_distributed(ctx, 7, 2, 32));
    assert_eq!(ra.errors, 0);
    // Stream
    let st = rt.run(|ctx| kernels::stream::stream_distributed(ctx, 10_000, 2));
    assert!(st.iter().all(|r| r.ok));
}

#[test]
fn umbrella_reexports_work() {
    let got = x10_apgas::launch(Config::new(3), |ctx| {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        ctx.finish_pragma(FinishKind::Spmd, move |c| {
            for p in c.places() {
                let c3 = c2.clone();
                c.at_async(p, move |_| {
                    c3.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        counter.load(Ordering::Relaxed)
    });
    assert_eq!(got, 3);
}

#[test]
fn protocol_stats_visible_from_umbrella() {
    let rt = Runtime::new(Config::new(8));
    rt.run(|ctx| {
        ctx.net_stats().reset();
        ctx.finish_pragma(FinishKind::Spmd, |c| {
            for p in c.places().skip(1) {
                c.at_async(p, |_| {});
            }
        });
        let ctl = ctx.net_stats().class(x10_apgas::x10rt::MsgClass::FinishCtl);
        assert_eq!(ctl.messages, 7);
    });
}

#[test]
fn p775_model_consumes_measured_rates() {
    // The projection functions must accept arbitrary measured inputs.
    let base = 3.7;
    let curve: Vec<f64> = [1usize, 32, 1024, 32_768]
        .iter()
        .map(|&c| p775::model::uts_per_core(base, c))
        .collect();
    assert_eq!(curve[0], base);
    assert!(curve.windows(2).all(|w| w[1] <= w[0]));
    assert!(curve[3] > 0.95 * base, "98%-efficiency shape");
}

#[test]
fn glb_generic_over_user_bags() {
    // A downstream-style custom bag using the public API only.
    struct Range {
        lo: u64,
        hi: u64,
        acc: u64,
    }
    impl glb::TaskBag for Range {
        type Result = u64;
        fn process(&mut self, n: usize) -> usize {
            let take = (n as u64).min(self.hi - self.lo);
            for v in self.lo..self.lo + take {
                self.acc += v * v;
            }
            self.lo += take;
            take as usize
        }
        fn is_empty(&self) -> bool {
            self.lo >= self.hi
        }
        fn split(&mut self) -> Option<Self> {
            let len = self.hi - self.lo;
            if len < 2 {
                return None;
            }
            let mid = self.lo + len / 2;
            let loot = Range {
                lo: mid,
                hi: self.hi,
                acc: 0,
            };
            self.hi = mid;
            Some(loot)
        }
        fn merge(&mut self, o: Self) {
            // disjoint ranges: keep processing both; accumulate results
            self.acc += o.acc;
            if self.is_empty() {
                self.lo = o.lo;
                self.hi = o.hi;
            } else if o.lo < o.hi {
                // rare: merge loot while busy — extend if adjacent, else
                // process the remainder eagerly (tests use adjacency)
                let mut rem = o;
                while rem.process(1024) > 0 {}
                self.acc += rem.acc;
            }
        }
        fn take_result(&mut self) -> u64 {
            self.acc
        }
    }
    let rt = Runtime::new(Config::new(4));
    let out = rt.run(|ctx| {
        glb::run(
            ctx,
            glb::GlbConfig {
                chunk: 64,
                ..glb::GlbConfig::default()
            },
            Range {
                lo: 0,
                hi: 10_000,
                acc: 0,
            },
            || Range {
                lo: 0,
                hi: 0,
                acc: 0,
            },
        )
    });
    let total: u64 = out.results.iter().sum();
    let want: u64 = (0..10_000u64).map(|v| v * v).sum();
    assert_eq!(total, want);
}
