//! End-to-end observability: a traced UTS run at 8 places must yield a
//! parseable chrome trace containing finish spans and GLB steal events,
//! populated metrics — and a runtime built with `obs_disable` must carry no
//! observability state at all.

use apgas::{Config, Runtime};
use serde_json::Value;

/// Run UTS under the lifeline GLB on `rt` and return the traversed nodes.
fn run_uts(rt: &Runtime) -> u64 {
    let tree = uts::GeoTree::paper(6);
    rt.run(move |ctx| {
        uts::run_distributed(ctx, tree, glb::GlbConfig::default())
            .stats
            .nodes
    })
}

#[test]
fn traced_uts_exports_finish_spans_and_glb_events() {
    let rt = Runtime::new(Config::new(8).trace_enable(true));
    let nodes = run_uts(&rt);
    assert!(nodes > 0);

    let chrome = rt.chrome_trace_json().expect("observability is on");
    let doc = serde_json::from_str(&chrome).expect("exporter emits valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let cat_of = |e: &Value| e.get("cat").and_then(Value::as_str).map(str::to_owned);
    let ph_of = |e: &Value| e.get("ph").and_then(Value::as_str).map(str::to_owned);
    // Finish spans: complete ("X") events in the finish category, labeled
    // with the protocol kind.
    assert!(
        events.iter().any(|e| {
            ph_of(e).as_deref() == Some("X")
                && cat_of(e).as_deref() == Some("finish")
                && e.get("name")
                    .and_then(Value::as_str)
                    .is_some_and(|n| n.starts_with("FINISH_"))
        }),
        "no finish spans in the trace"
    );
    // GLB activity: steal rounds, lifeline arms, gifts or deaths.
    assert!(
        events.iter().any(|e| cat_of(e).as_deref() == Some("glb")),
        "no GLB events in the trace"
    );
    // Every event carries the pid/tid/ts identity fields Perfetto needs.
    for e in events {
        assert!(e.get("pid").and_then(Value::as_u64).is_some());
        assert!(e.get("tid").and_then(Value::as_u64).is_some());
        if ph_of(e).as_deref() != Some("M") {
            assert!(e.get("ts").and_then(Value::as_f64).is_some());
        }
    }
}

#[test]
fn metrics_populated_by_uts_run() {
    let rt = Runtime::new(Config::new(8));
    run_uts(&rt);
    let json = rt.metrics_json().expect("metrics are on by default");
    let doc = serde_json::from_str(&json).expect("metrics JSON parses");
    let counters = doc
        .get("counters")
        .and_then(Value::as_object)
        .expect("counters object");
    let get = |name: &str| {
        counters
            .get(name)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    assert!(get(obs::names::SPAWN_REMOTE_SENT) > 0);
    assert_eq!(
        get(obs::names::SPAWN_REMOTE_SENT),
        get(obs::names::SPAWN_REMOTE_RECV)
    );
    assert!(get(obs::names::FINISH_CTL_MSGS) > 0);
    assert!(get(obs::names::WORKER_ACTIVITIES) > 0);
    // Every place's balancer dies at least once for the run to terminate.
    assert!(get(obs::names::GLB_DEATHS) >= 8);
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get(obs::names::MAILBOX_DRAIN_DEPTH))
        .expect("drain-depth histogram");
    assert!(hist.get("total").and_then(Value::as_u64).unwrap() > 0);
}

#[test]
fn trace_disabled_by_default_records_no_events() {
    let rt = Runtime::new(Config::new(4));
    run_uts(&rt);
    let obs = rt.obs().expect("metrics on by default");
    assert!(!obs.tracer.enabled());
    let total: usize = obs.tracer.snapshot().iter().map(|w| w.events.len()).sum();
    assert_eq!(total, 0, "tracing off must record nothing");
}

#[test]
fn obs_disable_strips_all_observability_state() {
    let rt = Runtime::new(Config::new(4).obs_disable(true));
    run_uts(&rt);
    assert!(rt.obs().is_none());
    assert!(rt.metrics_json().is_none());
    assert!(rt.chrome_trace_json().is_none());
}
