//! Vendored, API-compatible subset of the `crossbeam-channel` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the slice of the `crossbeam-channel` surface it actually uses: MPMC
//! channels with `send` / `recv` / `try_recv` / `len`, FIFO per sender.
//! Implemented as a mutex-protected deque with a condition variable;
//! `bounded` channels do not exert backpressure (the runtime only uses tiny
//! capacities for one-shot result hand-off, where that is indistinguishable).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    cv: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// The sending half of a channel.
pub struct Sender<T>(Arc<Chan<T>>);

/// The receiving half of a channel.
pub struct Receiver<T>(Arc<Chan<T>>);

/// An unbounded MPMC FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender(chan.clone()), Receiver(chan))
}

/// A "bounded" channel. This shim does not enforce the capacity (senders
/// never block); the capacity is accepted for API compatibility.
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

impl<T> Sender<T> {
    /// Enqueue a message. Fails only if every receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.0.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(value);
        drop(q);
        self.0.cv.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        match q.pop_front() {
            Some(v) => Ok(v),
            None if self.0.senders.load(Ordering::Acquire) == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking receive; fails once the channel is empty with no senders.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self
                .0
                .cv
                .wait_timeout(q, std::time::Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Blocking receive with a deadline; fails with `Timeout` once
    /// `timeout` elapses with no message, or `Disconnected` when the
    /// channel is empty with no senders.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            // Short waits so a sender-drop missed by the condvar still
            // gets noticed promptly (mirrors recv()).
            let wait = (deadline - now).min(std::time::Duration::from_millis(50));
            q = self
                .0
                .cv
                .wait_timeout(q, wait)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.senders.fetch_add(1, Ordering::AcqRel);
        Sender(self.0.clone())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.0.cv.notify_all(); // unblock receivers waiting in recv()
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = bounded(1);
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(5));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
