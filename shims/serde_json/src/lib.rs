//! Vendored, API-compatible subset of the `serde_json` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the slice of the `serde_json` surface it actually uses: the dynamically
//! typed [`Value`] tree, [`from_str`] into `Value`, and [`to_string`] /
//! [`to_string_pretty`] from `Value`. There is no serde derive layer —
//! callers parse to `Value` and index into it, which is all the JSON
//! round-trip tests and bench tooling here need.
//!
//! Parser semantics match serde_json where the codebase depends on them:
//! full string escapes (including `\uXXXX` with surrogate pairs), numbers
//! parsed as `f64` with integers preserved exactly up to 2^53, rejection of
//! trailing garbage, and `Object` iteration in key-sorted order (serde_json
//! with its default `BTreeMap` backing).

use std::collections::BTreeMap;
use std::fmt;

/// Object maps are key-sorted, like serde_json's default `Map` backing.
pub type Map = BTreeMap<String, Value>;

/// A dynamically typed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers exact up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Index into an object by key (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse or serialization error, with byte offset for parse errors.
#[derive(Debug)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Serialize a [`Value`] compactly.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(v, &mut out);
    Ok(out)
}

/// Serialize a [`Value`] with two-space indentation.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(v, 0, &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a \uXXXX low half must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(indent, out);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(indent + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            pad(indent, out);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-3.25e2").unwrap(), Value::Number(-325.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("d"));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let src = r#""a\"b\\c\ndA😀""#;
        let v = from_str(src).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA😀"));
        let re = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let src = r#"{"z": [1, 2.5, true], "a": {"k": "v"}, "n": null}"#;
        let v = from_str(src).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        // Keys are emitted sorted (BTreeMap backing).
        assert!(compact.find("\"a\"").unwrap() < compact.find("\"z\"").unwrap());
    }

    #[test]
    fn integers_survive_exactly() {
        let v = from_str("9007199254740992").unwrap(); // 2^53
        assert_eq!(to_string(&v).unwrap(), "9007199254740992");
        assert_eq!(v.as_u64(), Some(9007199254740992));
    }
}
