//! Vendored, API-compatible subset of the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the slice of the `parking_lot` surface it actually uses, implemented on
//! `std::sync` primitives. Semantics match parking_lot where the codebase
//! depends on them:
//!
//! * no lock poisoning — a panic while holding a lock does not wedge it;
//! * guards are plain RAII smart pointers (`Deref`/`DerefMut`);
//! * [`Condvar::wait_for`] takes the guard by `&mut` and returns a
//!   [`WaitTimeoutResult`];
//! * [`ReentrantMutex`] may be re-locked by its owning thread.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock (no poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of a [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed condition-variable wait.
#[derive(Copy, Clone, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified. The guard is released while waiting and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard invariant");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard invariant");
        let (g, res) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

// ---------------------------------------------------------------------------
// ReentrantMutex
// ---------------------------------------------------------------------------

fn current_thread_id() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: Cell<u64> = const { Cell::new(0) };
    }
    ID.with(|id| {
        if id.get() == 0 {
            id.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

/// A mutex the owning thread may lock recursively.
pub struct ReentrantMutex<T: ?Sized> {
    mutex: std::sync::Mutex<()>,
    owner: AtomicU64,
    recursion: UnsafeCell<usize>,
    data: T,
}

// Safety: `recursion` is only touched by the thread that holds `mutex` (or
// that already owns the lock), so the UnsafeCell is never aliased mutably.
unsafe impl<T: ?Sized + Send> Send for ReentrantMutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for ReentrantMutex<T> {}

/// RAII guard of a [`ReentrantMutex`]. Shared access only, as in parking_lot.
pub struct ReentrantMutexGuard<'a, T: ?Sized> {
    lock: &'a ReentrantMutex<T>,
    /// The real lock, held only by the outermost guard (RAII-only field).
    _inner: Option<std::sync::MutexGuard<'a, ()>>,
}

impl<T> ReentrantMutex<T> {
    /// A new unlocked reentrant mutex.
    pub const fn new(value: T) -> Self {
        ReentrantMutex {
            mutex: std::sync::Mutex::new(()),
            owner: AtomicU64::new(0),
            recursion: UnsafeCell::new(0),
            data: value,
        }
    }
}

impl<T: ?Sized> ReentrantMutex<T> {
    /// Acquire the lock; reentrant from the owning thread.
    pub fn lock(&self) -> ReentrantMutexGuard<'_, T> {
        let me = current_thread_id();
        if self.owner.load(Ordering::Relaxed) == me {
            // Already owned by this thread: bump the recursion count.
            unsafe { *self.recursion.get() += 1 };
            return ReentrantMutexGuard {
                lock: self,
                _inner: None,
            };
        }
        let g = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
        self.owner.store(me, Ordering::Relaxed);
        unsafe { *self.recursion.get() = 1 };
        ReentrantMutexGuard {
            lock: self,
            _inner: Some(g),
        }
    }
}

impl<T: ?Sized> Deref for ReentrantMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.lock.data
    }
}

impl<T: ?Sized> Drop for ReentrantMutexGuard<'_, T> {
    fn drop(&mut self) {
        unsafe {
            let r = self.lock.recursion.get();
            *r -= 1;
            if *r == 0 {
                self.lock.owner.store(0, Ordering::Relaxed);
            }
        }
        // `inner` (the real lock, present only on the outermost guard) drops
        // after the owner marker is cleared.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn reentrant_relock_same_thread() {
        let m = ReentrantMutex::new(());
        let _a = m.lock();
        let _b = m.lock(); // must not deadlock
    }

    #[test]
    fn reentrant_excludes_other_threads() {
        let m = Arc::new(ReentrantMutex::new(()));
        let g = m.lock();
        let m2 = m.clone();
        let h = std::thread::spawn(move || {
            let _g = m2.lock();
        });
        std::thread::sleep(Duration::from_millis(10));
        drop(g);
        h.join().unwrap();
    }
}
