//! Vendored, API-compatible subset of the `crossbeam-deque` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the slice of the `crossbeam-deque` surface it actually uses: the
//! [`Injector`] MPMC FIFO with its [`Steal`] result type. Implemented as a
//! mutex-protected deque — `steal` never actually reports [`Steal::Retry`],
//! which callers already treat as "try again".

use std::collections::VecDeque;
use std::sync::Mutex;

/// Result of a steal attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The attempt lost a race and should be retried.
    Retry,
}

/// An MPMC FIFO injector queue.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// A new empty queue.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task onto the back of the queue.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
    }

    /// Steal the task at the front of the queue.
    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// True when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = Injector::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.steal(), Steal::Success(1));
        assert_eq!(q.steal(), Steal::Success(2));
        assert_eq!(q.steal(), Steal::Empty);
        assert!(q.is_empty());
    }
}
