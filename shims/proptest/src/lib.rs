//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the slice of the proptest surface its tests actually use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies over the primitive integers and `f64`,
//! * tuple strategies (arity 2 and 3),
//! * [`collection::vec`](prop::collection::vec) with fixed or ranged length,
//! * [`any`] for primitives, [`Strategy::prop_map`] and
//!   [`Strategy::prop_recursive`].
//!
//! Sampling is a deterministic xorshift PRNG seeded per test name and case
//! index, so failures are reproducible run to run. There is no shrinking: a
//! failing case reports its seed and values and panics.

use std::ops::Range;
use std::sync::Arc;

/// A failed test case (what `prop_assert*` returns early with).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

pub mod test_runner {
    //! The deterministic PRNG driving strategy sampling.

    /// xorshift64* PRNG, seeded from the test name and case index.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// A deterministic RNG for (`seed`, `case`).
        pub fn deterministic(seed: u64, case: u64) -> Self {
            // splitmix the two inputs together so nearby cases diverge
            let mut z = seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            TestRng((z ^ (z >> 31)) | 1)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a hash of a test name, used as the RNG seed.
    pub fn seed_of(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

use test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// nested occurrences and returns the composite. `depth` bounds the
    /// recursion; `_desired_size` / `_expected_branch_size` are accepted for
    /// API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let rec = recurse(strat).boxed();
            strat = BoxedStrategy(Arc::new(Mix {
                base: base.clone(),
                rec,
            }));
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Recursion step: half the time the base case, half the recursive case.
struct Mix<T> {
    base: BoxedStrategy<T>,
    rec: BoxedStrategy<T>,
}

impl<T> Strategy for Mix<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        if rng.below(2) == 0 {
            self.base.sample(rng)
        } else {
            self.rec.sample(rng)
        }
    }
}

/// Always generates the same (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/a, B/b)
    (A/a, B/b, C/c)
    (A/a, B/b, C/c, D/d)
}

/// Canonical strategy for a primitive type (uniform over its domain).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// The strategy type [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind [`any`] for primitives.
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! any_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}

any_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(std::marker::PhantomData)
    }
}

pub mod prop {
    //! Mirror of proptest's `prop` module path.

    pub mod collection {
        //! Collection strategies.

        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector strategy: each element drawn from `element`, length
        /// drawn from `size` (a `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// A length specification: exact or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange(Range<usize>);

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.0.start + 1 >= self.0.end {
            self.0.start
        } else {
            self.0.start + rng.below((self.0.end - self.0.start) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..) { .. }`
/// becomes a unit test running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_of(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::deterministic(seed, case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {case} of {} failed (seed {seed:#x}): {e}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic(7, 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_length_in_range() {
        let mut rng = crate::test_runner::TestRng::deterministic(11, 1);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0u8..4, 1..9), &mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
        let exact = Strategy::sample(&prop::collection::vec(0u8..4, 5), &mut rng);
        assert_eq!(exact.len(), 5);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        struct Node {
            children: Vec<Node>,
        }
        fn depth(n: &Node) -> u32 {
            1 + n.children.iter().map(depth).max().unwrap_or(0)
        }
        let leaf = (0u8..4).prop_map(|_| Node { children: vec![] });
        let strat = leaf.prop_recursive(3, 24, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(|children| Node { children })
        });
        let mut rng = crate::test_runner::TestRng::deterministic(13, 2);
        for _ in 0..100 {
            assert!(depth(&Strategy::sample(&strat, &mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself: args bind, asserts work, doc comments parse.
        #[test]
        fn macro_end_to_end(xs in prop::collection::vec((0u32..5, 0u32..5), 1..10), k in 1usize..4) {
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(k.min(3), k, "k should be below 4");
            for (a, b) in xs {
                prop_assert!(a < 5 && b < 5);
            }
        }
    }
}
