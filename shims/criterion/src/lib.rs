//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the slice of the criterion surface its benches use: `Criterion`,
//! benchmark groups with `sample_size` / `measurement_time` / `throughput`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is timed
//! with a simple calibrated loop (a warm-up to size the iteration count,
//! then `sample_size` timed samples) and the median per-iteration time is
//! printed, with throughput scaling when declared. Good enough to compare
//! protocol variants; not a replacement for real criterion statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Drives the measured closure.
pub struct Bencher {
    iters: u64,
    sample: Duration,
}

impl Bencher {
    /// Time `f`, running it enough times for a stable per-call estimate.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.sample = start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: std::env::args().nth(1).filter(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Accepted for API compatibility (command-line config is ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        self.run(&id.to_string(), f);
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Close the group.
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{id}", self.name);
        if !self.criterion.matches(&full) {
            return;
        }
        // Warm-up: find an iteration count taking roughly one sample's
        // worth of time (budget split across the samples).
        let budget = self.measurement_time.max(Duration::from_millis(100));
        let per_sample = budget / self.sample_size as u32;
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                sample: Duration::ZERO,
            };
            f(&mut b);
            if b.sample >= per_sample.min(Duration::from_millis(250)) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    sample: Duration::ZERO,
                };
                f(&mut b);
                b.sample / iters as u32
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        print!(
            "{full:<44} {:>12} [{} .. {}]",
            fmt_dur(median),
            fmt_dur(lo),
            fmt_dur(hi)
        );
        if let Some(t) = self.throughput {
            let per_sec = |n: u64| n as f64 / median.as_secs_f64();
            match t {
                Throughput::Elements(n) => print!("  {:>14.3e} elem/s", per_sec(n)),
                Throughput::Bytes(n) => print!("  {:>14.3e} B/s", per_sec(n)),
            }
        }
        println!();
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given group(s).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(30));
        g.throughput(Throughput::Elements(64));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
