/root/repo/target/release/deps/apgas-4aab013dc622b4e7.d: crates/apgas/src/lib.rs crates/apgas/src/clock.rs crates/apgas/src/config.rs crates/apgas/src/ctx.rs crates/apgas/src/finish/mod.rs crates/apgas/src/finish/dense.rs crates/apgas/src/finish/proxy.rs crates/apgas/src/finish/root.rs crates/apgas/src/global_ref.rs crates/apgas/src/place_group.rs crates/apgas/src/rail.rs crates/apgas/src/runtime.rs crates/apgas/src/team.rs crates/apgas/src/place_state.rs crates/apgas/src/worker.rs

/root/repo/target/release/deps/libapgas-4aab013dc622b4e7.rlib: crates/apgas/src/lib.rs crates/apgas/src/clock.rs crates/apgas/src/config.rs crates/apgas/src/ctx.rs crates/apgas/src/finish/mod.rs crates/apgas/src/finish/dense.rs crates/apgas/src/finish/proxy.rs crates/apgas/src/finish/root.rs crates/apgas/src/global_ref.rs crates/apgas/src/place_group.rs crates/apgas/src/rail.rs crates/apgas/src/runtime.rs crates/apgas/src/team.rs crates/apgas/src/place_state.rs crates/apgas/src/worker.rs

/root/repo/target/release/deps/libapgas-4aab013dc622b4e7.rmeta: crates/apgas/src/lib.rs crates/apgas/src/clock.rs crates/apgas/src/config.rs crates/apgas/src/ctx.rs crates/apgas/src/finish/mod.rs crates/apgas/src/finish/dense.rs crates/apgas/src/finish/proxy.rs crates/apgas/src/finish/root.rs crates/apgas/src/global_ref.rs crates/apgas/src/place_group.rs crates/apgas/src/rail.rs crates/apgas/src/runtime.rs crates/apgas/src/team.rs crates/apgas/src/place_state.rs crates/apgas/src/worker.rs

crates/apgas/src/lib.rs:
crates/apgas/src/clock.rs:
crates/apgas/src/config.rs:
crates/apgas/src/ctx.rs:
crates/apgas/src/finish/mod.rs:
crates/apgas/src/finish/dense.rs:
crates/apgas/src/finish/proxy.rs:
crates/apgas/src/finish/root.rs:
crates/apgas/src/global_ref.rs:
crates/apgas/src/place_group.rs:
crates/apgas/src/rail.rs:
crates/apgas/src/runtime.rs:
crates/apgas/src/team.rs:
crates/apgas/src/place_state.rs:
crates/apgas/src/worker.rs:
