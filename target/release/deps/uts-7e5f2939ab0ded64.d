/root/repo/target/release/deps/uts-7e5f2939ab0ded64.d: crates/uts/src/lib.rs crates/uts/src/bag.rs crates/uts/src/distributed.rs crates/uts/src/rng.rs crates/uts/src/sequential.rs crates/uts/src/sha1.rs crates/uts/src/tree.rs

/root/repo/target/release/deps/libuts-7e5f2939ab0ded64.rlib: crates/uts/src/lib.rs crates/uts/src/bag.rs crates/uts/src/distributed.rs crates/uts/src/rng.rs crates/uts/src/sequential.rs crates/uts/src/sha1.rs crates/uts/src/tree.rs

/root/repo/target/release/deps/libuts-7e5f2939ab0ded64.rmeta: crates/uts/src/lib.rs crates/uts/src/bag.rs crates/uts/src/distributed.rs crates/uts/src/rng.rs crates/uts/src/sequential.rs crates/uts/src/sha1.rs crates/uts/src/tree.rs

crates/uts/src/lib.rs:
crates/uts/src/bag.rs:
crates/uts/src/distributed.rs:
crates/uts/src/rng.rs:
crates/uts/src/sequential.rs:
crates/uts/src/sha1.rs:
crates/uts/src/tree.rs:
