/root/repo/target/release/deps/crossbeam_channel-cd3caad7cc0f03fd.d: shims/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-cd3caad7cc0f03fd.rlib: shims/crossbeam-channel/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_channel-cd3caad7cc0f03fd.rmeta: shims/crossbeam-channel/src/lib.rs

shims/crossbeam-channel/src/lib.rs:
