/root/repo/target/release/deps/crossbeam_deque-ca01045f6ed13c2a.d: shims/crossbeam-deque/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_deque-ca01045f6ed13c2a.rlib: shims/crossbeam-deque/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_deque-ca01045f6ed13c2a.rmeta: shims/crossbeam-deque/src/lib.rs

shims/crossbeam-deque/src/lib.rs:
