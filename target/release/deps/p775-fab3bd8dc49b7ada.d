/root/repo/target/release/deps/p775-fab3bd8dc49b7ada.d: crates/p775/src/lib.rs crates/p775/src/bandwidth.rs crates/p775/src/model.rs crates/p775/src/netsim.rs crates/p775/src/topology.rs

/root/repo/target/release/deps/libp775-fab3bd8dc49b7ada.rlib: crates/p775/src/lib.rs crates/p775/src/bandwidth.rs crates/p775/src/model.rs crates/p775/src/netsim.rs crates/p775/src/topology.rs

/root/repo/target/release/deps/libp775-fab3bd8dc49b7ada.rmeta: crates/p775/src/lib.rs crates/p775/src/bandwidth.rs crates/p775/src/model.rs crates/p775/src/netsim.rs crates/p775/src/topology.rs

crates/p775/src/lib.rs:
crates/p775/src/bandwidth.rs:
crates/p775/src/model.rs:
crates/p775/src/netsim.rs:
crates/p775/src/topology.rs:
