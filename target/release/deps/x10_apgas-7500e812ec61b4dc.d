/root/repo/target/release/deps/x10_apgas-7500e812ec61b4dc.d: src/lib.rs

/root/repo/target/release/deps/libx10_apgas-7500e812ec61b4dc.rlib: src/lib.rs

/root/repo/target/release/deps/libx10_apgas-7500e812ec61b4dc.rmeta: src/lib.rs

src/lib.rs:
