/root/repo/target/release/deps/glb-83986b762f8d58a0.d: crates/glb/src/lib.rs crates/glb/src/lifeline.rs crates/glb/src/stats.rs crates/glb/src/taskbag.rs crates/glb/src/worker.rs

/root/repo/target/release/deps/libglb-83986b762f8d58a0.rlib: crates/glb/src/lib.rs crates/glb/src/lifeline.rs crates/glb/src/stats.rs crates/glb/src/taskbag.rs crates/glb/src/worker.rs

/root/repo/target/release/deps/libglb-83986b762f8d58a0.rmeta: crates/glb/src/lib.rs crates/glb/src/lifeline.rs crates/glb/src/stats.rs crates/glb/src/taskbag.rs crates/glb/src/worker.rs

crates/glb/src/lib.rs:
crates/glb/src/lifeline.rs:
crates/glb/src/stats.rs:
crates/glb/src/taskbag.rs:
crates/glb/src/worker.rs:
