/root/repo/target/release/deps/x10rt-0ec0cc6ec85cc210.d: crates/x10rt/src/lib.rs crates/x10rt/src/congruent.rs crates/x10rt/src/message.rs crates/x10rt/src/place.rs crates/x10rt/src/rdma.rs crates/x10rt/src/segment.rs crates/x10rt/src/stats.rs crates/x10rt/src/transport.rs

/root/repo/target/release/deps/libx10rt-0ec0cc6ec85cc210.rlib: crates/x10rt/src/lib.rs crates/x10rt/src/congruent.rs crates/x10rt/src/message.rs crates/x10rt/src/place.rs crates/x10rt/src/rdma.rs crates/x10rt/src/segment.rs crates/x10rt/src/stats.rs crates/x10rt/src/transport.rs

/root/repo/target/release/deps/libx10rt-0ec0cc6ec85cc210.rmeta: crates/x10rt/src/lib.rs crates/x10rt/src/congruent.rs crates/x10rt/src/message.rs crates/x10rt/src/place.rs crates/x10rt/src/rdma.rs crates/x10rt/src/segment.rs crates/x10rt/src/stats.rs crates/x10rt/src/transport.rs

crates/x10rt/src/lib.rs:
crates/x10rt/src/congruent.rs:
crates/x10rt/src/message.rs:
crates/x10rt/src/place.rs:
crates/x10rt/src/rdma.rs:
crates/x10rt/src/segment.rs:
crates/x10rt/src/stats.rs:
crates/x10rt/src/transport.rs:
