/root/repo/target/debug/deps/distributed-1911b683e77e422a.d: crates/uts/tests/distributed.rs

/root/repo/target/debug/deps/distributed-1911b683e77e422a: crates/uts/tests/distributed.rs

crates/uts/tests/distributed.rs:
