/root/repo/target/debug/deps/kernels-d7e65e42678e1fd1.d: crates/kernels/src/lib.rs crates/kernels/src/bc/mod.rs crates/kernels/src/bc/brandes.rs crates/kernels/src/bc/rmat.rs crates/kernels/src/fft/mod.rs crates/kernels/src/fft/local.rs crates/kernels/src/hpl/mod.rs crates/kernels/src/kmeans/mod.rs crates/kernels/src/linalg/mod.rs crates/kernels/src/linalg/dgemm.rs crates/kernels/src/linalg/lu.rs crates/kernels/src/ra/mod.rs crates/kernels/src/stream/mod.rs crates/kernels/src/sw/mod.rs crates/kernels/src/util.rs

/root/repo/target/debug/deps/kernels-d7e65e42678e1fd1: crates/kernels/src/lib.rs crates/kernels/src/bc/mod.rs crates/kernels/src/bc/brandes.rs crates/kernels/src/bc/rmat.rs crates/kernels/src/fft/mod.rs crates/kernels/src/fft/local.rs crates/kernels/src/hpl/mod.rs crates/kernels/src/kmeans/mod.rs crates/kernels/src/linalg/mod.rs crates/kernels/src/linalg/dgemm.rs crates/kernels/src/linalg/lu.rs crates/kernels/src/ra/mod.rs crates/kernels/src/stream/mod.rs crates/kernels/src/sw/mod.rs crates/kernels/src/util.rs

crates/kernels/src/lib.rs:
crates/kernels/src/bc/mod.rs:
crates/kernels/src/bc/brandes.rs:
crates/kernels/src/bc/rmat.rs:
crates/kernels/src/fft/mod.rs:
crates/kernels/src/fft/local.rs:
crates/kernels/src/hpl/mod.rs:
crates/kernels/src/kmeans/mod.rs:
crates/kernels/src/linalg/mod.rs:
crates/kernels/src/linalg/dgemm.rs:
crates/kernels/src/linalg/lu.rs:
crates/kernels/src/ra/mod.rs:
crates/kernels/src/stream/mod.rs:
crates/kernels/src/sw/mod.rs:
crates/kernels/src/util.rs:
