/root/repo/target/debug/deps/proptest-dab7ae0162b1251d.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-dab7ae0162b1251d.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-dab7ae0162b1251d.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
