/root/repo/target/debug/deps/alltoall_sweep-08d79c149962d3d6.d: crates/bench/src/bin/alltoall_sweep.rs

/root/repo/target/debug/deps/alltoall_sweep-08d79c149962d3d6: crates/bench/src/bin/alltoall_sweep.rs

crates/bench/src/bin/alltoall_sweep.rs:
