/root/repo/target/debug/deps/glb-3ce1c811d1e791f3.d: crates/glb/src/lib.rs crates/glb/src/lifeline.rs crates/glb/src/stats.rs crates/glb/src/taskbag.rs crates/glb/src/worker.rs

/root/repo/target/debug/deps/glb-3ce1c811d1e791f3: crates/glb/src/lib.rs crates/glb/src/lifeline.rs crates/glb/src/stats.rs crates/glb/src/taskbag.rs crates/glb/src/worker.rs

crates/glb/src/lib.rs:
crates/glb/src/lifeline.rs:
crates/glb/src/stats.rs:
crates/glb/src/taskbag.rs:
crates/glb/src/worker.rs:
