/root/repo/target/debug/deps/balancing-9d942089e6fdbf65.d: crates/glb/tests/balancing.rs

/root/repo/target/debug/deps/balancing-9d942089e6fdbf65: crates/glb/tests/balancing.rs

crates/glb/tests/balancing.rs:
