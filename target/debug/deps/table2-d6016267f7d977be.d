/root/repo/target/debug/deps/table2-d6016267f7d977be.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-d6016267f7d977be: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
