/root/repo/target/debug/deps/x10rt-c5ae4a02674f48cc.d: crates/x10rt/src/lib.rs crates/x10rt/src/congruent.rs crates/x10rt/src/message.rs crates/x10rt/src/place.rs crates/x10rt/src/rdma.rs crates/x10rt/src/segment.rs crates/x10rt/src/stats.rs crates/x10rt/src/transport.rs

/root/repo/target/debug/deps/libx10rt-c5ae4a02674f48cc.rlib: crates/x10rt/src/lib.rs crates/x10rt/src/congruent.rs crates/x10rt/src/message.rs crates/x10rt/src/place.rs crates/x10rt/src/rdma.rs crates/x10rt/src/segment.rs crates/x10rt/src/stats.rs crates/x10rt/src/transport.rs

/root/repo/target/debug/deps/libx10rt-c5ae4a02674f48cc.rmeta: crates/x10rt/src/lib.rs crates/x10rt/src/congruent.rs crates/x10rt/src/message.rs crates/x10rt/src/place.rs crates/x10rt/src/rdma.rs crates/x10rt/src/segment.rs crates/x10rt/src/stats.rs crates/x10rt/src/transport.rs

crates/x10rt/src/lib.rs:
crates/x10rt/src/congruent.rs:
crates/x10rt/src/message.rs:
crates/x10rt/src/place.rs:
crates/x10rt/src/rdma.rs:
crates/x10rt/src/segment.rs:
crates/x10rt/src/stats.rs:
crates/x10rt/src/transport.rs:
