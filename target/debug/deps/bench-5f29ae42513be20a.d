/root/repo/target/debug/deps/bench-5f29ae42513be20a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-5f29ae42513be20a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
