/root/repo/target/debug/deps/distributed-e1ef653a5db6faed.d: crates/kernels/tests/distributed.rs

/root/repo/target/debug/deps/distributed-e1ef653a5db6faed: crates/kernels/tests/distributed.rs

crates/kernels/tests/distributed.rs:
