/root/repo/target/debug/deps/crossbeam_deque-4faa98d91d9f8508.d: shims/crossbeam-deque/src/lib.rs

/root/repo/target/debug/deps/crossbeam_deque-4faa98d91d9f8508: shims/crossbeam-deque/src/lib.rs

shims/crossbeam-deque/src/lib.rs:
