/root/repo/target/debug/deps/transport_props-eef2f54a18cb383a.d: crates/x10rt/tests/transport_props.rs

/root/repo/target/debug/deps/transport_props-eef2f54a18cb383a: crates/x10rt/tests/transport_props.rs

crates/x10rt/tests/transport_props.rs:
