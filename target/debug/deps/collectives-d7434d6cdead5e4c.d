/root/repo/target/debug/deps/collectives-d7434d6cdead5e4c.d: crates/apgas/tests/collectives.rs

/root/repo/target/debug/deps/collectives-d7434d6cdead5e4c: crates/apgas/tests/collectives.rs

crates/apgas/tests/collectives.rs:
