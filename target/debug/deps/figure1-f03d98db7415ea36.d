/root/repo/target/debug/deps/figure1-f03d98db7415ea36.d: crates/bench/src/bin/figure1.rs

/root/repo/target/debug/deps/figure1-f03d98db7415ea36: crates/bench/src/bin/figure1.rs

crates/bench/src/bin/figure1.rs:
