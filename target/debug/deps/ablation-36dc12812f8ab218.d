/root/repo/target/debug/deps/ablation-36dc12812f8ab218.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-36dc12812f8ab218: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
