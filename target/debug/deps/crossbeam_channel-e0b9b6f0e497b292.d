/root/repo/target/debug/deps/crossbeam_channel-e0b9b6f0e497b292.d: shims/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/crossbeam_channel-e0b9b6f0e497b292: shims/crossbeam-channel/src/lib.rs

shims/crossbeam-channel/src/lib.rs:
