/root/repo/target/debug/deps/runtime-723b6835fcbb9fa8.d: crates/apgas/tests/runtime.rs

/root/repo/target/debug/deps/runtime-723b6835fcbb9fa8: crates/apgas/tests/runtime.rs

crates/apgas/tests/runtime.rs:
