/root/repo/target/debug/deps/more_distributed-128609959cdee589.d: crates/kernels/tests/more_distributed.rs

/root/repo/target/debug/deps/more_distributed-128609959cdee589: crates/kernels/tests/more_distributed.rs

crates/kernels/tests/more_distributed.rs:
