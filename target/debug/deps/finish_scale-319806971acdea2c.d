/root/repo/target/debug/deps/finish_scale-319806971acdea2c.d: crates/bench/src/bin/finish_scale.rs

/root/repo/target/debug/deps/finish_scale-319806971acdea2c: crates/bench/src/bin/finish_scale.rs

crates/bench/src/bin/finish_scale.rs:
