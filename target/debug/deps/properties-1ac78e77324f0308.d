/root/repo/target/debug/deps/properties-1ac78e77324f0308.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1ac78e77324f0308: tests/properties.rs

tests/properties.rs:
