/root/repo/target/debug/deps/p775-758bf2c8d0d5a4b5.d: crates/p775/src/lib.rs crates/p775/src/bandwidth.rs crates/p775/src/model.rs crates/p775/src/netsim.rs crates/p775/src/topology.rs

/root/repo/target/debug/deps/libp775-758bf2c8d0d5a4b5.rlib: crates/p775/src/lib.rs crates/p775/src/bandwidth.rs crates/p775/src/model.rs crates/p775/src/netsim.rs crates/p775/src/topology.rs

/root/repo/target/debug/deps/libp775-758bf2c8d0d5a4b5.rmeta: crates/p775/src/lib.rs crates/p775/src/bandwidth.rs crates/p775/src/model.rs crates/p775/src/netsim.rs crates/p775/src/topology.rs

crates/p775/src/lib.rs:
crates/p775/src/bandwidth.rs:
crates/p775/src/model.rs:
crates/p775/src/netsim.rs:
crates/p775/src/topology.rs:
