/root/repo/target/debug/deps/x10_apgas-f391d7dd0252aee3.d: src/lib.rs

/root/repo/target/debug/deps/libx10_apgas-f391d7dd0252aee3.rlib: src/lib.rs

/root/repo/target/debug/deps/libx10_apgas-f391d7dd0252aee3.rmeta: src/lib.rs

src/lib.rs:
