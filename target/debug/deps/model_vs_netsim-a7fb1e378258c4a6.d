/root/repo/target/debug/deps/model_vs_netsim-a7fb1e378258c4a6.d: crates/p775/tests/model_vs_netsim.rs

/root/repo/target/debug/deps/model_vs_netsim-a7fb1e378258c4a6: crates/p775/tests/model_vs_netsim.rs

crates/p775/tests/model_vs_netsim.rs:
