/root/repo/target/debug/deps/glb-ff3fd71f4d07de7e.d: crates/glb/src/lib.rs crates/glb/src/lifeline.rs crates/glb/src/stats.rs crates/glb/src/taskbag.rs crates/glb/src/worker.rs

/root/repo/target/debug/deps/libglb-ff3fd71f4d07de7e.rlib: crates/glb/src/lib.rs crates/glb/src/lifeline.rs crates/glb/src/stats.rs crates/glb/src/taskbag.rs crates/glb/src/worker.rs

/root/repo/target/debug/deps/libglb-ff3fd71f4d07de7e.rmeta: crates/glb/src/lib.rs crates/glb/src/lifeline.rs crates/glb/src/stats.rs crates/glb/src/taskbag.rs crates/glb/src/worker.rs

crates/glb/src/lib.rs:
crates/glb/src/lifeline.rs:
crates/glb/src/stats.rs:
crates/glb/src/taskbag.rs:
crates/glb/src/worker.rs:
