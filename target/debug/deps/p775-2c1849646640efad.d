/root/repo/target/debug/deps/p775-2c1849646640efad.d: crates/p775/src/lib.rs crates/p775/src/bandwidth.rs crates/p775/src/model.rs crates/p775/src/netsim.rs crates/p775/src/topology.rs

/root/repo/target/debug/deps/p775-2c1849646640efad: crates/p775/src/lib.rs crates/p775/src/bandwidth.rs crates/p775/src/model.rs crates/p775/src/netsim.rs crates/p775/src/topology.rs

crates/p775/src/lib.rs:
crates/p775/src/bandwidth.rs:
crates/p775/src/model.rs:
crates/p775/src/netsim.rs:
crates/p775/src/topology.rs:
