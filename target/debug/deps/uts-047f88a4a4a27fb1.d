/root/repo/target/debug/deps/uts-047f88a4a4a27fb1.d: crates/uts/src/lib.rs crates/uts/src/bag.rs crates/uts/src/distributed.rs crates/uts/src/rng.rs crates/uts/src/sequential.rs crates/uts/src/sha1.rs crates/uts/src/tree.rs

/root/repo/target/debug/deps/uts-047f88a4a4a27fb1: crates/uts/src/lib.rs crates/uts/src/bag.rs crates/uts/src/distributed.rs crates/uts/src/rng.rs crates/uts/src/sequential.rs crates/uts/src/sha1.rs crates/uts/src/tree.rs

crates/uts/src/lib.rs:
crates/uts/src/bag.rs:
crates/uts/src/distributed.rs:
crates/uts/src/rng.rs:
crates/uts/src/sequential.rs:
crates/uts/src/sha1.rs:
crates/uts/src/tree.rs:
