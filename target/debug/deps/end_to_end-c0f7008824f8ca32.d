/root/repo/target/debug/deps/end_to_end-c0f7008824f8ca32.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c0f7008824f8ca32: tests/end_to_end.rs

tests/end_to_end.rs:
