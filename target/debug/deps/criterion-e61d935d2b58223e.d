/root/repo/target/debug/deps/criterion-e61d935d2b58223e.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-e61d935d2b58223e: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
