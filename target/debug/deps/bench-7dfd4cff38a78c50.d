/root/repo/target/debug/deps/bench-7dfd4cff38a78c50.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-7dfd4cff38a78c50.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-7dfd4cff38a78c50.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
