/root/repo/target/debug/deps/finish_stress-f9a53d801c4d3ff7.d: crates/apgas/tests/finish_stress.rs

/root/repo/target/debug/deps/finish_stress-f9a53d801c4d3ff7: crates/apgas/tests/finish_stress.rs

crates/apgas/tests/finish_stress.rs:
