/root/repo/target/debug/deps/table1-4f9f45c18445fe7a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-4f9f45c18445fe7a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
