/root/repo/target/debug/deps/uts-3effc34944de88df.d: crates/uts/src/lib.rs crates/uts/src/bag.rs crates/uts/src/distributed.rs crates/uts/src/rng.rs crates/uts/src/sequential.rs crates/uts/src/sha1.rs crates/uts/src/tree.rs

/root/repo/target/debug/deps/libuts-3effc34944de88df.rlib: crates/uts/src/lib.rs crates/uts/src/bag.rs crates/uts/src/distributed.rs crates/uts/src/rng.rs crates/uts/src/sequential.rs crates/uts/src/sha1.rs crates/uts/src/tree.rs

/root/repo/target/debug/deps/libuts-3effc34944de88df.rmeta: crates/uts/src/lib.rs crates/uts/src/bag.rs crates/uts/src/distributed.rs crates/uts/src/rng.rs crates/uts/src/sequential.rs crates/uts/src/sha1.rs crates/uts/src/tree.rs

crates/uts/src/lib.rs:
crates/uts/src/bag.rs:
crates/uts/src/distributed.rs:
crates/uts/src/rng.rs:
crates/uts/src/sequential.rs:
crates/uts/src/sha1.rs:
crates/uts/src/tree.rs:
