/root/repo/target/debug/deps/x10_apgas-8c29ba762fecd953.d: src/lib.rs

/root/repo/target/debug/deps/x10_apgas-8c29ba762fecd953: src/lib.rs

src/lib.rs:
