/root/repo/target/debug/deps/crossbeam_deque-1785ce6a62d019e7.d: shims/crossbeam-deque/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_deque-1785ce6a62d019e7.rlib: shims/crossbeam-deque/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_deque-1785ce6a62d019e7.rmeta: shims/crossbeam-deque/src/lib.rs

shims/crossbeam-deque/src/lib.rs:
