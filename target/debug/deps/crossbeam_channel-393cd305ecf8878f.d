/root/repo/target/debug/deps/crossbeam_channel-393cd305ecf8878f.d: shims/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-393cd305ecf8878f.rlib: shims/crossbeam-channel/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_channel-393cd305ecf8878f.rmeta: shims/crossbeam-channel/src/lib.rs

shims/crossbeam-channel/src/lib.rs:
