/root/repo/target/debug/deps/proptest-d946a7f4784f3aa6.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-d946a7f4784f3aa6: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
