/root/repo/target/debug/deps/apgas-14b21728559c8e2b.d: crates/apgas/src/lib.rs crates/apgas/src/clock.rs crates/apgas/src/config.rs crates/apgas/src/ctx.rs crates/apgas/src/finish/mod.rs crates/apgas/src/finish/dense.rs crates/apgas/src/finish/proxy.rs crates/apgas/src/finish/root.rs crates/apgas/src/global_ref.rs crates/apgas/src/place_group.rs crates/apgas/src/rail.rs crates/apgas/src/runtime.rs crates/apgas/src/team.rs crates/apgas/src/place_state.rs crates/apgas/src/worker.rs

/root/repo/target/debug/deps/apgas-14b21728559c8e2b: crates/apgas/src/lib.rs crates/apgas/src/clock.rs crates/apgas/src/config.rs crates/apgas/src/ctx.rs crates/apgas/src/finish/mod.rs crates/apgas/src/finish/dense.rs crates/apgas/src/finish/proxy.rs crates/apgas/src/finish/root.rs crates/apgas/src/global_ref.rs crates/apgas/src/place_group.rs crates/apgas/src/rail.rs crates/apgas/src/runtime.rs crates/apgas/src/team.rs crates/apgas/src/place_state.rs crates/apgas/src/worker.rs

crates/apgas/src/lib.rs:
crates/apgas/src/clock.rs:
crates/apgas/src/config.rs:
crates/apgas/src/ctx.rs:
crates/apgas/src/finish/mod.rs:
crates/apgas/src/finish/dense.rs:
crates/apgas/src/finish/proxy.rs:
crates/apgas/src/finish/root.rs:
crates/apgas/src/global_ref.rs:
crates/apgas/src/place_group.rs:
crates/apgas/src/rail.rs:
crates/apgas/src/runtime.rs:
crates/apgas/src/team.rs:
crates/apgas/src/place_state.rs:
crates/apgas/src/worker.rs:
