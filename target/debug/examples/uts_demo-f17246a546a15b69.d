/root/repo/target/debug/examples/uts_demo-f17246a546a15b69.d: examples/uts_demo.rs

/root/repo/target/debug/examples/uts_demo-f17246a546a15b69: examples/uts_demo.rs

examples/uts_demo.rs:
