/root/repo/target/debug/examples/quickstart-083e1a84d101bb18.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-083e1a84d101bb18: examples/quickstart.rs

examples/quickstart.rs:
