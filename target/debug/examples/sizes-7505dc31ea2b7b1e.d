/root/repo/target/debug/examples/sizes-7505dc31ea2b7b1e.d: crates/uts/examples/sizes.rs

/root/repo/target/debug/examples/sizes-7505dc31ea2b7b1e: crates/uts/examples/sizes.rs

crates/uts/examples/sizes.rs:
