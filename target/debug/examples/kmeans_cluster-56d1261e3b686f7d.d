/root/repo/target/debug/examples/kmeans_cluster-56d1261e3b686f7d.d: examples/kmeans_cluster.rs

/root/repo/target/debug/examples/kmeans_cluster-56d1261e3b686f7d: examples/kmeans_cluster.rs

examples/kmeans_cluster.rs:
