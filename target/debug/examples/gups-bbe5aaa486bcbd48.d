/root/repo/target/debug/examples/gups-bbe5aaa486bcbd48.d: examples/gups.rs

/root/repo/target/debug/examples/gups-bbe5aaa486bcbd48: examples/gups.rs

examples/gups.rs:
