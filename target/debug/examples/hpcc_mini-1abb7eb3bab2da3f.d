/root/repo/target/debug/examples/hpcc_mini-1abb7eb3bab2da3f.d: examples/hpcc_mini.rs

/root/repo/target/debug/examples/hpcc_mini-1abb7eb3bab2da3f: examples/hpcc_mini.rs

examples/hpcc_mini.rs:
