//! The geometric tree law.
//!
//! "The nodes in a geometric tree have a branching factor that follows a
//! geometric distribution with an expected value that is specified by the
//! parameter b0 > 1. The parameter d specifies its maximum depth cut-off,
//! beyond which the tree is not allowed to grow ... The expected size of
//! these trees is (b0)^d, but since the geometric distribution has a long
//! tail, some nodes will have significantly more than b0 children, yielding
//! unbalanced trees." (§6, quoting Olivier et al.)
//!
//! The paper fixes `b0 = 4`, seed `r = 19` and varies `d` from 14 to 22.

use crate::rng::{self, State};

/// The branching law of a UTS tree.
///
/// The paper evaluates GEO (fixed-shape geometric) trees; BIN (binomial)
/// trees are part of the UTS specification and produce the *deep, narrow*
/// trees the paper contrasts against ("[the interval refinements] are
/// tailored for UTS for shallow trees … not likely to help as much for
/// deep and narrow trees").
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Shape {
    /// Geometric branching with fixed expectation `b0` (the paper's law).
    Geometric,
    /// Binomial: each non-root node has `m` children with probability `q`
    /// and none otherwise (expected branching `m·q`; subcritical for
    /// `m·q < 1`, giving long spindly trees).
    Binomial {
        /// Children per fertile node.
        m: u32,
        /// Probability a node is fertile.
        q: f64,
    },
}

/// Parameters of a UTS tree.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GeoTree {
    /// Expected branching factor (`b0`) — also the root's fixed arity.
    pub b0: f64,
    /// Root seed (`r`).
    pub seed: u32,
    /// Depth cut-off (`d`): nodes at depth ≥ d have no children.
    /// (BIN trees in the UTS spec are uncut; pass a large `d`.)
    pub depth: u32,
    /// Branching law.
    pub shape: Shape,
}

impl GeoTree {
    /// The paper's configuration: GEO, `b0 = 4`, `r = 19`, depth `d`.
    pub fn paper(depth: u32) -> Self {
        GeoTree {
            b0: 4.0,
            seed: 19,
            depth,
            shape: Shape::Geometric,
        }
    }

    /// A binomial (deep-and-narrow) tree: `b0` root children, then `m`
    /// children with probability `q` per node. Keep `m·q < 1` or supply a
    /// real depth cut-off, otherwise the tree is infinite in expectation.
    pub fn binomial(root_children: u32, m: u32, q: f64, seed: u32) -> Self {
        GeoTree {
            b0: root_children as f64,
            seed,
            depth: u32::MAX,
            shape: Shape::Binomial { m, q },
        }
    }

    /// Root node state.
    pub fn root(&self) -> State {
        rng::init(self.seed)
    }

    /// Number of children of a node with `state` at `depth`.
    ///
    /// GEO: geometric draw `⌊log(1−u) / log(1−p)⌋` with `p = 1/(1+b0)`,
    /// expectation `b0`, zero beyond the cut-off. BIN: `m` with probability
    /// `q`. The root's branching is fixed at `⌈b0⌉` under both laws (as in
    /// the reference UTS generator), so a tree never degenerates to a
    /// single node on an unlucky seed.
    pub fn num_children(&self, state: &State, depth: u32) -> u32 {
        if depth >= self.depth {
            return 0;
        }
        if depth == 0 {
            return self.b0.ceil() as u32;
        }
        let u = rng::to_prob(state);
        match self.shape {
            Shape::Geometric => {
                let p = 1.0 / (1.0 + self.b0);
                let v = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
                debug_assert!(v >= 0.0);
                v as u32
            }
            Shape::Binomial { m, q } => {
                if u < q {
                    m
                } else {
                    0
                }
            }
        }
    }

    /// Expected number of nodes: `(b0^(d+1) − 1)/(b0 − 1)` for GEO;
    /// `1 + b0/(1 − m·q)` for subcritical BIN.
    pub fn expected_size(&self) -> f64 {
        match self.shape {
            Shape::Geometric => (self.b0.powi(self.depth as i32 + 1) - 1.0) / (self.b0 - 1.0),
            Shape::Binomial { m, q } => {
                let rate = m as f64 * q;
                if rate < 1.0 {
                    1.0 + self.b0 / (1.0 - rate)
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_stops_growth() {
        let t = GeoTree::paper(3);
        let s = t.root();
        assert_eq!(t.num_children(&s, 3), 0);
        assert_eq!(t.num_children(&s, 99), 0);
    }

    #[test]
    fn branching_mean_near_b0() {
        let t = GeoTree::paper(100);
        let root = t.root();
        let mut total = 0u64;
        let n = 20_000u32;
        for i in 0..n {
            let s = rng::spawn(&root, i);
            total += t.num_children(&s, 1) as u64;
        }
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 4.0).abs() < 0.15,
            "geometric mean branching should be ≈ b0=4, got {mean}"
        );
    }

    #[test]
    fn long_tail_exists() {
        // Some nodes must have significantly more than b0 children.
        let t = GeoTree::paper(100);
        let root = t.root();
        let max = (0..20_000)
            .map(|i| t.num_children(&rng::spawn(&root, i), 1))
            .max()
            .unwrap();
        assert!(max >= 20, "expected a long tail, max was {max}");
    }

    #[test]
    fn root_branching_fixed() {
        let t = GeoTree::paper(5);
        assert_eq!(t.num_children(&t.root(), 0), 4);
    }

    #[test]
    fn deterministic_children() {
        let t = GeoTree::paper(10);
        let s = rng::spawn(&t.root(), 3);
        assert_eq!(t.num_children(&s, 2), t.num_children(&s, 2));
    }

    #[test]
    fn expected_size_formula() {
        let t = GeoTree::paper(2);
        // (4^3 - 1) / 3 = 21
        assert!((t.expected_size() - 21.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod bin_tests {
    use super::*;
    use crate::sequential::traverse;

    #[test]
    fn binomial_trees_are_deep_and_narrow() {
        // m=1, q=0.9: each root child heads a chain of expected length 10
        // — the spindly regime. Depth should be a large fraction of size.
        let mut deep = 0;
        let mut total_nodes = 0u64;
        for seed in 0..40 {
            let t = GeoTree::binomial(4, 1, 0.9, seed);
            let s = traverse(&t);
            total_nodes += s.nodes;
            if s.max_depth as u64 * 4 > s.nodes {
                deep += 1; // depth comparable to size ⇒ spindly
            }
        }
        let mean = total_nodes as f64 / 40.0;
        // expected size 1 + 4/(1-0.9) = 41
        assert!(mean > 10.0 && mean < 150.0, "mean size {mean}");
        assert!(deep > 20, "most trees must be deep and narrow, got {deep}");
    }

    #[test]
    fn binomial_matches_expected_size_formula() {
        let t = GeoTree::binomial(4, 4, 0.2, 19);
        assert!((t.expected_size() - 21.0).abs() < 1e-9);
        assert!(GeoTree::binomial(4, 2, 0.5, 19)
            .expected_size()
            .is_infinite());
    }

    #[test]
    fn binomial_distributed_traversal_counts_match() {
        // The balancer must handle spindly trees too (single-interval
        // worklists where fragment stealing has little to take).
        let t = GeoTree::binomial(64, 8, 0.121, 7); // supercritical-ish burst, subcritical tail
        let want = traverse(&t);
        assert!(
            want.nodes > 50,
            "need a non-trivial tree, got {}",
            want.nodes
        );
        let rt = apgas::Runtime::new(apgas::Config::new(3));
        let got = rt.run(move |ctx| {
            crate::run_distributed(
                ctx,
                t,
                glb::GlbConfig {
                    chunk: 4,
                    ..glb::GlbConfig::default()
                },
            )
        });
        assert_eq!(got.stats.nodes, want.nodes);
        assert_eq!(got.stats.max_depth, want.max_depth);
    }
}
