//! Two-process UTS over TCP loopback: the cross-process acceptance harness
//! for the command codec and [`x10rt::TcpTransport`] (PROTOCOL.md).
//!
//! Rank 1 hosts place 1: it binds an ephemeral loopback port, prints
//! `LISTEN <addr>` for the launcher, accepts rank 0's connection and serves
//! until the shutdown command arrives. Rank 0 hosts place 0: it dials rank
//! 1, builds the UTS root bag, keeps half the sibling intervals and ships
//! the other half — as *serialized bytes*, not closures — to place 1 with
//! [`apgas::Ctx::at_async_cmd`]. Place 1 traverses its intervals and sends
//! the node count back the same way. Every message in between (the spawn
//! commands, their finish-protocol credits, the results) crosses a real
//! socket in `CodecMode::Bytes`, so the total node count checks the whole
//! wire stack against the sequential oracle.
//!
//! Work is split *statically* here: GLB's dynamic steal handshake carries
//! closures, which the codec deliberately refuses to ship across processes
//! (`EncodeError::NotSerializable`) — serialized interval commands are the
//! cross-process work representation.
//!
//! Usage:
//!
//! ```text
//! uts_tcp --rank 1 [--depth N]                  # prints LISTEN addr, serves
//! uts_tcp --rank 0 --peer ADDR [--depth N]      # dials, runs, prints NODES
//! uts_tcp --rank 0 --peer ADDR --force-version 99   # handshake-reject probe
//! uts_tcp --rank 0 --peer ADDR --metrics-out M.json --trace-out T.json
//! ```
//!
//! Rank 0 prints `NODES <n>` and exits 0 only when `<n>` equals the
//! sequential traversal of the same tree; any transport or protocol error
//! exits non-zero. The integration test additionally checks `<n>` against a
//! `LocalTransport` run.
//!
//! With `--metrics-out`, rank 0 collects every rank's metrics snapshot over
//! `H_OBS` (PROTOCOL.md §4) before shutting down and writes ONE aggregated
//! cluster metrics JSON (the `uts.nodes` counter then sums both ranks'
//! traversals); it also queries rank 1's live status report over the socket
//! and prints `REMOTE_STATUS ok`. With `--trace-out`, both ranks run with
//! causal tracing on; rank 0 stitches the shipped ring segments into one
//! cross-process DAG, writes the chrome trace (per-rank process lanes,
//! cross-socket flow arrows), and prints `CROSS_RANK_HOPS <n>` — the number
//! of critical-path transport edges that crossed the socket. Pass the same
//! flags to rank 1 (it ignores the file paths; they only switch tracing on).

use apgas::{CodecMode, Config, PlaceId, Runtime};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uts::{GeoTree, Interval, UtsBag};
use x10rt::codec::{put_u32, put_u64, Cursor};
use x10rt::{HandlerId, ProcSpec, TcpConfig, TcpTransport};

/// Traverse the intervals in the args at the receiving place, then command
/// the node count back to place 0.
const H_TRAVERSE: HandlerId = HandlerId(2001);
/// Deliver a remote node count to place 0's accumulator.
const H_RESULT: HandlerId = HandlerId(2002);

/// One serialized [`Interval`]: 20-byte parent SHA-1 state, then depth, lo,
/// hi as little-endian u32 — 32 bytes.
fn put_interval(out: &mut Vec<u8>, iv: &Interval) {
    out.extend_from_slice(&iv.parent);
    put_u32(out, iv.depth);
    put_u32(out, iv.lo);
    put_u32(out, iv.hi);
}

fn read_interval(cur: &mut Cursor) -> Result<Interval, x10rt::DecodeError> {
    let parent: [u8; 20] = cur.take(20)?.try_into().expect("take(20) is 20 bytes");
    Ok(Interval {
        parent,
        depth: cur.u32()?,
        lo: cur.u32()?,
        hi: cur.u32()?,
    })
}

fn encode_intervals(depth: u32, ivs: &[Interval]) -> Vec<u8> {
    let mut args = Vec::with_capacity(8 + 32 * ivs.len());
    put_u32(&mut args, depth);
    put_u32(&mut args, ivs.len() as u32);
    for iv in ivs {
        put_interval(&mut args, iv);
    }
    args
}

/// Rebuild a work bag from serialized intervals and run it dry.
fn traverse_intervals(args: &[u8]) -> u64 {
    let mut cur = Cursor::new(args);
    let depth = cur.u32().expect("tree depth");
    let n = cur.u32().expect("interval count");
    let tree = GeoTree::paper(depth);
    let mut bag = UtsBag::empty(tree);
    for _ in 0..n {
        let iv = read_interval(&mut cur).expect("interval");
        bag.push_interval(iv);
    }
    cur.finish().expect("trailing bytes after intervals");
    while glb::TaskBag::process(&mut bag, 4096) > 0 {}
    glb::TaskBag::take_result(&mut bag).nodes
}

/// Cluster-summable traversal counter: each rank adds the nodes it
/// traversed, so the merged cluster snapshot's `uts.nodes` value is the
/// whole tree — the aggregation-parity oracle of the integration test.
const NODES_METRIC: &str = "uts.nodes";

fn register_handlers(rt: &Runtime, remote_nodes: Arc<AtomicU64>) {
    let obs = rt.obs().cloned();
    rt.register_handler(H_TRAVERSE, move |ctx, args| {
        let nodes = traverse_intervals(args);
        if let Some(o) = &obs {
            o.metrics.counter(NODES_METRIC).add(ctx.here().0, nodes);
        }
        let mut reply = Vec::with_capacity(8);
        put_u64(&mut reply, nodes);
        ctx.at_async_cmd(PlaceId(0), H_RESULT, reply);
    });
    rt.register_handler(H_RESULT, move |_ctx, args| {
        let mut cur = Cursor::new(args);
        let nodes = cur.u64().expect("node count");
        remote_nodes.fetch_add(nodes, Ordering::Relaxed);
    });
}

fn usage(err: &str) -> ! {
    eprintln!("uts_tcp: {err}");
    eprintln!(
        "usage: uts_tcp --rank 0|1 [--peer ADDR] [--depth N] [--force-version V] \
         [--metrics-out FILE] [--trace-out FILE]"
    );
    std::process::exit(2);
}

/// Output requests (rank 0 writes the files; rank 1 only uses the presence
/// of `trace_out` to switch causal tracing on so its segments ship).
#[derive(Default, Clone)]
struct ObsOut {
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut rank: Option<usize> = None;
    let mut peer: Option<String> = None;
    let mut depth = 10u32;
    let mut version: Option<u16> = None;
    let mut out = ObsOut::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--rank" => {
                rank = Some(
                    value(&mut i, "--rank")
                        .parse()
                        .unwrap_or_else(|_| usage("--rank takes 0 or 1")),
                )
            }
            "--peer" => peer = Some(value(&mut i, "--peer")),
            "--depth" => {
                depth = value(&mut i, "--depth")
                    .parse()
                    .unwrap_or_else(|_| usage("--depth takes an integer"))
            }
            "--force-version" => {
                version = Some(
                    value(&mut i, "--force-version")
                        .parse()
                        .unwrap_or_else(|_| usage("--force-version takes a u16")),
                )
            }
            "--metrics-out" => out.metrics_out = Some(value(&mut i, "--metrics-out")),
            "--trace-out" => out.trace_out = Some(value(&mut i, "--trace-out")),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    let rank = rank.unwrap_or_else(|| usage("--rank is required"));

    match rank {
        0 => rank0(
            peer.unwrap_or_else(|| usage("--rank 0 needs --peer ADDR")),
            depth,
            version,
            out,
        ),
        1 => rank1(depth, version, out),
        _ => usage("--rank takes 0 or 1"),
    }
}

/// Place-range table shared by both ranks: one place per process.
fn proc_specs(rank0_addr: String, rank1_addr: String) -> Vec<ProcSpec> {
    vec![
        ProcSpec {
            addr: rank0_addr,
            place_start: 0,
            place_count: 1,
        },
        ProcSpec {
            addr: rank1_addr,
            place_start: 1,
            place_count: 1,
        },
    ]
}

fn config(rank: u32, out: &ObsOut) -> Config {
    let causal = out.trace_out.is_some();
    Config::new(2)
        .codec(CodecMode::Bytes)
        .host_places(rank, 1)
        .trace_enable(causal)
        .causal_enable(causal)
}

fn rank1(_depth: u32, version: Option<u16>, out: ObsOut) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    // The launcher scrapes this line to learn where to point rank 0.
    println!("LISTEN {addr}");
    // Rank 1 never dials rank 0, so rank 0's advertised address is unused.
    let mut cfg = TcpConfig::new(proc_specs("127.0.0.1:0".into(), addr.to_string()), 1);
    if let Some(v) = version {
        cfg = cfg.version(v);
    }
    let transport = match TcpTransport::connect_with_listener(cfg, listener) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("uts_tcp rank 1: handshake failed: {e}");
            std::process::exit(1);
        }
    };
    let rt = Runtime::with_transport(config(1, &out), transport);
    register_handlers(&rt, Arc::new(AtomicU64::new(0)));
    rt.serve(); // returns when rank 0 broadcasts shutdown
}

fn rank0(peer: String, depth: u32, version: Option<u16>, out: ObsOut) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let mut cfg = TcpConfig::new(proc_specs(addr.to_string(), peer), 0);
    if let Some(v) = version {
        cfg = cfg.version(v);
    }
    let transport = match TcpTransport::connect_with_listener(cfg, listener) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("uts_tcp rank 0: handshake failed: {e}");
            std::process::exit(1);
        }
    };
    let rt = Runtime::with_transport(config(0, &out), transport);
    let remote_nodes = Arc::new(AtomicU64::new(0));
    register_handlers(&rt, remote_nodes.clone());

    let tree = GeoTree::paper(depth);
    let local_nodes = rt.run(move |ctx| {
        // Expand a little depth-first so the split has several intervals to
        // take fragments of, then ship the loot to place 1 as bytes.
        let mut bag = UtsBag::root(tree);
        glb::TaskBag::process(&mut bag, 64);
        let loot: Vec<Interval> = match glb::TaskBag::split(&mut bag) {
            Some(loot) => loot.intervals().to_vec(),
            None => Vec::new(),
        };
        ctx.finish(|c| {
            c.at_async_cmd(PlaceId(1), H_TRAVERSE, encode_intervals(tree.depth, &loot));
        });
        while glb::TaskBag::process(&mut bag, 4096) > 0 {}
        glb::TaskBag::take_result(&mut bag).nodes
    });
    if let Some(o) = rt.obs() {
        o.metrics.counter(NODES_METRIC).add(0, local_nodes);
    }
    if out.metrics_out.is_some() || out.trace_out.is_some() {
        // Pull the serving rank's observability state over the socket
        // *before* the shutdown broadcast tears the launch down, and probe
        // the live status query while the peer still serves.
        if let Some((text, _json)) = rt.remote_status(PlaceId(1), std::time::Duration::from_secs(5))
        {
            if text.contains("runtime status: rank 1") {
                println!("REMOTE_STATUS ok");
            } else {
                eprintln!("uts_tcp: unexpected remote status report:\n{text}");
            }
        }
        rt.collect_cluster_obs(std::time::Duration::from_secs(5));
        if let Some(path) = &out.metrics_out {
            let json = rt.cluster_metrics_json().expect("obs enabled");
            std::fs::write(path, json).expect("write --metrics-out");
        }
        if let Some(path) = &out.trace_out {
            let trace = rt.cluster_chrome_trace_json().expect("obs enabled");
            std::fs::write(path, trace).expect("write --trace-out");
            let cp = rt.cluster_critical_path_json().expect("obs enabled");
            let crossings = cp.matches("\"from\": 0, \"to\": 1").count()
                + cp.matches("\"from\": 1, \"to\": 0").count();
            println!("CROSS_RANK_HOPS {crossings}");
        }
    }
    rt.broadcast_shutdown();

    let total = local_nodes + remote_nodes.load(Ordering::Relaxed);
    let want = uts::traverse(&tree).nodes;
    println!("NODES {total}");
    if total != want {
        eprintln!("uts_tcp: node count {total} != sequential oracle {want}");
        std::process::exit(1);
    }
}
