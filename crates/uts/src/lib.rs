//! `uts` — the Unbalanced Tree Search benchmark (§6 of the paper).
//!
//! UTS "measures the rate of traversal of a tree generated on the fly using
//! a splittable random number generator". The tree is wildly unbalanced, so
//! static partitioning is hopeless; the paper's contribution is a lifeline
//! work-stealing scheduler that keeps 55,680 cores busy at 98% efficiency —
//! the first UTS implementation to scale to petaflop systems.
//!
//! This crate provides:
//! * [`sha1`] — from-scratch SHA-1 (the tree generator's mixing function);
//! * [`rng`] — the splittable node-state RNG;
//! * [`tree::GeoTree`] — the geometric tree law (`b0 = 4`, `r = 19`,
//!   depth 14–22 in the paper; smaller here);
//! * [`sequential::traverse`] — the verification oracle / 1-place baseline;
//! * [`bag::UtsBag`] — interval work representation implementing
//!   [`glb::TaskBag`] with fragment-of-every-interval stealing;
//! * [`distributed::run_distributed`] — the full distributed traversal on
//!   the APGAS runtime under GLB.

pub mod bag;
pub mod distributed;
pub mod rng;
pub mod sequential;
pub mod sha1;
pub mod tree;

pub use bag::{Interval, UtsBag};
pub use distributed::{run_distributed, DistributedRun};
pub use sequential::{num_children_at, subtree_nodes, traverse, TreeStats};
pub use tree::GeoTree;
