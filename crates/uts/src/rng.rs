//! The UTS splittable random number generator (Olivier et al., LCPC'06).
//!
//! Each tree node carries a 20-byte SHA-1 state. Spawning child `i` hashes
//! the parent state concatenated with the 4-byte spawn index; drawing a
//! random value interprets the last four state bytes as a non-negative
//! 31-bit integer. Determinism is total: the tree is a pure function of the
//! root seed, which is what makes UTS verifiable under any traversal order
//! or work-stealing schedule.

use crate::sha1::sha1;

/// A node's RNG state (equals its SHA-1 descriptor).
pub type State = [u8; 20];

/// Initial state from the benchmark seed (`r = 19` in the paper).
pub fn init(seed: u32) -> State {
    sha1(&seed.to_le_bytes())
}

/// State of the `spawn_index`-th child.
pub fn spawn(parent: &State, spawn_index: u32) -> State {
    let mut buf = [0u8; 24];
    buf[..20].copy_from_slice(parent);
    buf[20..].copy_from_slice(&spawn_index.to_le_bytes());
    sha1(&buf)
}

/// The node's random draw: a 31-bit non-negative integer.
pub fn rand31(state: &State) -> u32 {
    u32::from_be_bytes(state[16..20].try_into().unwrap()) & 0x7fff_ffff
}

/// The node's random draw as a probability in `[0, 1)`.
pub fn to_prob(state: &State) -> f64 {
    rand31(state) as f64 / 2_147_483_648.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_deterministic_and_seed_sensitive() {
        assert_eq!(init(19), init(19));
        assert_ne!(init(19), init(20));
    }

    #[test]
    fn children_distinct_per_index() {
        let root = init(19);
        let a = spawn(&root, 0);
        let b = spawn(&root, 1);
        assert_ne!(a, b);
        assert_eq!(spawn(&root, 0), a);
    }

    #[test]
    fn rand31_is_31_bits() {
        let mut s = init(7);
        for i in 0..1000 {
            s = spawn(&s, i % 4);
            assert!(rand31(&s) < (1 << 31));
        }
    }

    #[test]
    fn probabilities_in_unit_interval_and_spread() {
        let root = init(19);
        let mut lo = 0usize;
        let mut hi = 0usize;
        for i in 0..10_000 {
            let p = to_prob(&spawn(&root, i));
            assert!((0.0..1.0).contains(&p));
            if p < 0.5 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        // crude uniformity check: both halves well populated
        assert!(lo > 4_000 && hi > 4_000, "lo={lo} hi={hi}");
    }
}
