//! The distributed UTS traversal: [`crate::bag::UtsBag`] under the lifeline
//! balancer, with a FINISH_DENSE root finish — the paper's full §6 stack.

use crate::bag::UtsBag;
use crate::sequential::TreeStats;
use crate::tree::GeoTree;
use apgas::Ctx;
use glb::{GlbConfig, GlbStatsSummary};

/// Outcome of a distributed traversal.
#[derive(Clone, Debug)]
pub struct DistributedRun {
    /// Combined tree statistics (nodes is the UTS figure of merit).
    pub stats: TreeStats,
    /// Per-place node counts (load distribution).
    pub per_place_nodes: Vec<u64>,
    /// Balancer totals (steals, gifts, resuscitations).
    pub balancer: GlbStatsSummary,
}

/// Traverse `tree` across all places of the runtime, dynamically balanced.
/// Call from the main activity.
pub fn run_distributed(ctx: &Ctx, tree: GeoTree, cfg: GlbConfig) -> DistributedRun {
    let root = UtsBag::root(tree);
    let out = glb::run(ctx, cfg, root, move || UtsBag::empty(tree));
    let mut stats = TreeStats::default();
    let mut per_place_nodes = Vec::with_capacity(out.results.len());
    for r in &out.results {
        stats.nodes += r.nodes;
        stats.leaves += r.leaves;
        stats.hashes += r.hashes;
        stats.max_depth = stats.max_depth.max(r.max_depth);
        per_place_nodes.push(r.nodes);
    }
    DistributedRun {
        stats,
        per_place_nodes,
        balancer: out.total_stats(),
    }
}
