//! Sequential UTS traversal — the verification oracle and the paper's
//! single-place baseline ("the single-place performance is identical to the
//! performance of the sequential implementation").

use crate::rng::{self, State};
use crate::tree::GeoTree;

/// Traversal summary.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Total nodes visited (the UTS figure of merit).
    pub nodes: u64,
    /// Leaves (nodes with no children).
    pub leaves: u64,
    /// Deepest node visited.
    pub max_depth: u32,
    /// SHA-1 evaluations performed (one per spawned child, as the paper
    /// counts them: "we compute 17,328,102,175,815 SHA1 hashes").
    pub hashes: u64,
}

/// Depth-first traversal with an explicit stack of (state, depth) nodes.
pub fn traverse(tree: &GeoTree) -> TreeStats {
    let mut stats = TreeStats::default();
    let mut stack: Vec<(State, u32)> = vec![(tree.root(), 0)];
    stats.hashes += 1; // root init hash
    while let Some((state, depth)) = stack.pop() {
        stats.nodes += 1;
        stats.max_depth = stats.max_depth.max(depth);
        let kids = tree.num_children(&state, depth);
        if kids == 0 {
            stats.leaves += 1;
            continue;
        }
        for i in 0..kids {
            stack.push((rng::spawn(&state, i), depth + 1));
            stats.hashes += 1;
        }
    }
    stats
}

/// Walk `path` (child spawn indices) down from the root, returning the
/// addressed node's state and depth. The caller promises every index
/// addresses a child that exists (`i < num_children` at that level).
fn node_at(tree: &GeoTree, path: &[u32]) -> (State, u32) {
    let mut state = tree.root();
    for &i in path {
        state = rng::spawn(&state, i);
    }
    (state, path.len() as u32)
}

/// Child count of the node `path` addresses.
pub fn num_children_at(tree: &GeoTree, path: &[u32]) -> u32 {
    let (state, depth) = node_at(tree, path);
    tree.num_children(&state, depth)
}

/// Nodes in the subtree rooted at the node `path` addresses. A pure
/// function of `(tree, path)` — which makes a subtree the natural unit of
/// *re-executable* work: running the same path again after a place death
/// yields the same count, so resilient workloads can hand subtrees out as
/// idempotent commands.
pub fn subtree_nodes(tree: &GeoTree, path: &[u32]) -> u64 {
    let (state, depth) = node_at(tree, path);
    let mut nodes = 0u64;
    let mut stack: Vec<(State, u32)> = vec![(state, depth)];
    while let Some((s, d)) = stack.pop() {
        nodes += 1;
        for i in 0..tree.num_children(&s, d) {
            stack.push((rng::spawn(&s, i), d + 1));
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_zero_is_single_node() {
        let s = traverse(&GeoTree::paper(0));
        assert_eq!(s.nodes, 1);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.max_depth, 0);
    }

    #[test]
    fn node_count_grows_roughly_geometrically() {
        let mut prev = traverse(&GeoTree::paper(1)).nodes;
        for d in 2..=6 {
            let n = traverse(&GeoTree::paper(d)).nodes;
            assert!(n > prev, "tree must grow with depth");
            prev = n;
        }
        // Expected size at d=6 is ~ (4^7)/3 ≈ 5461; allow a wide band
        // (single sample of a heavy-tailed distribution).
        assert!(prev > 500 && prev < 60_000, "d=6 size {prev}");
    }

    #[test]
    fn nodes_equal_hashes() {
        // Every node except the root is created by exactly one spawn hash;
        // the root costs one init hash. So hashes == nodes when every
        // spawned child is visited.
        let s = traverse(&GeoTree::paper(5));
        assert_eq!(s.hashes, s.nodes);
    }

    #[test]
    fn max_depth_respects_cutoff() {
        let s = traverse(&GeoTree::paper(4));
        assert!(s.max_depth <= 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = traverse(&GeoTree::paper(7));
        let b = traverse(&GeoTree::paper(7));
        assert_eq!(a, b);
    }

    #[test]
    fn subtree_decomposition_sums_to_the_full_traversal() {
        // Splitting the tree at depth 1 (root + one subtree per child) and
        // at depth 2 (root, children, one subtree per grandchild) must both
        // recover the sequential node count exactly.
        let tree = GeoTree::paper(6);
        let total = traverse(&tree).nodes;

        let b0 = num_children_at(&tree, &[]);
        let by_children: u64 = (0..b0).map(|i| subtree_nodes(&tree, &[i])).sum();
        assert_eq!(1 + by_children, total);

        let mut by_grandchildren = 1 + b0 as u64;
        for i in 0..b0 {
            for j in 0..num_children_at(&tree, &[i]) {
                by_grandchildren += subtree_nodes(&tree, &[i, j]);
            }
        }
        assert_eq!(by_grandchildren, total);
    }

    #[test]
    fn subtree_of_the_empty_path_is_the_whole_tree() {
        let tree = GeoTree::paper(5);
        assert_eq!(subtree_nodes(&tree, &[]), traverse(&tree).nodes);
    }
}
