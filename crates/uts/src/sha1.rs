//! SHA-1, implemented from scratch (FIPS 180-1).
//!
//! UTS generates its tree with a SHA-1-based splittable random number
//! generator; the paper's X10 code "calls a native C routine to compute
//! SHA1 hashes". This is that routine. (SHA-1 is long broken for
//! cryptography; UTS uses it purely as a high-quality deterministic mixing
//! function, as do we.)

const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Compute the 20-byte SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = H0;
    let ml = (data.len() as u64).wrapping_mul(8);

    // Process full blocks, then the padded tail.
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        compress(&mut h, block.try_into().unwrap());
    }
    let rem = chunks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    tail[tail_len - 8..tail_len].copy_from_slice(&ml.to_be_bytes());
    compress(&mut h, tail[..64].try_into().unwrap());
    if tail_len == 128 {
        compress(&mut h, tail[64..128].try_into().unwrap());
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn compress(h: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, c) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(c.try_into().unwrap());
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | (!b & d), 0x5A827999),
            20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
            _ => (b ^ c ^ d, 0xCA62C1D6),
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8; 20]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let input = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&input)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn boundary_lengths_55_56_63_64_65() {
        // Exercise the one-vs-two padding block paths; compare against
        // known digests computed with a reference implementation.
        let cases: [(usize, &str); 5] = [
            (55, "c1c8bbdc22796e28c0e15163d20899b65621d65a"),
            (56, "c2db330f6083854c99d4b5bfb6e8f29f201be699"),
            (63, "03f09f5b158a7a8cdad920bddc29b81c18a551f5"),
            (64, "0098ba824b5c16427bd7a1122a5a442a25ec644d"),
            (65, "11655326c708d70319be2610e8a57d9a5b959d3b"),
        ];
        for (len, want) in cases {
            let input = vec![b'a'; len];
            assert_eq!(hex(&sha1(&input)), want, "len={len}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(sha1(b"uts"), sha1(b"uts"));
        assert_ne!(sha1(b"uts"), sha1(b"ut"));
    }
}
