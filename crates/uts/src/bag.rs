//! The UTS work bag: compact interval representation plus the paper's
//! steal policy.
//!
//! §6.1 refinements reproduced here:
//!
//! * "We adopt a more compact representation of the nodes remaining to be
//!   processed in a place, by directly representing intervals of siblings
//!   in the tree as intervals (lower, upper bounds) instead of using
//!   expanded lists of nodes." — [`Interval`];
//! * "to counteract the bias introduced by the depth cut-off, a thief
//!   steals fragments of **every** interval in the work list. There are few
//!   of them since we traverse the tree depth first." — [`UtsBag::split`].

use crate::rng::{self, State};
use crate::sequential::TreeStats;
use crate::tree::GeoTree;
use glb::TaskBag;

/// A maximal run of unexplored siblings: children `lo..hi` of `parent`,
/// living at depth `depth`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// The parent node's SHA-1 state.
    pub parent: State,
    /// Depth of the children in the interval.
    pub depth: u32,
    /// First unexplored child index.
    pub lo: u32,
    /// One past the last child index.
    pub hi: u32,
}

impl Interval {
    /// Number of unexplored siblings.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// True when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// The distributed-traversal work bag (implements [`glb::TaskBag`]).
pub struct UtsBag {
    tree: GeoTree,
    work: Vec<Interval>,
    stats: TreeStats,
}

impl UtsBag {
    /// The root bag: counts the root node and seeds its child interval.
    pub fn root(tree: GeoTree) -> Self {
        let mut bag = UtsBag {
            tree,
            work: Vec::new(),
            stats: TreeStats::default(),
        };
        let root = tree.root();
        bag.stats.hashes += 1; // root init
        bag.visit(root, 0);
        bag
    }

    /// An empty bag for a place awaiting stolen work.
    pub fn empty(tree: GeoTree) -> Self {
        UtsBag {
            tree,
            work: Vec::new(),
            stats: TreeStats::default(),
        }
    }

    /// Pending sibling intervals (diagnostics).
    pub fn intervals(&self) -> &[Interval] {
        &self.work
    }

    /// Queue an interval received from elsewhere — the deserialization
    /// entry point for cross-process work transfer, where intervals arrive
    /// as command bytes (see the `uts_tcp` harness) rather than as a stolen
    /// bag.
    pub fn push_interval(&mut self, iv: Interval) {
        if !iv.is_empty() {
            self.work.push(iv);
        }
    }

    /// Count `state` as visited and queue its children.
    fn visit(&mut self, state: State, depth: u32) {
        self.stats.nodes += 1;
        self.stats.max_depth = self.stats.max_depth.max(depth);
        let kids = self.tree.num_children(&state, depth);
        if kids == 0 {
            self.stats.leaves += 1;
        } else {
            self.work.push(Interval {
                parent: state,
                depth: depth + 1,
                lo: 0,
                hi: kids,
            });
        }
    }

    /// Expand one node (depth-first: take from the last interval).
    fn step(&mut self) -> bool {
        let Some(iv) = self.work.last_mut() else {
            return false;
        };
        let child = rng::spawn(&iv.parent, iv.lo);
        self.stats.hashes += 1;
        let depth = iv.depth;
        iv.lo += 1;
        if iv.is_empty() {
            self.work.pop();
        }
        self.visit(child, depth);
        true
    }
}

// The paper requires that the depth cut-off "should not be used to predict
// subtree sizes ... all nodes are to be treated equally for load balancing
// purposes" — split() therefore halves node *counts*, never consulting
// depth.
impl TaskBag for UtsBag {
    type Result = TreeStats;

    fn process(&mut self, n: usize) -> usize {
        for done in 0..n {
            if !self.step() {
                return done;
            }
        }
        n
    }

    fn is_empty(&self) -> bool {
        self.work.is_empty()
    }

    /// Steal a fragment of *every* interval: the upper half of each range
    /// (rounded down, so the victim always keeps at least one node of any
    /// length-≥2 interval). Length-1 intervals are not stolen.
    fn split(&mut self) -> Option<Self> {
        let mut loot = Vec::new();
        for iv in &mut self.work {
            let take = iv.len() / 2;
            if take == 0 {
                continue;
            }
            let mid = iv.hi - take;
            loot.push(Interval {
                parent: iv.parent,
                depth: iv.depth,
                lo: mid,
                hi: iv.hi,
            });
            iv.hi = mid;
        }
        if loot.is_empty() {
            return None;
        }
        Some(UtsBag {
            tree: self.tree,
            work: loot,
            stats: TreeStats::default(),
        })
    }

    fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.tree, other.tree, "merging bags of different trees");
        self.work.extend(other.work);
        self.stats.nodes += other.stats.nodes;
        self.stats.leaves += other.stats.leaves;
        self.stats.hashes += other.stats.hashes;
        self.stats.max_depth = self.stats.max_depth.max(other.stats.max_depth);
    }

    fn take_result(&mut self) -> TreeStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::traverse;

    #[test]
    fn bag_traversal_matches_sequential() {
        for d in [0u32, 1, 3, 5, 7] {
            let tree = GeoTree::paper(d);
            let mut bag = UtsBag::root(tree);
            while bag.process(1024) > 0 {}
            let got = bag.take_result();
            let want = traverse(&tree);
            assert_eq!(got, want, "depth {d}");
        }
    }

    #[test]
    fn split_takes_fragment_of_every_interval() {
        let tree = GeoTree::paper(8);
        let mut bag = UtsBag::root(tree);
        bag.process(50);
        let before: Vec<Interval> = bag.intervals().to_vec();
        let splittable = before.iter().filter(|iv| iv.len() >= 2).count();
        if splittable == 0 {
            return; // tiny tree state; nothing to assert
        }
        let loot = bag.split().expect("should split");
        assert_eq!(loot.work.len(), splittable);
        // conservation: victim + loot == before, per interval
        for (orig, kept) in before.iter().zip(bag.intervals()) {
            assert_eq!(orig.lo, kept.lo);
            assert!(!kept.is_empty());
        }
        let total_before: u64 = before.iter().map(|i| i.len() as u64).sum();
        let total_after: u64 = bag.intervals().iter().map(|i| i.len() as u64).sum::<u64>()
            + loot.work.iter().map(|i| i.len() as u64).sum::<u64>();
        assert_eq!(total_before, total_after);
    }

    #[test]
    fn split_then_merge_preserves_count() {
        let tree = GeoTree::paper(6);
        let mut bag = UtsBag::root(tree);
        bag.process(20);
        if let Some(loot) = bag.split() {
            let mut other = UtsBag::empty(tree);
            other.merge(loot);
            // process both to completion, combine
            while bag.process(4096) > 0 {}
            while other.process(4096) > 0 {}
            let mut a = bag.take_result();
            let b = other.take_result();
            a.nodes += b.nodes;
            a.leaves += b.leaves;
            a.hashes += b.hashes;
            a.max_depth = a.max_depth.max(b.max_depth);
            assert_eq!(a, traverse(&tree));
        }
    }

    #[test]
    fn empty_bag_refuses_split() {
        let tree = GeoTree::paper(3);
        let mut bag = UtsBag::empty(tree);
        assert!(bag.split().is_none());
        assert!(bag.is_empty());
        assert_eq!(bag.process(10), 0);
    }

    #[test]
    fn singleton_intervals_not_stolen() {
        let tree = GeoTree::paper(3);
        let mut bag = UtsBag::empty(tree);
        bag.work.push(Interval {
            parent: tree.root(),
            depth: 1,
            lo: 0,
            hi: 1,
        });
        assert!(bag.split().is_none(), "length-1 interval must stay");
    }
}
