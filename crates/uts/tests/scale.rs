//! Scale tier (ignored by default — run with `--ignored` in release): the
//! real UTS/GLB protocol stack at thousands of places in one process, on
//! the M:N multiplexed scheduler (`Config::executor_threads`).
//!
//! These are the acceptance tests for lightweight places: the traversal at
//! 4,096 places must count exactly the tree the sequential oracle and a
//! conventional 8-place run count. Debug builds are ~20× slower and the CI
//! `scale` job runs these release-only; see TESTING.md.

use apgas::{Config, Runtime};
use glb::GlbConfig;
use uts::{run_distributed, traverse, GeoTree};

fn cfg() -> GlbConfig {
    GlbConfig {
        chunk: 64,
        ..GlbConfig::default()
    }
}

/// Executor pool width: every core the runner has, min 2 so contexts
/// actually migrate.
fn threads() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().max(2))
}

#[test]
#[ignore = "scale tier: minutes in debug — run release via `cargo test --release -- --ignored`"]
fn uts_4096_places_matches_sequential_and_8_places() {
    let tree = GeoTree::paper(9);
    let want = traverse(&tree);

    let rt8 = Runtime::new(Config::new(8).places_per_host(8));
    let got8 = rt8.run(move |ctx| run_distributed(ctx, tree, cfg()));
    assert_eq!(got8.stats.nodes, want.nodes, "8-place baseline diverged");

    let rt = Runtime::new(
        Config::new(4096)
            .places_per_host(32)
            .executor_threads(threads()),
    );
    let got = rt.run(move |ctx| run_distributed(ctx, tree, cfg()));
    assert_eq!(got.stats.nodes, want.nodes, "4,096-place node count");
    assert_eq!(got.stats.leaves, want.leaves, "4,096-place leaf count");
    assert_eq!(got.stats.hashes, want.hashes, "4,096-place hash count");
    assert_eq!(got.stats.max_depth, want.max_depth);
    assert_eq!(got.stats.nodes, got8.stats.nodes);
    assert_eq!(got.per_place_nodes.len(), 4096);
}

#[test]
#[ignore = "scale tier: minutes in debug — run release via `cargo test --release -- --ignored`"]
fn uts_1024_places_matches_sequential() {
    let tree = GeoTree::paper(9);
    let want = traverse(&tree);
    let rt = Runtime::new(
        Config::new(1024)
            .places_per_host(32)
            .executor_threads(threads()),
    );
    let got = rt.run(move |ctx| run_distributed(ctx, tree, cfg()));
    assert_eq!(got.stats, want);
}
