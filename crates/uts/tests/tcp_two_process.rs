//! Cross-process acceptance: UTS across two real OS processes over TCP
//! loopback must count exactly the nodes a `LocalTransport` run counts, and
//! a protocol-version mismatch must be rejected at the handshake with a
//! typed error on both sides (PROTOCOL.md §handshake).

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const DEPTH: u32 = 10;

/// Spawn rank 1 and scrape the `LISTEN <addr>` line it prints once bound.
fn spawn_rank1(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_uts_tcp"))
        .args(["--rank", "1", "--depth", &DEPTH.to_string()])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rank 1");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().expect("rank 1 stdout"))
        .read_line(&mut line)
        .expect("read LISTEN line");
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("rank 1 printed {line:?}, expected LISTEN <addr>"))
        .to_string();
    (child, addr)
}

/// Kill a straggler so a failed assertion doesn't leave an orphan serving.
fn reap(mut child: Child) -> (bool, String) {
    for _ in 0..200 {
        if let Ok(Some(status)) = child.try_wait() {
            let mut err = String::new();
            if let Some(mut e) = child.stderr.take() {
                let _ = e.read_to_string(&mut err);
            }
            return (status.success(), err);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let _ = child.kill();
    (false, "rank 1 did not exit within 10s".into())
}

#[test]
fn two_process_uts_matches_local_transport() {
    let (rank1, addr) = spawn_rank1(&[]);
    let out = Command::new(env!("CARGO_BIN_EXE_uts_tcp"))
        .args([
            "--rank",
            "0",
            "--peer",
            &addr,
            "--depth",
            &DEPTH.to_string(),
        ])
        .output()
        .expect("run rank 0");
    let (rank1_ok, rank1_err) = reap(rank1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "rank 0 failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(rank1_ok, "rank 1 failed: {rank1_err}");
    let tcp_nodes: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("NODES "))
        .expect("rank 0 prints NODES <n>")
        .trim()
        .parse()
        .expect("NODES value");

    // The same tree over LocalTransport, dynamically balanced, in-process.
    let tree = uts::GeoTree::paper(DEPTH);
    let rt = apgas::Runtime::new(apgas::Config::new(2));
    let local = rt.run(move |ctx| uts::run_distributed(ctx, tree, glb::GlbConfig::default()));
    assert_eq!(
        tcp_nodes, local.stats.nodes,
        "TCP two-process node count must match LocalTransport"
    );
}

/// Pull `"name": <u64>` out of a JSON dump (first occurrence — in the
/// cluster metrics file the `"merged"` section renders before `"per_rank"`,
/// so the first hit is the cluster-wide value).
fn json_counter(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\": ");
    let at = json
        .find(&key)
        .unwrap_or_else(|| panic!("{name} in {json}"));
    json[at + key.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

#[test]
fn two_process_obs_aggregation_matches_in_process_run() {
    let dir = std::env::temp_dir().join(format!("uts-tcp-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics_path = dir.join("cluster_metrics.json");
    let trace_path = dir.join("cluster_trace.json");
    let obs_flags = [
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--trace-out",
        trace_path.to_str().unwrap(),
    ];

    let (rank1, addr) = spawn_rank1(&obs_flags);
    let out = Command::new(env!("CARGO_BIN_EXE_uts_tcp"))
        .args([
            "--rank",
            "0",
            "--peer",
            &addr,
            "--depth",
            &DEPTH.to_string(),
        ])
        .args(obs_flags)
        .output()
        .expect("run rank 0");
    let (rank1_ok, rank1_err) = reap(rank1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "rank 0 failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(rank1_ok, "rank 1 failed: {rank1_err}");

    // ONE aggregated metrics JSON: both ranks' shipments folded, and the
    // summed uts.nodes counter equals an in-process run of the same tree.
    let metrics = std::fs::read_to_string(&metrics_path).expect("cluster metrics written");
    assert!(metrics.contains("\"cluster\": true"), "{metrics}");
    assert!(
        metrics.contains("\"ranks\": [0, 1]"),
        "both ranks folded: {metrics}"
    );
    let tree = uts::GeoTree::paper(DEPTH);
    let rt = apgas::Runtime::new(apgas::Config::new(2));
    let local = rt.run(move |ctx| uts::run_distributed(ctx, tree, glb::GlbConfig::default()));
    assert_eq!(
        json_counter(&metrics, "uts.nodes"),
        local.stats.nodes,
        "aggregated node-count metric must match the in-process run"
    );

    // ONE stitched causal DAG: the chrome trace draws rank 1's lane, and
    // the critical path contains transport edges that crossed the socket.
    let trace = std::fs::read_to_string(&trace_path).expect("cluster trace written");
    assert!(trace.contains("\"pid\": 1"), "remote rank's process lane");
    let hops: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("CROSS_RANK_HOPS "))
        .expect("rank 0 prints CROSS_RANK_HOPS <n>")
        .trim()
        .parse()
        .expect("hop count");
    assert!(hops >= 1, "critical path must cross the socket: {stdout}");

    // The live status query crossed the socket too.
    assert!(
        stdout.contains("REMOTE_STATUS ok"),
        "rank 1's status report must be reachable over TCP: {stdout}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatch_is_rejected_at_the_handshake() {
    let (rank1, addr) = spawn_rank1(&[]);
    let out = Command::new(env!("CARGO_BIN_EXE_uts_tcp"))
        .args(["--rank", "0", "--peer", &addr])
        .args(["--force-version", "99"])
        .output()
        .expect("run rank 0");
    let (rank1_ok, rank1_err) = reap(rank1);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "rank 0 must exit non-zero on version mismatch"
    );
    assert!(
        stderr.contains("version mismatch"),
        "rank 0 stderr must name the mismatch: {stderr}"
    );
    // The accepting side rejects with the same typed error and exits too —
    // no orphan process keeps serving a half-open transport.
    assert!(!rank1_ok, "rank 1 must also fail");
    assert!(
        rank1_err.contains("version mismatch"),
        "rank 1 stderr must name the mismatch: {rank1_err}"
    );
}
