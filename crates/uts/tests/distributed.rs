//! Distributed UTS: the balanced traversal must count exactly the same
//! tree the sequential oracle counts, at any place count.

use apgas::{Config, Runtime};
use glb::GlbConfig;
use uts::{run_distributed, traverse, GeoTree};

fn cfg() -> GlbConfig {
    GlbConfig {
        chunk: 64,
        ..GlbConfig::default()
    }
}

#[test]
fn distributed_counts_match_sequential_one_place() {
    let tree = GeoTree::paper(7);
    let want = traverse(&tree);
    let rt = Runtime::new(Config::new(1));
    let got = rt.run(move |ctx| run_distributed(ctx, tree, cfg()));
    assert_eq!(got.stats, want);
}

#[test]
fn distributed_counts_match_sequential_multi_place() {
    let tree = GeoTree::paper(8);
    let want = traverse(&tree);
    for places in [2usize, 4, 7] {
        let rt = Runtime::new(Config::new(places).places_per_host(4));
        let got = rt.run(move |ctx| run_distributed(ctx, tree, cfg()));
        assert_eq!(got.stats.nodes, want.nodes, "places={places}");
        assert_eq!(got.stats.leaves, want.leaves, "places={places}");
        assert_eq!(got.stats.hashes, want.hashes, "places={places}");
        assert_eq!(got.stats.max_depth, want.max_depth, "places={places}");
    }
}

#[test]
fn load_actually_spreads_across_places() {
    let tree = GeoTree::paper(9);
    let rt = Runtime::new(Config::new(6).places_per_host(4));
    let got = rt.run(move |ctx| run_distributed(ctx, tree, cfg()));
    let busy = got.per_place_nodes.iter().filter(|&&n| n > 0).count();
    assert!(
        busy >= 4,
        "unbalanced tree should still busy most places: {:?}",
        got.per_place_nodes
    );
    // No single place should have done almost everything.
    let max = *got.per_place_nodes.iter().max().unwrap();
    assert!(
        (max as f64) < 0.9 * got.stats.nodes as f64,
        "distribution too skewed: {:?}",
        got.per_place_nodes
    );
}

#[test]
fn balancer_statistics_are_consistent() {
    let tree = GeoTree::paper(8);
    let rt = Runtime::new(Config::new(4));
    let got = rt.run(move |ctx| run_distributed(ctx, tree, cfg()));
    let b = got.balancer;
    // The root node is counted when the root bag is built, before the
    // balancer runs; every other node is one process() step.
    assert_eq!(
        b.processed,
        got.stats.nodes - 1,
        "every node processed once"
    );
    assert!(b.random_hits <= b.random_attempts);
    // resuscitations can't exceed gifts delivered
    assert!(b.resuscitations <= b.lifeline_gifts);
}

#[test]
fn deterministic_total_regardless_of_schedule() {
    // Two runs with different chunk sizes (different interleavings) agree.
    let tree = GeoTree::paper(8);
    let rt = Runtime::new(Config::new(5));
    let a = rt.run(move |ctx| {
        run_distributed(
            ctx,
            tree,
            GlbConfig {
                chunk: 16,
                ..GlbConfig::default()
            },
        )
    });
    let b = rt.run(move |ctx| {
        run_distributed(
            ctx,
            tree,
            GlbConfig {
                chunk: 1024,
                ..GlbConfig::default()
            },
        )
    });
    assert_eq!(a.stats, b.stats);
}
