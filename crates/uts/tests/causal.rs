//! Causal cross-place tracing, end to end: the runtime's causal DAG must
//! reconstruct the finish protocol's actual message chains on real
//! workloads, the chrome export must carry Perfetto flow arrows, and the
//! whole machinery must be invisible when off.

use apgas::{Config, PlaceId, Runtime};
use glb::GlbConfig;
use uts::{run_distributed, traverse, GeoTree};

fn glb_cfg() -> GlbConfig {
    GlbConfig {
        chunk: 64,
        ..GlbConfig::default()
    }
}

/// `at_put` is `finish_pragma(Async, at_async)`: exactly one Task spawn out
/// and one FinishCtl completion back. Its critical path must have exactly
/// those two hops, in that order — the hop count is pinned by the protocol
/// kind, not by scheduling luck.
#[test]
fn at_put_critical_path_matches_async_protocol() {
    let rt = Runtime::new(Config::new(2).causal_enable(true));
    rt.run(|ctx| {
        ctx.at_put(PlaceId(1), |_| {});
    });
    let obs = rt.obs().expect("observability on by default");
    let g = obs.causal_graph();
    let paths = g.critical_paths();
    assert_eq!(
        paths.len(),
        1,
        "one rooted finish expected (the at_put's Async finish): {paths:?}"
    );
    let p = &paths[0];
    assert_eq!(p.home, 0, "at_put's finish is homed at the caller");
    assert_eq!(
        p.hops.len(),
        2,
        "Async finish round trip is spawn out + completion back: {:?}",
        p.hops
    );
    assert_eq!((p.hops[0].from, p.hops[0].to), (0, 1));
    assert_eq!((p.hops[1].from, p.hops[1].to), (1, 0));
    assert_eq!(obs::causal::class_label(p.hops[0].class), "task");
    assert_eq!(obs::causal::class_label(p.hops[1].class), "finish-ctl");
    // Every hop carries its attribution stamps.
    for h in &p.hops {
        assert!(h.bytes > 0);
        assert!(h.send_ts <= h.send_ts + h.transport_ns + h.queue_ns + h.exec_ns);
    }
    assert!(p.total_ns > 0);
}

/// A traced 8-place UTS run exports at least one finish critical path and a
/// chrome trace with cross-place flow events (`"ph": "s"` / `"ph": "f"`
/// pairs Perfetto renders as arrows) — and causal tracing must not disturb
/// the traversal itself.
#[test]
fn traced_uts_exports_critical_paths_and_flow_arrows() {
    let tree = GeoTree::paper(7);
    let want = traverse(&tree);
    let rt = Runtime::new(
        Config::new(8)
            .places_per_host(4)
            .trace_enable(true)
            .causal_enable(true),
    );
    let got = rt.run(move |ctx| run_distributed(ctx, tree, glb_cfg()));
    assert_eq!(got.stats, want, "tracing must not change the traversal");

    let obs = rt.obs().unwrap();
    let g = obs.causal_graph();
    assert!(!g.is_empty(), "8-place UTS must record causal traffic");
    let paths = g.critical_paths();
    assert!(
        !paths.is_empty(),
        "at least one finish critical path expected"
    );
    assert!(paths.iter().all(|p| !p.hops.is_empty()));

    let json = rt.critical_path_json().unwrap();
    assert!(json.contains("\"roots\": [{"), "non-empty roots: {json}");

    let chrome = rt.chrome_trace_json().unwrap();
    assert!(
        chrome.contains("\"ph\": \"s\""),
        "flow-start events expected in chrome export"
    );
    assert!(
        chrome.contains("\"ph\": \"f\""),
        "flow-finish events expected in chrome export"
    );

    let flows = rt.flow_matrix_json().unwrap();
    assert!(flows.contains("\"class\": \"steal\""), "{flows}");
}

/// With causal tracing off (the default), nothing is recorded and the
/// exports say so — and the traversal still matches the oracle, pinning
/// that the off path really is dormant.
#[test]
fn causal_off_records_nothing() {
    let tree = GeoTree::paper(7);
    let want = traverse(&tree);
    let rt = Runtime::new(Config::new(4));
    let got = rt.run(move |ctx| run_distributed(ctx, tree, glb_cfg()));
    assert_eq!(got.stats, want);
    let obs = rt.obs().unwrap();
    assert!(obs.causal_graph().is_empty());
    let json = rt.critical_path_json().unwrap();
    assert!(json.contains("\"roots\": []"), "{json}");
    assert!(rt
        .critical_path_text()
        .unwrap()
        .contains("no rooted causal traffic"));
}

/// The background sampler snapshots the metrics registry while a workload
/// runs, and the series export carries the configured interval.
#[test]
fn sampler_collects_a_metrics_time_series() {
    let tree = GeoTree::paper(8);
    let rt = Runtime::new(Config::new(4).sample_interval_ms(2));
    let _ = rt.run(move |ctx| run_distributed(ctx, tree, glb_cfg()));
    // Give the sampler at least one full interval after the run.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let series = rt.metrics_series_json().expect("sampler configured");
    assert!(series.contains("\"interval_ms\": 2"), "{series}");
    assert!(
        series.contains("\"elapsed_ms\""),
        "at least one sample expected: {series}"
    );
    assert!(series.contains("worker.activities"), "{series}");
}
