fn main() {
    for d in 0..=10u32 {
        let t = uts::GeoTree::paper(d);
        let s = uts::traverse(&t);
        println!(
            "d={d} nodes={} leaves={} maxdepth={}",
            s.nodes, s.leaves, s.max_depth
        );
    }
}
