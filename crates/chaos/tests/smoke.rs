//! Small chaos cells as plain tests: 4 places, one seed per fault kind, so
//! `cargo test` exercises the harness end to end without the full matrix.

use chaos::{
    baseline, install_quiet_panic_hook, plan_for, run_cell_traced, run_cell_with_baseline,
    CellFailure, CellOutcome, CellSpec, FaultKind, Workload,
};
use std::time::Duration;

const PLACES: usize = 4;
const TIMEOUT: Duration = Duration::from_secs(60);

fn cell(workload: Workload, fault: FaultKind, seed: u64) -> CellSpec {
    CellSpec {
        workload,
        fault,
        seed,
        places: PLACES,
        arena_off: false,
        tcp: false,
    }
}

/// Run one cell and assert the degradation contract for its fault kind.
fn check(workload: Workload, fault: FaultKind, seed: u64) {
    install_quiet_panic_hook();
    let spec = cell(workload, fault, seed);
    let want = baseline(workload, PLACES);
    let report = run_cell_with_baseline(spec, want, TIMEOUT);
    match report.result {
        Ok(CellOutcome::Identical) => {}
        Ok(CellOutcome::TypedError(e)) => {
            assert!(
                fault.lossy(),
                "lossless fault {} must not error: {e}",
                fault.label()
            );
        }
        Err(f) => panic!("cell failed ({f:?}); repro: {}", spec.repro_line()),
    }
}

#[test]
fn uts_delay_is_identical() {
    check(Workload::Uts, FaultKind::Delay, 1);
}

#[test]
fn uts_dup_is_identical() {
    check(Workload::Uts, FaultKind::Dup, 1);
}

#[test]
fn uts_drop_identical_or_typed() {
    check(Workload::Uts, FaultKind::Drop, 1);
}

#[test]
fn uts_kill_identical_or_typed() {
    check(Workload::Uts, FaultKind::Kill, 1);
}

#[test]
fn ra_msgs_delay_is_identical() {
    check(Workload::RaMsgs, FaultKind::Delay, 2);
}

#[test]
fn ra_msgs_trunc_identical_or_typed() {
    check(Workload::RaMsgs, FaultKind::Trunc, 2);
}

#[test]
fn ra_msgs_kill_identical_or_typed() {
    check(Workload::RaMsgs, FaultKind::Kill, 2);
}

/// Arena recycling off must not change any outcome — same delay cell as
/// above, batch boxes freshly allocated each flush, identical result. The
/// repro line records the ablation flag so a failure replays exactly.
#[test]
fn ra_msgs_delay_arena_off_is_identical() {
    install_quiet_panic_hook();
    let spec = CellSpec {
        arena_off: true,
        ..cell(Workload::RaMsgs, FaultKind::Delay, 2)
    };
    assert!(spec.repro_line().ends_with("--arena off"));
    let want = baseline(Workload::RaMsgs, PLACES);
    let report = run_cell_with_baseline(spec, want, TIMEOUT);
    assert_eq!(
        report.result,
        Ok(CellOutcome::Identical),
        "repro: {}",
        spec.repro_line()
    );
}

/// The degradation contract holds with every envelope serialized and
/// carried over a real loopback socket (`--transport tcp`): a lossless
/// fault must still reproduce the baseline bit-for-bit.
#[test]
fn uts_delay_over_tcp_is_identical() {
    install_quiet_panic_hook();
    let spec = CellSpec {
        tcp: true,
        ..cell(Workload::Uts, FaultKind::Delay, 1)
    };
    assert!(spec.repro_line().ends_with("--transport tcp"));
    let want = baseline(Workload::Uts, PLACES);
    let report = run_cell_with_baseline(spec, want, TIMEOUT);
    assert_eq!(
        report.result,
        Ok(CellOutcome::Identical),
        "repro: {}",
        spec.repro_line()
    );
}

/// Lossy faults over TCP: drops happen at the modeled layer *before* the
/// socket, so the cell must end identical or with a typed error, exactly as
/// on the local back-end.
#[test]
fn ra_msgs_drop_over_tcp_identical_or_typed() {
    install_quiet_panic_hook();
    let spec = CellSpec {
        tcp: true,
        ..cell(Workload::RaMsgs, FaultKind::Drop, 2)
    };
    let want = baseline(Workload::RaMsgs, PLACES);
    let report = run_cell_with_baseline(spec, want, TIMEOUT);
    match report.result {
        Ok(CellOutcome::Identical) | Ok(CellOutcome::TypedError(_)) => {}
        Err(f) => panic!("cell failed ({f:?}); repro: {}", spec.repro_line()),
    }
}

/// A failing traced cell writes its post-mortem artifacts: chrome trace
/// (with causal flow events), critical-path report, and a runtime status
/// report. A zero hard timeout forces the Hang verdict deterministically
/// without needing a real bug; no watchdog tripped, so the status artifact
/// carries the live introspection dump.
#[test]
fn failing_traced_cell_writes_artifacts() {
    install_quiet_panic_hook();
    let dir = std::env::temp_dir().join(format!("chaos-traces-test-{}", std::process::id()));
    let spec = cell(Workload::Uts, FaultKind::Delay, 1);
    let report = run_cell_traced(spec, 0, Duration::ZERO, Some(&dir));
    assert_eq!(report.result, Err(CellFailure::Hang));
    for suffix in [
        "trace.json",
        "critical_path.json",
        "critical_path.txt",
        "status.txt",
    ] {
        let path = dir.join(format!("chaos-uts-delay-seed1.{suffix}"));
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("artifact {} missing: {e}", path.display()));
        assert!(!body.is_empty(), "{} is empty", path.display());
    }
    let status = std::fs::read_to_string(dir.join("chaos-uts-delay-seed1.status.txt")).unwrap();
    assert!(
        status.contains("runtime status: rank 0"),
        "status artifact carries the introspection dump: {status}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scripted place-kill that trips the finish watchdog must leave a status
/// artifact naming the stalled finish and the watchdog diagnosis — the file
/// CI uploads from the chaos tcp slice. Kill timing is seed-dependent
/// (some seeds land after the traversal finishes and end `Identical`), so
/// probe a few seeds; at least one must stall.
#[test]
fn killed_cell_status_artifact_names_the_stall() {
    install_quiet_panic_hook();
    let dir = std::env::temp_dir().join(format!("chaos-status-test-{}", std::process::id()));
    let want = baseline(Workload::Uts, PLACES);
    for seed in 1..=6 {
        let spec = cell(Workload::Uts, FaultKind::Kill, seed);
        let report = run_cell_traced(spec, want, TIMEOUT, Some(&dir));
        match report.result {
            Ok(CellOutcome::Identical) => continue,
            Ok(CellOutcome::TypedError(_)) => {
                let path = dir.join(format!("chaos-uts-place-kill-seed{seed}.status.txt"));
                let body = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("status artifact {} missing: {e}", path.display()));
                assert!(
                    body.contains("status report at watchdog trip"),
                    "artifact must carry the trip-time report: {body}"
                );
                assert!(
                    body.contains("stalled: watchdog fired"),
                    "artifact must carry the diagnosis: {body}"
                );
                assert!(
                    body.contains("finish["),
                    "artifact must name the stalled finish kind: {body}"
                );
                let _ = std::fs::remove_dir_all(&dir);
                return;
            }
            Err(f) => panic!("cell failed ({f:?}); repro: {}", spec.repro_line()),
        }
    }
    panic!("no seed in 1..=6 stalled under a scripted kill");
}

/// The scripted kill never targets place 0, whatever the seed.
#[test]
fn kill_plan_spares_place_zero() {
    for seed in 0..64 {
        let spec = cell(Workload::Uts, FaultKind::Kill, seed);
        let plan = plan_for(&spec);
        for ev in plan.events() {
            let x10rt::FaultEvent::KillPlace { place, .. } = ev;
            assert!(place.0 != 0, "seed {seed} kills place 0");
            assert!((place.0 as usize) < PLACES, "seed {seed} kills {place:?}");
        }
    }
}
