//! Small chaos cells as plain tests: 4 places, one seed per fault kind, so
//! `cargo test` exercises the harness end to end without the full matrix.

use chaos::{
    baseline, install_quiet_panic_hook, plan_for, run_cell_traced, run_cell_with_baseline,
    CellFailure, CellOutcome, CellSpec, FaultKind, Workload,
};
use std::time::Duration;

const PLACES: usize = 4;
const TIMEOUT: Duration = Duration::from_secs(60);

fn cell(workload: Workload, fault: FaultKind, seed: u64) -> CellSpec {
    CellSpec {
        workload,
        fault,
        seed,
        places: PLACES,
        arena_off: false,
        tcp: false,
    }
}

/// Run one cell and assert the degradation contract for its fault kind,
/// including the loss-tally oracle: a typed error must be backed by a
/// non-empty tally, an accounted loss by destroyed steal traffic, and a
/// lossless kind by an all-zero tally.
fn check(workload: Workload, fault: FaultKind, seed: u64) {
    install_quiet_panic_hook();
    let spec = cell(workload, fault, seed);
    let want = baseline(workload, PLACES);
    let report = run_cell_with_baseline(spec, want, TIMEOUT);
    let lost_total = report.fault_counts.as_ref().map(|c| c.lost_total());
    match report.result {
        Ok(CellOutcome::Identical) => {}
        Ok(CellOutcome::TypedError(e)) => {
            assert!(
                fault.lossy(),
                "lossless fault {} must not error: {e}",
                fault.label()
            );
            // The error must be backed by the tallies: destroyed messages
            // for drop/trunc, a recorded victim for a kill (whose losses
            // are the black-holed mailbox, not in-flight envelopes).
            let c = report
                .fault_counts
                .as_ref()
                .expect("finished run carries fault counts");
            match fault {
                FaultKind::Kill => assert!(c.killed > 0, "typed error but no kill recorded: {e}"),
                _ => assert!(
                    c.lost_total() > 0,
                    "typed error but the loss tally is empty: {e}"
                ),
            }
        }
        Ok(CellOutcome::AccountedLoss { got, lost_steal }) => {
            assert!(
                fault.lossy() && got < want && lost_steal > 0,
                "accounted loss must be a lossy undercount backed by the steal tally \
                 (fault {}, got {got}, want {want}, lost_steal {lost_steal})",
                fault.label()
            );
        }
        Err(f) => panic!("cell failed ({f:?}); repro: {}", spec.repro_line()),
    }
    if !fault.lossy() {
        assert_eq!(
            lost_total,
            Some(0),
            "lossless fault {} destroyed messages",
            fault.label()
        );
    }
}

#[test]
fn uts_delay_is_identical() {
    check(Workload::Uts, FaultKind::Delay, 1);
}

#[test]
fn uts_dup_is_identical() {
    check(Workload::Uts, FaultKind::Dup, 1);
}

#[test]
fn uts_drop_identical_or_typed() {
    check(Workload::Uts, FaultKind::Drop, 1);
}

#[test]
fn uts_kill_identical_or_typed() {
    check(Workload::Uts, FaultKind::Kill, 1);
}

#[test]
fn ra_msgs_delay_is_identical() {
    check(Workload::RaMsgs, FaultKind::Delay, 2);
}

#[test]
fn ra_msgs_trunc_identical_or_typed() {
    check(Workload::RaMsgs, FaultKind::Trunc, 2);
}

#[test]
fn ra_msgs_kill_identical_or_typed() {
    check(Workload::RaMsgs, FaultKind::Kill, 2);
}

/// Arena recycling off must not change any outcome — same delay cell as
/// above, batch boxes freshly allocated each flush, identical result. The
/// repro line records the ablation flag so a failure replays exactly.
#[test]
fn ra_msgs_delay_arena_off_is_identical() {
    install_quiet_panic_hook();
    let spec = CellSpec {
        arena_off: true,
        ..cell(Workload::RaMsgs, FaultKind::Delay, 2)
    };
    assert!(spec.repro_line().ends_with("--arena off"));
    let want = baseline(Workload::RaMsgs, PLACES);
    let report = run_cell_with_baseline(spec, want, TIMEOUT);
    assert_eq!(
        report.result,
        Ok(CellOutcome::Identical),
        "repro: {}",
        spec.repro_line()
    );
}

/// The degradation contract holds with every envelope serialized and
/// carried over a real loopback socket (`--transport tcp`): a lossless
/// fault must still reproduce the baseline bit-for-bit.
#[test]
fn uts_delay_over_tcp_is_identical() {
    install_quiet_panic_hook();
    let spec = CellSpec {
        tcp: true,
        ..cell(Workload::Uts, FaultKind::Delay, 1)
    };
    assert!(spec.repro_line().ends_with("--transport tcp"));
    let want = baseline(Workload::Uts, PLACES);
    let report = run_cell_with_baseline(spec, want, TIMEOUT);
    assert_eq!(
        report.result,
        Ok(CellOutcome::Identical),
        "repro: {}",
        spec.repro_line()
    );
}

/// Lossy faults over TCP: drops happen at the modeled layer *before* the
/// socket, so the cell must end identical or with a typed error, exactly as
/// on the local back-end.
#[test]
fn ra_msgs_drop_over_tcp_identical_or_typed() {
    install_quiet_panic_hook();
    let spec = CellSpec {
        tcp: true,
        ..cell(Workload::RaMsgs, FaultKind::Drop, 2)
    };
    let want = baseline(Workload::RaMsgs, PLACES);
    let report = run_cell_with_baseline(spec, want, TIMEOUT);
    match report.result {
        Ok(_) => {}
        Err(f) => panic!("cell failed ({f:?}); repro: {}", spec.repro_line()),
    }
}

/// A failing traced cell writes its post-mortem artifacts: chrome trace
/// (with causal flow events), critical-path report, and a runtime status
/// report. A zero hard timeout forces the Hang verdict deterministically
/// without needing a real bug; no watchdog tripped, so the status artifact
/// carries the live introspection dump.
#[test]
fn failing_traced_cell_writes_artifacts() {
    install_quiet_panic_hook();
    let dir = std::env::temp_dir().join(format!("chaos-traces-test-{}", std::process::id()));
    let spec = cell(Workload::Uts, FaultKind::Delay, 1);
    let report = run_cell_traced(spec, 0, Duration::ZERO, Some(&dir));
    assert_eq!(report.result, Err(CellFailure::Hang));
    for suffix in [
        "trace.json",
        "critical_path.json",
        "critical_path.txt",
        "status.txt",
    ] {
        let path = dir.join(format!("chaos-uts-delay-seed1.{suffix}"));
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("artifact {} missing: {e}", path.display()));
        assert!(!body.is_empty(), "{} is empty", path.display());
    }
    let status = std::fs::read_to_string(dir.join("chaos-uts-delay-seed1.status.txt")).unwrap();
    assert!(
        status.contains("runtime status: rank 0"),
        "status artifact carries the introspection dump: {status}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scripted place-kill that trips the finish watchdog must leave a status
/// artifact naming the stalled finish and the watchdog diagnosis — the file
/// CI uploads from the chaos tcp slice. Kill timing is seed-dependent
/// (some seeds land after the traversal finishes and end `Identical`), so
/// probe a few seeds; at least one must stall.
#[test]
fn killed_cell_status_artifact_names_the_stall() {
    install_quiet_panic_hook();
    let dir = std::env::temp_dir().join(format!("chaos-status-test-{}", std::process::id()));
    let want = baseline(Workload::Uts, PLACES);
    for seed in 1..=6 {
        let spec = cell(Workload::Uts, FaultKind::Kill, seed);
        let report = run_cell_traced(spec, want, TIMEOUT, Some(&dir));
        match report.result {
            // A kill can also land harmlessly (identical) or only cost
            // in-flight steal loot (accounted); keep probing for a stall.
            Ok(CellOutcome::Identical) | Ok(CellOutcome::AccountedLoss { .. }) => continue,
            Ok(CellOutcome::TypedError(_)) => {
                let path = dir.join(format!("chaos-uts-place-kill-seed{seed}.status.txt"));
                let body = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("status artifact {} missing: {e}", path.display()));
                assert!(
                    body.contains("status report at watchdog trip"),
                    "artifact must carry the trip-time report: {body}"
                );
                assert!(
                    body.contains("stalled: watchdog fired"),
                    "artifact must carry the diagnosis: {body}"
                );
                assert!(
                    body.contains("finish["),
                    "artifact must name the stalled finish kind: {body}"
                );
                let _ = std::fs::remove_dir_all(&dir);
                return;
            }
            Err(f) => panic!("cell failed ({f:?}); repro: {}", spec.repro_line()),
        }
    }
    panic!("no seed in 1..=6 stalled under a scripted kill");
}

/// The scripted kill never targets place 0, whatever the seed or workload.
#[test]
fn kill_plan_spares_place_zero() {
    for workload in [Workload::Uts, Workload::UtsResilient] {
        for seed in 0..64 {
            let spec = cell(workload, FaultKind::Kill, seed);
            let plan = plan_for(&spec);
            for ev in plan.events() {
                let x10rt::FaultEvent::KillPlace { place, .. } = ev;
                assert!(place.0 != 0, "seed {seed} kills place 0");
                assert!((place.0 as usize) < PLACES, "seed {seed} kills {place:?}");
            }
        }
    }
}

/// The recovery cell family (acceptance criterion): a place killed mid-run
/// under `FinishKind::Resilient` must not cost the exact node count — the
/// adopted orphans are re-executed and the result equals the sequential
/// baseline, not merely a typed error. Three seeds = three different
/// victims and kill steps.
#[test]
fn uts_res_kill_recovers_exact_count() {
    install_quiet_panic_hook();
    let want = baseline(Workload::UtsResilient, PLACES);
    for seed in 1..=3 {
        let spec = cell(Workload::UtsResilient, FaultKind::Kill, seed);
        let report = run_cell_with_baseline(spec, want, TIMEOUT);
        assert_eq!(
            report.result,
            Ok(CellOutcome::Identical),
            "recovery cell must match the baseline exactly; repro: {}",
            spec.repro_line()
        );
    }
}

/// The resilient workload's baseline agrees with the sequential oracle —
/// the distributed decomposition (levels 0–1 local + one command per
/// depth-2 subtree) loses and double-counts nothing even fault-free.
#[test]
fn uts_res_baseline_matches_sequential_traversal() {
    let want = uts::traverse(&uts::GeoTree::paper(chaos::UTS_DEPTH)).nodes;
    assert_eq!(baseline(Workload::UtsResilient, PLACES), want);
}

/// Recovery cells under lossless faults behave like any other cell:
/// delayed/reordered command traffic must not change the count.
#[test]
fn uts_res_delay_is_identical() {
    check(Workload::UtsResilient, FaultKind::Delay, 3);
}

/// Dropped command traffic under the resilient workload: every command is
/// counted, so loss either stalls (typed error) or spares the run
/// (identical) — there is no uncounted channel to shrink the result.
#[test]
fn uts_res_drop_identical_or_typed() {
    check(Workload::UtsResilient, FaultKind::Drop, 2);
}
