//! Chaos harness: run real kernels under seeded fault plans and check the
//! graceful-degradation contract.
//!
//! Each **cell** is one (workload, fault kind, seed, places) combination.
//! The harness runs the cell's workload twice — once fault-free (the
//! baseline) and once under the cell's [`x10rt::FaultPlan`] — inside a hard
//! wall-clock timeout, and classifies the outcome:
//!
//! - **Recoverable faults** (`delay`, `dup`) never lose a message, so the
//!   faulted run must produce a result *identical* to the baseline.
//! - **Lossy faults** (`drop`, `trunc`, `kill`) may destroy counted traffic;
//!   the run must then surface a typed [`apgas::ApgasError`] via the finish
//!   liveness watchdog. If, by luck of the seed, nothing load-bearing was
//!   lost, an identical result is also accepted — and a *short* result is
//!   accepted only when the transport's loss tally proves uncounted
//!   steal-handshake traffic was destroyed (see below).
//! - **Recovery cells** ([`Workload::UtsResilient`] under `kill`) run under
//!   `FinishKind::Resilient`: a typed error is *not* good enough — the
//!   resilient finish must adopt the dead place's orphans, re-execute the
//!   lost commands, and still produce the exact baseline node count.
//! - Anything else — a silently wrong result, an untyped panic, or a hang
//!   past the hard timeout — fails the cell, and the harness prints a
//!   one-line command that reproduces it.
//!
//! # Loss accounting and the uncounted steal handshake
//!
//! The finish protocols account for every counted message, so losing one
//! *always* shows up as a protocol stall, which the watchdog converts into a
//! typed error — counted loss is detectable by construction. GLB's
//! random-steal handshake, however, is deliberately **uncounted** (an X10
//! `@Uncounted async` pair, invisible to the root finish): a response
//! carrying loot that vanishes mid-flight shrinks the result with no stall
//! to detect. Early revisions of this harness therefore refused to fault the
//! `Steal` class at all and ran lossy cells with aggregation disabled (so
//! class targeting stayed exact) — leaving the steal handshake untested
//! under loss. Both restrictions are gone:
//! [`x10rt::FaultCounts::lost_by_class`] tallies every destroyed message
//! under its *inner* class even when it rides inside a `Batch` envelope, so
//! lossy cells now fault `Task`, `FinishCtl`, `Steal` **and** `Batch`
//! envelopes with aggregation on, and the oracle accepts a short result only
//! when the tally proves uncounted steal traffic was destroyed
//! ([`CellOutcome::AccountedLoss`]). A wrong result with a zero steal-loss
//! tally is still a failing [`CellFailure::Mismatch`] — the loss channel is
//! no longer silent, it is counted.
//!
//! # Relation to the deterministic simulation tier
//!
//! Chaos runs the *threaded* runtime: the OS scheduler picks the
//! interleavings, so each cell samples fault-space under realistic timing.
//! The `sim` crate is the complementary tier — the same runtime
//! single-stepped under a seeded schedule controller, with the same
//! [`x10rt::FaultTransport`] composable underneath — so
//! interleaving-dependent bugs are found by *search* and replayed
//! bit-for-bit from a one-line repro. TESTING.md (repo root) maps which
//! tier catches what and the seed-corpus conventions shared by both.

use apgas::{ApgasError, ClassFaults, Config, FaultPlan, MsgClass, PlaceId, Runtime};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use x10rt::FaultCounts;

mod workloads;
pub use workloads::{
    ra_msgs_checksum, register_uts_resilient, uts_nodes, uts_resilient_nodes, UtsReplies,
    H_UTS_REPLY, H_UTS_SUBTREE, RA_LOG2_LOCAL, UTS_DEPTH,
};

/// Silence the default panic hook for panics the harness *expects* under
/// fault injection — typed dead-place errors crossing an unwind boundary
/// and the shutdown-abort that frees workers stranded by a killed place —
/// so chaos logs show one verdict line per cell instead of backtraces.
/// Unexpected panics still print normally.
pub fn install_quiet_panic_hook() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let p = info.payload();
        let s = p
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| p.downcast_ref::<String>().map(|s| s.as_str()));
        let expected = p.downcast_ref::<ApgasError>().is_some()
            || s.is_some_and(|s| {
                s.contains(apgas::error::DEAD_PLACE_MARKER) || s.contains("runtime shutting down")
            });
        if !expected {
            default(info);
        }
    }));
}

/// Fault kinds of the chaos matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Drop counted envelopes on the wire (lossy).
    Drop,
    /// Delay/reorder envelopes across pairs, preserving per-pair FIFO
    /// (lossless).
    Delay,
    /// Duplicate envelopes; dups are charged on the wire but filtered at
    /// the receive edge (lossless).
    Dup,
    /// Truncate counted envelopes — they arrive but carry nothing (lossy).
    Trunc,
    /// Kill one place mid-run at a scripted logical step (lossy).
    Kill,
}

impl FaultKind {
    /// Every kind, in matrix order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Dup,
        FaultKind::Trunc,
        FaultKind::Kill,
    ];

    /// Command-line / display name.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Dup => "dup",
            FaultKind::Trunc => "trunc",
            FaultKind::Kill => "place-kill",
        }
    }

    /// Parse a command-line name.
    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "drop" => Some(FaultKind::Drop),
            "delay" => Some(FaultKind::Delay),
            "dup" => Some(FaultKind::Dup),
            "trunc" => Some(FaultKind::Trunc),
            "place-kill" | "kill" => Some(FaultKind::Kill),
            _ => None,
        }
    }

    /// Can this kind destroy messages? Lossy kinds may end in a typed
    /// error; lossless kinds must reproduce the baseline exactly.
    pub fn lossy(self) -> bool {
        matches!(self, FaultKind::Drop | FaultKind::Trunc | FaultKind::Kill)
    }
}

/// Workloads the harness can drive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Distributed UTS under the lifeline balancer (GLB + FINISH_DENSE).
    Uts,
    /// Message-path RandomAccess: every remote update is a tiny counted
    /// spawn under one Default finish (the aggregation benchmark's kernel).
    RaMsgs,
    /// UTS as re-executable subtree commands under `FinishKind::Resilient`
    /// — the recovery cell family: a killed place must not cost the exact
    /// node count (see [`uts_resilient_nodes`]).
    UtsResilient,
}

impl Workload {
    /// Every workload.
    pub const ALL: [Workload; 3] = [Workload::Uts, Workload::RaMsgs, Workload::UtsResilient];

    /// Command-line / display name.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Uts => "uts",
            Workload::RaMsgs => "ra-msgs",
            Workload::UtsResilient => "uts-res",
        }
    }

    /// Parse a command-line name.
    pub fn parse(s: &str) -> Option<Workload> {
        match s {
            "uts" => Some(Workload::Uts),
            "ra-msgs" | "ra" => Some(Workload::RaMsgs),
            "uts-res" | "uts-resilient" => Some(Workload::UtsResilient),
            _ => None,
        }
    }
}

/// One cell of the chaos matrix.
#[derive(Clone, Copy, Debug)]
pub struct CellSpec {
    /// Which kernel to run.
    pub workload: Workload,
    /// Which fault kind to inject.
    pub fault: FaultKind,
    /// Seed for the deterministic fault decisions (and the scripted kill).
    pub seed: u64,
    /// Place count (RandomAccess needs a power of two).
    pub places: usize,
    /// Disable envelope-arena recycling (`Config::arena_disable`) — the
    /// matrix runs each transport cell with recycling on and off to prove
    /// box reuse never changes an outcome under faults.
    pub arena_off: bool,
    /// Run over [`x10rt::TcpTransport`] in self-loop mode with
    /// `CodecMode::Bytes`, so every envelope is serialized per PROTOCOL.md
    /// and crosses a real loopback socket before delivery. Faults still
    /// inject at the modeled layer (the fault decorator wraps the TCP
    /// transport), so the same seeds hit the same envelopes on both
    /// back-ends.
    pub tcp: bool,
}

impl CellSpec {
    /// Cells that must *recover*, not merely degrade: the resilient-UTS
    /// workload under a place kill has to adopt the orphans, re-execute the
    /// lost commands, and match the baseline exactly — a typed error here
    /// means the recovery path failed, not that the run degraded cleanly.
    pub fn must_recover(&self) -> bool {
        self.workload == Workload::UtsResilient && self.fault == FaultKind::Kill
    }

    /// The one-line command reproducing this cell.
    pub fn repro_line(&self) -> String {
        let mut line = format!(
            "cargo run --release -p chaos -- --workload {} --fault {} --seed {} --places {}",
            self.workload.label(),
            self.fault.label(),
            self.seed,
            self.places
        );
        if self.arena_off {
            line.push_str(" --arena off");
        }
        if self.tcp {
            line.push_str(" --transport tcp");
        }
        line
    }
}

/// How a cell ended, when it ended acceptably.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellOutcome {
    /// The faulted run produced the baseline result exactly.
    Identical,
    /// The faulted run surfaced a typed error (lossy kinds only, and never
    /// for a [`CellSpec::must_recover`] cell).
    TypedError(String),
    /// The faulted run completed *short* of the baseline, and the
    /// transport's per-class loss tally proves destroyed uncounted
    /// steal-handshake traffic explains it (lossy kinds only). Not silent
    /// loss: the channel is counted — see the module docs.
    AccountedLoss {
        /// Faulted result (strictly below the baseline).
        got: u64,
        /// Destroyed `Steal`-class messages, batched or not.
        lost_steal: u64,
    },
}

/// How a cell failed the degradation contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellFailure {
    /// The run completed with a wrong result and no error — silent loss.
    Mismatch {
        /// Baseline (fault-free) result.
        want: u64,
        /// Faulted result.
        got: u64,
    },
    /// A lossless fault kind surfaced an error it should never produce.
    UnexpectedError(String),
    /// The run panicked with something other than a typed error.
    UntypedPanic(String),
    /// The run exceeded the hard wall-clock timeout.
    Hang,
}

/// A cell's verdict plus its wall-clock duration.
pub struct CellReport {
    /// The cell that ran.
    pub spec: CellSpec,
    /// Pass/fail classification.
    pub result: Result<CellOutcome, CellFailure>,
    /// Wall-clock time of the faulted run.
    pub elapsed: Duration,
    /// The fault decorator's tallies, smuggled out of the cell thread when
    /// the run finished (in any way) before the hard timeout. `None` on a
    /// hang. Lossless kinds must show `lost_total() == 0` here.
    pub fault_counts: Option<FaultCounts>,
}

/// The fault plan of one cell. Probabilities are tuned so every seed
/// injects a meaningful number of faults at the harness's workload sizes.
pub fn plan_for(spec: &CellSpec) -> FaultPlan {
    let seed = spec.seed;
    match spec.fault {
        // Lossy kinds target the counted classes, the uncounted steal
        // handshake, and the batch envelopes all of them may ride in —
        // losses are tallied per inner class, see the module docs.
        FaultKind::Drop => FaultPlan::new(seed)
            .class(MsgClass::Task, ClassFaults::dropping(0.01))
            .class(MsgClass::FinishCtl, ClassFaults::dropping(0.01))
            .class(MsgClass::Steal, ClassFaults::dropping(0.01))
            .class(MsgClass::Batch, ClassFaults::dropping(0.01)),
        FaultKind::Trunc => FaultPlan::new(seed)
            .class(MsgClass::Task, ClassFaults::truncating(0.01))
            .class(MsgClass::FinishCtl, ClassFaults::truncating(0.01))
            .class(MsgClass::Steal, ClassFaults::truncating(0.01))
            .class(MsgClass::Batch, ClassFaults::truncating(0.01)),
        // Lossless kinds hammer everything, batches included.
        FaultKind::Delay => FaultPlan::new(seed)
            .all_classes(ClassFaults::delaying(0.25))
            .delay_steps(1, 48),
        FaultKind::Dup => FaultPlan::new(seed).all_classes(ClassFaults::duplicating(0.25)),
        FaultKind::Kill => {
            // Never place 0 (the main activity lives there); vary victim
            // and step with the seed so the matrix covers different phases
            // of the run. The resilient-UTS workload finishes in a few
            // dozen logical steps where the GLB workloads tick thousands,
            // so its kill must land much earlier to strike mid-protocol.
            let victim = 1 + (seed % (spec.places as u64 - 1)) as u32;
            let step = match spec.workload {
                Workload::UtsResilient => 3 + (seed.wrapping_mul(7) % 40),
                _ => 1_000 + (seed.wrapping_mul(37) % 2_000),
            };
            FaultPlan::new(seed).kill_place(PlaceId(victim), step)
        }
    }
}

/// Runtime configuration of one faulted run. `traced` additionally turns on
/// event tracing and causal cross-place tracing, so a failing cell can be
/// diagnosed from its trace artifacts instead of re-run under a debugger.
fn faulted_config(spec: &CellSpec, traced: bool) -> Config {
    Config::new(spec.places)
        .places_per_host(4)
        .fault_plan(plan_for(spec))
        .finish_watchdog(Duration::from_secs(2))
        .trace_enable(traced)
        .causal_enable(traced)
        // Aggregation stays ON for every kind, lossy ones included: batch
        // losses are tallied per inner class (see module docs).
        .arena_disable(spec.arena_off)
        // TCP cells serialize every protocol message (closures cannot cross
        // a socket); local cells keep the inline fast path.
        .codec(if spec.tcp {
            apgas::CodecMode::Bytes
        } else {
            apgas::CodecMode::Inline
        })
}

/// Build the runtime for one faulted cell on the back-end the spec selects.
/// The fault decorator always wraps the *outermost* transport, so drops and
/// duplicates hit the same modeled envelopes whether or not the bytes then
/// cross a socket.
fn cell_runtime(spec: &CellSpec, traced: bool) -> Runtime {
    let cfg = faulted_config(spec, traced);
    if spec.tcp {
        let t = x10rt::TcpTransport::self_loop(spec.places).expect("tcp self-loop transport");
        Runtime::with_transport(cfg, t)
    } else {
        Runtime::new(cfg)
    }
}

/// GLB knobs for chaos runs: small chunks (frequent probes ⇒ frequent
/// logical-clock ticks), and a steal-handshake timeout only when the
/// transport may lose the handshake.
fn glb_config(fault: Option<FaultKind>) -> glb::GlbConfig {
    glb::GlbConfig {
        chunk: 64,
        steal_timeout: match fault {
            Some(f) if f.lossy() => Some(Duration::from_millis(300)),
            _ => None,
        },
        ..glb::GlbConfig::default()
    }
}

fn run_workload(rt: &Runtime, w: Workload, fault: Option<FaultKind>) -> Result<u64, ApgasError> {
    let glb_cfg = glb_config(fault);
    match w {
        Workload::Uts => rt.run_checked(move |ctx| uts_nodes(ctx, glb_cfg)),
        Workload::RaMsgs => rt.run_checked(ra_msgs_checksum),
        Workload::UtsResilient => {
            let replies = register_uts_resilient(rt);
            rt.run_checked(move |ctx| uts_resilient_nodes(ctx, &replies))
        }
    }
}

/// Fault-free reference result for `workload` at `places` places.
pub fn baseline(workload: Workload, places: usize) -> u64 {
    let rt = Runtime::new(Config::new(places).places_per_host(4));
    run_workload(&rt, workload, None).expect("fault-free baseline cannot fail")
}

/// Run one cell against a precomputed baseline, with a hard wall-clock
/// timeout enforced from outside the runtime (a watchdog for the watchdog:
/// even a runtime bug that defeats the finish watchdog cannot hang the
/// harness — the cell is reported as [`CellFailure::Hang`] and the stuck
/// thread is abandoned).
pub fn run_cell_with_baseline(spec: CellSpec, want: u64, hard_timeout: Duration) -> CellReport {
    run_cell_traced(spec, want, hard_timeout, None)
}

/// [`run_cell_with_baseline`] with post-mortem artifacts: when `trace_dir`
/// is set, the faulted run carries event tracing and causal tracing, and a
/// *failing* cell writes its chrome trace (flow arrows included), its
/// critical-path report, and its status report into that directory. A cell
/// ending in a typed error — the expected lossy degradation — writes the
/// same artifacts: its status report preserves the finish watchdog's
/// diagnosis (which finish kind stalled, at which place). The observability
/// and status handles are smuggled out of the cell thread right after
/// runtime construction, so the artifacts can be cut even when the cell
/// **hangs** — the stuck runtime's rings are snapshotted from outside.
pub fn run_cell_traced(
    spec: CellSpec,
    want: u64,
    hard_timeout: Duration,
    trace_dir: Option<&std::path::Path>,
) -> CellReport {
    let start = Instant::now();
    let traced = trace_dir.is_some();
    let (tx, rx) = crossbeam_channel::bounded(1);
    let (obs_tx, obs_rx) =
        crossbeam_channel::bounded::<(std::sync::Arc<obs::Obs>, apgas::StatusHandle)>(1);
    std::thread::Builder::new()
        .name(format!("chaos-{}-{}", spec.fault.label(), spec.seed))
        .spawn(move || {
            let rt = cell_runtime(&spec, traced);
            if let Some(o) = rt.obs() {
                let _ = obs_tx.send((o.clone(), rt.status_handle()));
            }
            let out = catch_unwind(AssertUnwindSafe(|| {
                run_workload(&rt, spec.workload, Some(spec.fault))
            }));
            // Deliver the verdict (and the loss tallies the oracle needs)
            // before dropping the runtime: teardown is designed not to
            // hang, but the report must not depend on that.
            let verdict = match out {
                Ok(Ok(v)) => Ok(v),
                Ok(Err(e)) => Err(Some(e.to_string())),
                Err(p) => Err(ApgasError::from_panic(&*p).map(|e| e.to_string())),
            };
            let _ = tx.send((verdict, rt.fault_counts()));
            drop(rt);
        })
        .expect("spawn chaos cell thread");
    let (verdict, fault_counts) = match rx.recv_timeout(hard_timeout) {
        Err(_) => (Err(CellFailure::Hang), None),
        Ok((v, counts)) => (classify(&spec, v, want, counts.as_ref()), counts),
    };
    let result = verdict;
    // Failures and typed errors both leave artifacts; only a run identical
    // to the baseline has nothing to diagnose.
    if !matches!(result, Ok(CellOutcome::Identical)) {
        // Wait briefly for the runtime-construction handshake: a cell can
        // fail (e.g. a zero timeout) before the thread has sent its handle.
        if let (Some(dir), Ok((o, status))) =
            (trace_dir, obs_rx.recv_timeout(Duration::from_secs(2)))
        {
            write_cell_artifacts(dir, &spec, &o, &status);
        }
    }
    CellReport {
        spec,
        result,
        elapsed: start.elapsed(),
        fault_counts,
    }
}

/// The degradation oracle: classify one finished (non-hung) run. `counts`
/// is the fault decorator's tally, used to tell an *accounted* loss of
/// uncounted steal traffic from a silent mismatch.
fn classify(
    spec: &CellSpec,
    verdict: Result<u64, Option<String>>,
    want: u64,
    counts: Option<&FaultCounts>,
) -> Result<CellOutcome, CellFailure> {
    // A lossless kind must never destroy a message: a non-zero tally is a
    // fault-layer bug even when the result happens to come out right.
    if !spec.fault.lossy() {
        if let Some(c) = counts {
            if c.lost_total() > 0 {
                return Err(CellFailure::UnexpectedError(format!(
                    "lossless fault kind destroyed {} messages",
                    c.lost_total()
                )));
            }
        }
    }
    match verdict {
        Ok(got) if got == want => Ok(CellOutcome::Identical),
        // A completed-but-short run under a lossy kind is acceptable only
        // when destroyed uncounted steal traffic explains it: counted loss
        // always stalls the protocols instead of completing (watchdog ⇒
        // typed error), so the tally is the only honest escape hatch.
        Ok(got) => match counts {
            Some(c) if spec.fault.lossy() && got < want && c.lost(MsgClass::Steal) > 0 => {
                Ok(CellOutcome::AccountedLoss {
                    got,
                    lost_steal: c.lost(MsgClass::Steal),
                })
            }
            _ => Err(CellFailure::Mismatch { want, got }),
        },
        Err(Some(typed)) if spec.fault.lossy() && !spec.must_recover() => {
            Ok(CellOutcome::TypedError(typed))
        }
        Err(Some(typed)) => Err(CellFailure::UnexpectedError(typed)),
        Err(None) => Err(CellFailure::UntypedPanic(
            "non-typed panic in faulted run".into(),
        )),
    }
}

/// Write a diagnosable cell's chrome trace, critical-path report, and
/// status report. Best effort: artifact IO problems are reported to stderr,
/// never escalated — the cell's verdict is already decided.
fn write_cell_artifacts(
    dir: &std::path::Path,
    spec: &CellSpec,
    o: &obs::Obs,
    status: &apgas::StatusHandle,
) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("chaos: cannot create trace dir {}: {e}", dir.display());
        return;
    }
    let stem = format!(
        "chaos-{}-{}-seed{}",
        spec.workload.label(),
        spec.fault.label(),
        spec.seed
    );
    // Prefer the report rendered at the instant the watchdog tripped (it
    // names the stalled finish kind and place); fall back to a live one.
    let status_body = match status.last_watchdog_report() {
        Some(r) => format!("# status report at watchdog trip\n{r}"),
        None => format!(
            "# live status report (no watchdog trip recorded)\n{}",
            status.text()
        ),
    };
    let artifacts = [
        (format!("{stem}.trace.json"), o.chrome_trace_json()),
        (format!("{stem}.critical_path.json"), o.critical_path_json()),
        (format!("{stem}.critical_path.txt"), o.critical_path_text()),
        (format!("{stem}.status.txt"), status_body),
    ];
    for (name, body) in artifacts {
        let path = dir.join(&name);
        match std::fs::write(&path, body) {
            Ok(()) => println!("chaos: wrote {}", path.display()),
            Err(e) => eprintln!("chaos: cannot write {}: {e}", path.display()),
        }
    }
}

/// [`run_cell_with_baseline`] with the baseline computed on the spot.
pub fn run_cell(spec: CellSpec, hard_timeout: Duration) -> CellReport {
    let want = baseline(spec.workload, spec.places);
    run_cell_with_baseline(spec, want, hard_timeout)
}

/// Shared baseline cache for matrix runs (one fault-free run per
/// (workload, places), not per cell).
pub struct BaselineCache {
    entries: Vec<((Workload, usize), u64)>,
}

impl BaselineCache {
    /// Empty cache.
    pub fn new() -> Self {
        BaselineCache {
            entries: Vec::new(),
        }
    }

    /// The baseline for `(workload, places)`, computing it on first use.
    pub fn get(&mut self, workload: Workload, places: usize) -> u64 {
        if let Some((_, v)) = self
            .entries
            .iter()
            .find(|((w, p), _)| *w == workload && *p == places)
        {
            return *v;
        }
        let v = baseline(workload, places);
        self.entries.push(((workload, places), v));
        v
    }
}

impl Default for BaselineCache {
    fn default() -> Self {
        Self::new()
    }
}
