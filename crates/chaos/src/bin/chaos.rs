//! Chaos matrix driver.
//!
//! Runs (workload × fault × seed) cells and checks the graceful-degradation
//! contract: identical result, or a clean typed error for lossy faults —
//! never a silent wrong answer, never a hang. Each failing cell prints a
//! one-line reproduction command; the process exits non-zero if any cell
//! fails.
//!
//! Usage:
//!
//! ```text
//! chaos --matrix                               # full matrix, default seeds
//! chaos --workload uts --fault drop --seed 3   # one cell
//! chaos --matrix --seeds 1,2,3 --places 8 --timeout-secs 60
//! chaos --matrix --repro-out failing.txt       # write repro lines on failure
//! ```
//!
//! `--workload` takes `uts`, `ra-msgs`, `uts-res` or `all`; `--fault` takes `drop`,
//! `delay`, `dup`, `trunc`, `place-kill` or `all`. With `--trace-dir PATH`,
//! cells run with event + causal tracing on and every failing cell writes
//! its chrome trace and critical-path report there (CI uploads them).

use chaos::{
    run_cell_traced, BaselineCache, CellFailure, CellOutcome, CellSpec, FaultKind, Workload,
};
use std::path::PathBuf;
use std::time::Duration;

struct Args {
    workloads: Vec<Workload>,
    faults: Vec<FaultKind>,
    seeds: Vec<u64>,
    places: usize,
    arena_off: bool,
    tcp: bool,
    timeout: Duration,
    repro_out: Option<String>,
    trace_dir: Option<PathBuf>,
}

fn usage(err: &str) -> ! {
    eprintln!("chaos: {err}");
    eprintln!(
        "usage: chaos [--matrix] [--workload uts|ra-msgs|uts-res|all] \
         [--fault drop|delay|dup|trunc|place-kill|all] \
         [--seed N | --seeds A,B,C] [--places N] [--arena on|off] \
         [--transport local|tcp] [--timeout-secs N] [--repro-out PATH] \
         [--trace-dir PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut workloads: Option<Vec<Workload>> = None;
    let mut faults: Option<Vec<FaultKind>> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut places = 8usize;
    let mut arena_off = false;
    let mut tcp = false;
    let mut timeout = Duration::from_secs(120);
    let mut repro_out = None;
    let mut trace_dir = None;
    let mut matrix = false;

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--matrix" => matrix = true,
            "--workload" => {
                let v = value(&mut i, "--workload");
                workloads = Some(if v == "all" {
                    Workload::ALL.to_vec()
                } else {
                    vec![Workload::parse(&v)
                        .unwrap_or_else(|| usage(&format!("unknown workload {v}")))]
                });
            }
            "--fault" => {
                let v = value(&mut i, "--fault");
                faults = Some(if v == "all" {
                    FaultKind::ALL.to_vec()
                } else {
                    vec![FaultKind::parse(&v)
                        .unwrap_or_else(|| usage(&format!("unknown fault {v}")))]
                });
            }
            "--seed" => {
                let v = value(&mut i, "--seed");
                seeds = Some(vec![v
                    .parse()
                    .unwrap_or_else(|_| usage("--seed takes an integer"))]);
            }
            "--seeds" => {
                let v = value(&mut i, "--seeds");
                seeds = Some(
                    v.split(',')
                        .map(|s| {
                            s.trim()
                                .parse()
                                .unwrap_or_else(|_| usage("--seeds takes integers"))
                        })
                        .collect(),
                );
            }
            "--places" => {
                places = value(&mut i, "--places")
                    .parse()
                    .unwrap_or_else(|_| usage("--places takes an integer"));
            }
            "--arena" => {
                arena_off = match value(&mut i, "--arena").as_str() {
                    "on" => false,
                    "off" => true,
                    _ => usage("--arena takes on|off"),
                };
            }
            "--transport" => {
                tcp = match value(&mut i, "--transport").as_str() {
                    "local" => false,
                    "tcp" => true,
                    _ => usage("--transport takes local|tcp"),
                };
            }
            "--timeout-secs" => {
                timeout = Duration::from_secs(
                    value(&mut i, "--timeout-secs")
                        .parse()
                        .unwrap_or_else(|_| usage("--timeout-secs takes an integer")),
                );
            }
            "--repro-out" => repro_out = Some(value(&mut i, "--repro-out")),
            "--trace-dir" => trace_dir = Some(PathBuf::from(value(&mut i, "--trace-dir"))),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    if !matrix && workloads.is_none() && faults.is_none() {
        usage("pass --matrix, or select a cell with --workload/--fault");
    }
    if places < 2 {
        usage("--places must be at least 2 (faults need a remote edge)");
    }
    Args {
        workloads: workloads.unwrap_or_else(|| Workload::ALL.to_vec()),
        faults: faults.unwrap_or_else(|| FaultKind::ALL.to_vec()),
        seeds: seeds.unwrap_or_else(|| vec![1, 2, 3]),
        places,
        arena_off,
        tcp,
        timeout,
        repro_out,
        trace_dir,
    }
}

fn main() {
    chaos::install_quiet_panic_hook();
    let args = parse_args();
    let mut baselines = BaselineCache::new();
    let mut failures: Vec<(CellSpec, CellFailure)> = Vec::new();
    let mut ran = 0usize;

    for &workload in &args.workloads {
        let want = baselines.get(workload, args.places);
        println!(
            "baseline {:>8} @ {} places: {}",
            workload.label(),
            args.places,
            want
        );
        for &fault in &args.faults {
            for &seed in &args.seeds {
                let spec = CellSpec {
                    workload,
                    fault,
                    seed,
                    places: args.places,
                    arena_off: args.arena_off,
                    tcp: args.tcp,
                };
                let report = run_cell_traced(spec, want, args.timeout, args.trace_dir.as_deref());
                ran += 1;
                let ms = report.elapsed.as_millis();
                match &report.result {
                    Ok(CellOutcome::Identical) => {
                        println!(
                            "PASS {:>8} {:>10} seed={:<3} {:>6}ms identical",
                            workload.label(),
                            fault.label(),
                            seed,
                            ms
                        );
                    }
                    Ok(CellOutcome::TypedError(e)) => {
                        println!(
                            "PASS {:>8} {:>10} seed={:<3} {:>6}ms typed error: {}",
                            workload.label(),
                            fault.label(),
                            seed,
                            ms,
                            first_line(e)
                        );
                    }
                    Ok(CellOutcome::AccountedLoss { got, lost_steal }) => {
                        println!(
                            "PASS {:>8} {:>10} seed={:<3} {:>6}ms accounted loss: got {} \
                             (want {}), {} steal msgs destroyed",
                            workload.label(),
                            fault.label(),
                            seed,
                            ms,
                            got,
                            want,
                            lost_steal
                        );
                    }
                    Err(f) => {
                        println!(
                            "FAIL {:>8} {:>10} seed={:<3} {:>6}ms {}",
                            workload.label(),
                            fault.label(),
                            seed,
                            ms,
                            describe(f)
                        );
                        println!("  repro: {}", spec.repro_line());
                        failures.push((spec, f.clone()));
                    }
                }
            }
        }
    }

    println!(
        "chaos: {} cells, {} passed, {} failed",
        ran,
        ran - failures.len(),
        failures.len()
    );
    if let Some(path) = &args.repro_out {
        if !failures.is_empty() {
            let body: String = failures
                .iter()
                .map(|(spec, f)| format!("# {}\n{}\n", describe(f), spec.repro_line()))
                .collect();
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("chaos: cannot write {path}: {e}");
            } else {
                println!("chaos: wrote failing-seed repro lines to {path}");
            }
        }
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

fn describe(f: &CellFailure) -> String {
    match f {
        CellFailure::Mismatch { want, got } => {
            format!("SILENT MISMATCH want={want} got={got}")
        }
        CellFailure::UnexpectedError(e) => {
            format!("error from a lossless fault: {}", first_line(e))
        }
        CellFailure::UntypedPanic(e) => format!("untyped panic: {}", first_line(e)),
        CellFailure::Hang => "HANG (hard timeout exceeded)".into(),
    }
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or(s)
}
