//! The two kernels the chaos matrix drives, each reduced to a single
//! deterministic `u64` figure so faulted runs can be compared bit-for-bit
//! against a fault-free baseline.

use apgas::{Ctx, PlaceGroup, PlaceId, PlaceLocalHandle};
use glb::GlbConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use uts::GeoTree;

/// UTS tree depth for chaos runs: big enough that steals, lifelines and
/// finish traffic all happen at 8 places, small enough for CI.
pub const UTS_DEPTH: u32 = 9;

/// RandomAccess table size per place (log2 words): tiny — the point is
/// message traffic, not memory pressure.
pub const RA_LOG2_LOCAL: u32 = 8;

/// Distributed UTS node count (GLB + FINISH_DENSE + steal/lifeline
/// traffic). Deterministic: the tree is a pure function of its parameters.
pub fn uts_nodes(ctx: &Ctx, cfg: GlbConfig) -> u64 {
    uts::run_distributed(ctx, GeoTree::paper(UTS_DEPTH), cfg)
        .stats
        .nodes
}

/// Message-path RandomAccess checksum: every place scatters XOR updates to
/// the global table as tiny counted spawns under one Default finish, then
/// the table is folded to a single XOR digest. Updates commute, so the
/// digest is deterministic; any lost update changes it.
pub fn ra_msgs_checksum(ctx: &Ctx) -> u64 {
    let places = ctx.num_places();
    assert!(places.is_power_of_two(), "RA needs power-of-two places");
    let local_n = 1usize << RA_LOG2_LOCAL;
    let updates_per_place = 2 * local_n;
    let global_mask = local_n * places - 1;

    let table = PlaceLocalHandle::init(ctx, &PlaceGroup::world(ctx), move |_| {
        (0..local_n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>()
    });

    ctx.finish(|c| {
        for p in c.places() {
            c.at_async(p, move |cc| {
                let me = cc.here().index();
                let mine = table.get(cc);
                // xorshift64 stream, seeded per place.
                let mut x = 0x9e3779b97f4a7c15u64 ^ ((me as u64 + 1) << 17);
                for _ in 0..updates_per_place {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let idx = (x as usize) & global_mask;
                    let dest = idx >> RA_LOG2_LOCAL;
                    let word = idx & (local_n - 1);
                    if dest == me {
                        mine[word].fetch_xor(x, Ordering::Relaxed);
                    } else {
                        cc.at_async(PlaceId(dest as u32), move |rc| {
                            table.get(rc)[word].fetch_xor(x, Ordering::Relaxed);
                        });
                    }
                }
            });
        }
    });

    let mut digest = 0u64;
    for p in 0..places {
        digest ^= ctx.at(PlaceId(p as u32), move |c| {
            table
                .get(c)
                .iter()
                .fold(0u64, |a, w| a ^ w.load(Ordering::Relaxed))
        });
    }
    PlaceGroup::world(ctx).broadcast(ctx, move |c| table.free_local(c));
    digest
}
