//! The two kernels the chaos matrix drives, each reduced to a single
//! deterministic `u64` figure so faulted runs can be compared bit-for-bit
//! against a fault-free baseline.

use apgas::{Ctx, FinishKind, HandlerId, PlaceGroup, PlaceId, PlaceLocalHandle, Runtime};
use glb::GlbConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use uts::GeoTree;

/// UTS tree depth for chaos runs: big enough that steals, lifelines and
/// finish traffic all happen at 8 places, small enough for CI.
pub const UTS_DEPTH: u32 = 9;

/// RandomAccess table size per place (log2 words): tiny — the point is
/// message traffic, not memory pressure.
pub const RA_LOG2_LOCAL: u32 = 8;

/// Distributed UTS node count (GLB + FINISH_DENSE + steal/lifeline
/// traffic). Deterministic: the tree is a pure function of its parameters.
pub fn uts_nodes(ctx: &Ctx, cfg: GlbConfig) -> u64 {
    uts::run_distributed(ctx, GeoTree::paper(UTS_DEPTH), cfg)
        .stats
        .nodes
}

/// Handler id of the resilient-UTS subtree command (app range, see
/// PROTOCOL.md §3): count one depth-2 subtree and reply to place 0.
pub const H_UTS_SUBTREE: HandlerId = HandlerId(1100);

/// Handler id of the resilient-UTS reply command: record one subtree count
/// at place 0.
pub const H_UTS_REPLY: HandlerId = HandlerId(1101);

/// Reply ledger of [`uts_resilient_nodes`]: task id → subtree node count,
/// shared between the reply handler and the dispatching activity.
pub type UtsReplies = Arc<Mutex<HashMap<u64, u64>>>;

/// Register the resilient-UTS command handlers on `rt` and hand back the
/// reply ledger. Both handlers honour the `FinishKind::Resilient`
/// re-execution contract: they are **idempotent** (the subtree count is a
/// pure function of the task id, and the reply ledger inserts-if-absent, so
/// a re-executed task's duplicate reply cannot double-count) and
/// **location-independent** (re-execution runs them at the finish home, not
/// at the dead place they were originally sent to).
pub fn register_uts_resilient(rt: &Runtime) -> UtsReplies {
    let replies: UtsReplies = Arc::new(Mutex::new(HashMap::new()));
    rt.register_handler(H_UTS_SUBTREE, |ctx, args| {
        let id = u64::from_le_bytes(args[0..8].try_into().unwrap());
        let i = u32::from_le_bytes(args[8..12].try_into().unwrap());
        let j = u32::from_le_bytes(args[12..16].try_into().unwrap());
        let n = uts::subtree_nodes(&GeoTree::paper(UTS_DEPTH), &[i, j]);
        let mut reply = Vec::with_capacity(16);
        reply.extend_from_slice(&id.to_le_bytes());
        reply.extend_from_slice(&n.to_le_bytes());
        ctx.at_async_cmd(PlaceId(0), H_UTS_REPLY, reply);
    });
    let sink = replies.clone();
    rt.register_handler(H_UTS_REPLY, move |_ctx, args| {
        let id = u64::from_le_bytes(args[0..8].try_into().unwrap());
        let n = u64::from_le_bytes(args[8..16].try_into().unwrap());
        sink.lock().unwrap().entry(id).or_insert(n);
    });
    replies
}

/// Distributed UTS as re-executable commands under `FINISH_RESILIENT`:
/// place 0 counts tree levels 0–1 locally, fans one serializable command
/// per depth-2 subtree out across all places, and sums the replies. A
/// killed place loses its queued subtree commands *and* its in-flight
/// replies — the resilient finish adopts the orphans, re-executes the
/// registered commands at home, and the run still produces the exact
/// sequential node count. Handlers come from [`register_uts_resilient`].
pub fn uts_resilient_nodes(ctx: &Ctx, replies: &UtsReplies) -> u64 {
    let tree = GeoTree::paper(UTS_DEPTH);
    let places = ctx.num_places() as u64;
    let b0 = uts::num_children_at(&tree, &[]);
    let local = 1 + b0 as u64; // root + its children, counted here
    let mut tasks: Vec<(u64, u32, u32)> = Vec::new();
    for i in 0..b0 {
        for j in 0..uts::num_children_at(&tree, &[i]) {
            tasks.push((tasks.len() as u64, i, j));
        }
    }
    ctx.finish_pragma(FinishKind::Resilient, |c| {
        for &(id, i, j) in &tasks {
            let mut args = Vec::with_capacity(16);
            args.extend_from_slice(&id.to_le_bytes());
            args.extend_from_slice(&i.to_le_bytes());
            args.extend_from_slice(&j.to_le_bytes());
            c.at_async_cmd(PlaceId((id % places) as u32), H_UTS_SUBTREE, args);
        }
    });
    local + replies.lock().unwrap().values().sum::<u64>()
}

/// Message-path RandomAccess checksum: every place scatters XOR updates to
/// the global table as tiny counted spawns under one Default finish, then
/// the table is folded to a single XOR digest. Updates commute, so the
/// digest is deterministic; any lost update changes it.
pub fn ra_msgs_checksum(ctx: &Ctx) -> u64 {
    let places = ctx.num_places();
    assert!(places.is_power_of_two(), "RA needs power-of-two places");
    let local_n = 1usize << RA_LOG2_LOCAL;
    let updates_per_place = 2 * local_n;
    let global_mask = local_n * places - 1;

    let table = PlaceLocalHandle::init(ctx, &PlaceGroup::world(ctx), move |_| {
        (0..local_n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>()
    });

    ctx.finish(|c| {
        for p in c.places() {
            c.at_async(p, move |cc| {
                let me = cc.here().index();
                let mine = table.get(cc);
                // xorshift64 stream, seeded per place.
                let mut x = 0x9e3779b97f4a7c15u64 ^ ((me as u64 + 1) << 17);
                for _ in 0..updates_per_place {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let idx = (x as usize) & global_mask;
                    let dest = idx >> RA_LOG2_LOCAL;
                    let word = idx & (local_n - 1);
                    if dest == me {
                        mine[word].fetch_xor(x, Ordering::Relaxed);
                    } else {
                        cc.at_async(PlaceId(dest as u32), move |rc| {
                            table.get(rc)[word].fetch_xor(x, Ordering::Relaxed);
                        });
                    }
                }
            });
        }
    });

    let mut digest = 0u64;
    for p in 0..places {
        digest ^= ctx.at(PlaceId(p as u32), move |c| {
            table
                .get(c)
                .iter()
                .fold(0u64, |a, w| a ^ w.load(Ordering::Relaxed))
        });
    }
    PlaceGroup::world(ctx).broadcast(ctx, move |c| table.free_local(c));
    digest
}
