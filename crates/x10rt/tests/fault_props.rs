//! Property tests of the fault-injection decorator.
//!
//! The load-bearing property: a [`FaultTransport`] whose plan injects
//! *nothing* (all probabilities 0.0, no scripted events) is observably
//! identical to the undecorated transport — same messages, same delivery
//! order, same [`x10rt::NetStats`] ledgers — under arbitrary send schedules
//! across both the scalar/batch paths and the coalescer. Anything less means
//! the decorator perturbs the traffic it is supposed to merely observe, and
//! chaos results could not be compared against fault-free baselines.

use proptest::prelude::*;
use std::sync::Arc;
use x10rt::{
    ClassFaults, Coalescer, Envelope, FaultPlan, FaultTransport, LocalTransport, MsgClass, PlaceId,
    Transport,
};

const PLACES: usize = 4;

fn env(from: u32, to: u32, class: MsgClass, tag: u64) -> Envelope {
    Envelope::new(
        PlaceId(from),
        PlaceId(to),
        class,
        8 + (tag as usize % 32),
        Box::new(tag),
    )
}

const CLASSES: [MsgClass; 4] = [
    MsgClass::Task,
    MsgClass::FinishCtl,
    MsgClass::Steal,
    MsgClass::Team,
];

/// One traffic step: (sender, destination, class index, flush?).
type Step = (u32, u32, usize, bool);

/// Replay `steps` over `t` (scalar sends + per-sender coalescers with
/// interleaved flushes) and return the delivered tags per place plus the
/// full per-class ledger snapshot.
#[allow(clippy::type_complexity)]
fn replay(t: &dyn Transport, steps: &[Step]) -> (Vec<Vec<u64>>, Vec<(u64, u64)>, (u64, u64)) {
    let mut coal: Vec<Coalescer> = (0..PLACES)
        .map(|s| Coalescer::new(PlaceId(s as u32), PLACES, 3, 1 << 20, true))
        .collect();
    for (i, &(from, to, class, flush)) in steps.iter().enumerate() {
        let tag = ((from as u64) << 40) | ((to as u64) << 32) | i as u64;
        let class = CLASSES[class % CLASSES.len()];
        if flush {
            // Scalar path: flush the pair first so the bypass cannot overtake
            // buffered traffic.
            coal[from as usize].flush_dest(t, to as usize).unwrap();
            t.send(env(from, to, class, tag)).unwrap();
        } else {
            coal[from as usize]
                .send(t, env(from, to, class, tag))
                .unwrap();
        }
    }
    for c in &mut coal {
        c.flush(t).unwrap();
    }
    let mut delivered: Vec<Vec<u64>> = vec![Vec::new(); PLACES];
    for (p, dst) in delivered.iter_mut().enumerate() {
        let mut out = Vec::new();
        while t.try_recv_batch(PlaceId(p as u32), 7, &mut out) > 0 {
            for e in out.drain(..) {
                match e.unbatch() {
                    Ok(inner) => {
                        for e in inner {
                            dst.push(*e.payload.downcast::<u64>().unwrap());
                        }
                    }
                    Err(e) => dst.push(*e.payload.downcast::<u64>().unwrap()),
                }
            }
        }
    }
    let per_class: Vec<(u64, u64)> = MsgClass::ALL
        .iter()
        .map(|&c| {
            let s = t.stats().class(c);
            (s.messages, s.bytes)
        })
        .collect();
    (
        delivered,
        per_class,
        (t.stats().total_envelopes(), t.stats().envelope_bytes()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// All-zero probabilities: the decorated transport is byte-identical to
    /// the bare one — messages, order, logical ledgers, envelope ledgers.
    #[test]
    fn zero_probability_plan_is_transparent(
        steps in prop::collection::vec(
            (0u32..PLACES as u32, 0u32..PLACES as u32, 0usize..CLASSES.len(), any::<bool>()),
            1..150
        ),
        seed in any::<u64>()
    ) {
        let plan = FaultPlan::new(seed).all_classes(ClassFaults::default());
        prop_assert!(plan.is_zero());
        let bare = LocalTransport::new(PLACES);
        let wrapped = FaultTransport::new(Arc::new(LocalTransport::new(PLACES)), plan);
        let (d_bare, classes_bare, env_bare) = replay(&bare, &steps);
        let (d_wrapped, classes_wrapped, env_wrapped) = replay(&wrapped, &steps);
        prop_assert_eq!(d_bare, d_wrapped, "delivery differs under a zero plan");
        prop_assert_eq!(classes_bare, classes_wrapped, "logical ledgers differ");
        prop_assert_eq!(env_bare, env_wrapped, "envelope ledgers differ");
        prop_assert_eq!(wrapped.fault_counts(), x10rt::FaultCounts::default());
        prop_assert_eq!(wrapped.held_len(), 0);
    }

    /// Delay-only plans lose nothing and preserve per-pair FIFO: every
    /// message arrives exactly once, and for each (sender, destination)
    /// pair the arrival order is the send order.
    #[test]
    fn delay_only_plan_is_lossless_and_pair_fifo(
        steps in prop::collection::vec(
            (0u32..PLACES as u32, 0u32..PLACES as u32, 0usize..CLASSES.len(), any::<bool>()),
            1..150
        ),
        seed in any::<u64>(),
        p in 0.1f64..1.0
    ) {
        let plan = FaultPlan::new(seed)
            .all_classes(ClassFaults::delaying(p))
            .delay_steps(1, 40);
        let t = FaultTransport::new(Arc::new(LocalTransport::new(PLACES)), plan);
        let (delivered, ..) = replay(&t, &steps);
        // replay() drains until a poll returns nothing; held envelopes may
        // remain. Keep polling (each poll ticks the logical clock) until
        // everything released.
        let mut delivered = delivered;
        let mut budget = 10_000;
        while t.held_len() > 0 && budget > 0 {
            budget -= 1;
            for (p, d) in delivered.iter_mut().enumerate() {
                let mut out = Vec::new();
                t.try_recv_batch(PlaceId(p as u32), 7, &mut out);
                for e in out {
                    match e.unbatch() {
                        Ok(inner) => {
                            for e in inner {
                                d.push(*e.payload.downcast::<u64>().unwrap());
                            }
                        }
                        Err(e) => d.push(*e.payload.downcast::<u64>().unwrap()),
                    }
                }
            }
        }
        prop_assert_eq!(t.held_len(), 0, "held messages must eventually release");
        // Final sweep: envelopes released by the last pump still sit in the
        // inner mailboxes.
        for (p, d) in delivered.iter_mut().enumerate() {
            let mut out = Vec::new();
            while t.try_recv_batch(PlaceId(p as u32), 7, &mut out) > 0 {
                for e in out.drain(..) {
                    match e.unbatch() {
                        Ok(inner) => {
                            for e in inner {
                                d.push(*e.payload.downcast::<u64>().unwrap());
                            }
                        }
                        Err(e) => d.push(*e.payload.downcast::<u64>().unwrap()),
                    }
                }
            }
        }
        let total: usize = delivered.iter().map(Vec::len).sum();
        prop_assert_eq!(total, steps.len(), "delay lost or duplicated messages");
        // Per-pair FIFO: tags embed (from, to, global step); per pair the
        // step component must arrive increasing.
        for (p, d) in delivered.iter().enumerate() {
            let mut last: std::collections::HashMap<u64, u64> = Default::default();
            for &tag in d {
                let from = tag >> 40;
                let to = (tag >> 32) & 0xff;
                prop_assert_eq!(to as usize, p);
                let step = tag & 0xffff_ffff;
                if let Some(&prev) = last.get(&from) {
                    prop_assert!(prev < step, "pair ({}, {}) reordered", from, p);
                }
                last.insert(from, step);
            }
        }
    }
}
