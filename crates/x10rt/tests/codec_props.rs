//! Property tests of the wire codec (PROTOCOL.md): arbitrary headers,
//! handshakes and primitive sequences must round-trip exactly, and *any*
//! truncation or garbage input must come back as a typed
//! [`x10rt::DecodeError`] — never a panic, never a bogus success that
//! consumes the wrong number of bytes.

use proptest::prelude::*;
use x10rt::codec::{
    self, put_bytes, put_f64, put_i64, put_str, put_u16, put_u32, put_u64, Cursor, FrameHeader,
    Handshake, MsgHeader, FLAG_STASH, HANDSHAKE_BYTES, MSG_HEADER_BYTES,
};
use x10rt::message::CausalId;
use x10rt::{HandlerId, MsgClass};

fn arb_class() -> impl Strategy<Value = MsgClass> {
    (0u8..MsgClass::ALL.len() as u8).prop_map(|i| MsgClass::from_index(i).unwrap())
}

fn arb_causal() -> impl Strategy<Value = Option<CausalId>> {
    (any::<bool>(), any::<u64>(), any::<u64>())
        .prop_map(|(some, root, seq)| some.then_some(CausalId { root, seq }))
}

fn arb_ascii(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|v| String::from_utf8(v).expect("printable ascii"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Message headers round-trip for every class, flag set, handler id and
    /// causal identity, and always occupy exactly MSG_HEADER_BYTES.
    #[test]
    fn msg_header_round_trips(
        class in arb_class(),
        stash in any::<bool>(),
        handler in any::<u32>(),
        causal in arb_causal(),
        modeled in any::<u32>(),
        args in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let h = MsgHeader {
            class,
            flags: if stash { FLAG_STASH } else { 0 },
            handler: HandlerId(handler),
            causal,
            modeled_bytes: modeled,
            args_len: args.len() as u32,
        };
        let mut buf = Vec::new();
        codec::put_msg_header(&mut buf, &h);
        prop_assert_eq!(buf.len(), MSG_HEADER_BYTES);
        buf.extend_from_slice(&args);
        let mut cur = Cursor::new(&buf);
        let got = codec::read_msg_header(&mut cur).expect("round trip");
        // put_msg_header folds the causal presence into the flag byte; undo
        // it for the comparison.
        prop_assert_eq!(got.class, h.class);
        prop_assert_eq!(got.flags & FLAG_STASH, h.flags & FLAG_STASH);
        prop_assert_eq!(got.handler, h.handler);
        prop_assert_eq!(got.causal, h.causal);
        prop_assert_eq!(got.modeled_bytes, h.modeled_bytes);
        prop_assert_eq!(got.args_len, h.args_len);
        prop_assert_eq!(cur.take(args.len()).expect("args follow"), &args[..]);
    }

    /// Every strict prefix of a valid header+args buffer decodes to a typed
    /// error: either the cursor runs dry (Truncated) or the declared args
    /// length exceeds what's left (LengthOverflow).
    #[test]
    fn msg_header_truncations_are_typed(
        class in arb_class(),
        handler in any::<u32>(),
        causal in arb_causal(),
        args in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let mut buf = Vec::new();
        codec::put_msg_header(&mut buf, &MsgHeader {
            class,
            flags: 0,
            handler: HandlerId(handler),
            causal,
            modeled_bytes: 0,
            args_len: args.len() as u32,
        });
        buf.extend_from_slice(&args);
        for cut in 0..buf.len() {
            let mut cur = Cursor::new(&buf[..cut]);
            match codec::read_msg_header(&mut cur) {
                Err(
                    x10rt::DecodeError::Truncated { .. }
                    | x10rt::DecodeError::LengthOverflow { .. },
                ) => {}
                other => prop_assert!(false, "cut at {cut}: got {other:?}"),
            }
        }
    }

    /// Arbitrary garbage never panics the header decoders — every outcome
    /// is Ok or a typed DecodeError.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..80)) {
        let _ = codec::read_msg_header(&mut Cursor::new(&bytes));
        let _ = codec::read_frame_header(&mut Cursor::new(&bytes));
        let _ = codec::decode_handshake(&bytes);
    }

    /// Frame headers round-trip for arbitrary flags and routes.
    #[test]
    fn frame_header_round_trips(
        flags in any::<u16>(),
        from in any::<u32>(),
        to in any::<u32>(),
        count in any::<u32>(),
    ) {
        let h = FrameHeader { flags, from, to, count };
        let mut buf = Vec::new();
        codec::put_frame_header(&mut buf, &h);
        prop_assert_eq!(buf.len(), codec::FRAME_HEADER_BYTES);
        let got = codec::read_frame_header(&mut Cursor::new(&buf)).expect("round trip");
        prop_assert_eq!(got, h);
    }

    /// Handshakes round-trip for arbitrary launch shapes, stay fixed-size,
    /// and a rejection decodes to VersionMismatch with the roles swapped
    /// back correctly.
    #[test]
    fn handshake_round_trips_and_rejects(
        version in any::<u16>(),
        proc_id in any::<u32>(),
        place_start in any::<u32>(),
        place_count in any::<u32>(),
        total in any::<u32>(),
        theirs in any::<u16>(),
    ) {
        let h = Handshake { version, proc_id, place_start, place_count, total_places: total };
        let buf = codec::encode_handshake(&h);
        prop_assert_eq!(buf.len(), HANDSHAKE_BYTES);
        prop_assert_eq!(codec::decode_handshake(&buf).expect("round trip"), h);

        // A peer that rejects us with `version` against our `theirs` must
        // surface exactly those two numbers at our end.
        let rej = codec::encode_handshake_reject(version, theirs);
        match codec::decode_handshake(&rej) {
            Err(x10rt::DecodeError::VersionMismatch { ours, theirs: t }) => {
                prop_assert_eq!(ours, theirs);
                prop_assert_eq!(t, version);
            }
            other => prop_assert!(false, "expected VersionMismatch, got {other:?}"),
        }
    }

    /// Primitive writer/reader pairs round-trip an arbitrary record and the
    /// cursor lands exactly on the end (finish() accepts, one more read is
    /// a typed Truncated error).
    #[test]
    fn primitives_round_trip(
        a in any::<u16>(),
        b in any::<u32>(),
        c in any::<u64>(),
        d in any::<i64>(),
        e_bits in any::<u64>(),
        blob in prop::collection::vec(any::<u8>(), 0..48),
        s in arb_ascii(24),
    ) {
        let e = f64::from_bits(e_bits);
        let mut buf = Vec::new();
        put_u16(&mut buf, a);
        put_u32(&mut buf, b);
        put_u64(&mut buf, c);
        put_i64(&mut buf, d);
        put_f64(&mut buf, e);
        put_bytes(&mut buf, &blob);
        put_str(&mut buf, &s);
        let mut cur = Cursor::new(&buf);
        prop_assert_eq!(cur.u16().unwrap(), a);
        prop_assert_eq!(cur.u32().unwrap(), b);
        prop_assert_eq!(cur.u64().unwrap(), c);
        prop_assert_eq!(cur.i64().unwrap(), d);
        prop_assert_eq!(cur.f64().unwrap().to_bits(), e.to_bits());
        prop_assert_eq!(cur.bytes().unwrap(), blob);
        prop_assert_eq!(cur.string().unwrap(), s);
        prop_assert!(cur.finish().is_ok(), "cursor must land on the end");
        prop_assert!(
            matches!(cur.u8(), Err(x10rt::DecodeError::Truncated { .. })),
            "reading past the end must be a typed Truncated error"
        );
    }
}
