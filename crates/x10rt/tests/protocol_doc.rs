//! Pins `PROTOCOL.md` to the codec constants: every number the document
//! states — header sizes, magics, flags, handler ids, class indices, the
//! protocol version — is asserted against the code, so the spec cannot
//! silently drift from the implementation.

use x10rt::codec::{
    self, HandlerId, FLAG_CAUSAL, FLAG_RESILIENT, FLAG_STASH, FRAME_FLAG_BATCH, FRAME_HEADER_BYTES,
    FRAME_MAGIC, HANDSHAKE_BYTES, HANDSHAKE_MAGIC, MSG_HEADER_BYTES, PROTO_VERSION,
};
use x10rt::MsgClass;

const DOC: &str = include_str!("../../../PROTOCOL.md");

fn doc_has(needle: &str) {
    assert!(
        DOC.contains(needle),
        "PROTOCOL.md must state {needle:?} (the code says so); update the doc or bump it together with the code"
    );
}

#[test]
fn protocol_version_is_stated() {
    doc_has(&format!("Current protocol version: **{PROTO_VERSION}**"));
}

#[test]
fn header_sizes_match_the_doc() {
    doc_has(&format!("{MSG_HEADER_BYTES} bytes (`MSG_HEADER_BYTES`)"));
    doc_has(&format!("{FRAME_HEADER_BYTES} total (FRAME_HEADER_BYTES)"));
    doc_has(&format!("{HANDSHAKE_BYTES} bytes (`HANDSHAKE_BYTES`)"));
    doc_has(&format!("{FRAME_HEADER_BYTES}-byte header"));
    // The message header is pinned to the modeled header size elsewhere
    // (msg_header_matches_modeled_header_size); restate the linkage here.
    assert_eq!(MSG_HEADER_BYTES, 32);
    assert_eq!(FRAME_HEADER_BYTES, 20);
    assert_eq!(HANDSHAKE_BYTES, 24);
}

#[test]
fn magics_match_the_doc() {
    for (magic, name) in [
        (FRAME_MAGIC, "FRAME_MAGIC"),
        (HANDSHAKE_MAGIC, "HANDSHAKE_MAGIC"),
        (codec::ERROR_MAGIC, "ERROR_MAGIC"),
    ] {
        let ascii = std::str::from_utf8(&magic).expect("magics are ascii");
        doc_has(&format!("\"{ascii}\""));
        doc_has(name);
    }
}

#[test]
fn flags_match_the_doc() {
    doc_has(&format!("bit 0 (0x{FLAG_CAUSAL:02x}) FLAG_CAUSAL"));
    doc_has(&format!("bit 1 (0x{FLAG_STASH:02x}) FLAG_STASH"));
    doc_has(&format!("bit 2 (0x{FLAG_RESILIENT:02x}) FLAG_RESILIENT"));
    doc_has(&format!(
        "bit 0 (0x{FRAME_FLAG_BATCH:04x}) FRAME_FLAG_BATCH"
    ));
    assert_eq!(FLAG_CAUSAL, 1 << 0);
    assert_eq!(FLAG_STASH, 1 << 1);
    assert_eq!(FLAG_RESILIENT, 1 << 2);
    assert_eq!(FRAME_FLAG_BATCH, 1 << 0);
}

#[test]
fn class_indices_match_the_doc() {
    // The doc's § 2 class table: "Task=0, FinishCtl=1, ..." — every class
    // at its dense index.
    for (i, c) in MsgClass::ALL.iter().enumerate() {
        assert_eq!(c.index(), i, "ALL order is the wire order");
        doc_has(&format!("{c:?}={i}"));
    }
}

#[test]
fn handler_numbering_matches_the_doc() {
    // Registry split: 0 invalid, 1..=1023 runtime, >= 1024 app.
    assert_eq!(HandlerId::INVALID, HandlerId(0));
    doc_has(&format!("`1..={}`", HandlerId::FIRST_APP.0 - 1));
    doc_has(&format!("`>= {}`", HandlerId::FIRST_APP.0));
    // Runtime handler table rows, id by id.
    for (id, name) in [
        (codec::H_SPAWN, "H_SPAWN"),
        (codec::H_FINISH, "H_FINISH"),
        (codec::H_TEAM, "H_TEAM"),
        (codec::H_CLOCK, "H_CLOCK"),
        (codec::H_SHUTDOWN, "H_SHUTDOWN"),
        (codec::H_MARKER, "H_MARKER"),
        (codec::H_OBS, "H_OBS"),
    ] {
        assert!(id.is_runtime(), "{name} must be in the runtime range");
        doc_has(&format!("| {} | `{name}` |", id.0));
    }
}

#[test]
fn frame_bound_matches_the_doc() {
    assert_eq!(x10rt::tcp::MAX_FRAME_BYTES, 64 * 1024 * 1024);
    doc_has("64 MiB");
}

#[test]
fn message_header_layout_offsets_are_stated() {
    // The byte-offset column of the § 2 diagram, one line per field. A
    // layout change must touch both the code and these lines.
    for field in [
        "  0      2    version",
        "  2      1    class",
        "  3      1    flags",
        "  4      4    handler",
        "  8      8    causal_root",
        " 16      8    causal_seq",
        " 24      4    modeled_bytes",
        " 28      4    args_len",
    ] {
        doc_has(field);
    }
}

#[test]
fn handshake_layout_offsets_are_stated() {
    for field in [
        "  4      2    version",
        "  8      4    proc_id",
        " 12      4    place_start",
        " 16      4    place_count",
        " 20      4    total_places",
    ] {
        doc_has(field);
    }
}
