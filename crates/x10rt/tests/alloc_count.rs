//! The zero-allocation acceptance test for the message hot path.
//!
//! A counting global allocator wraps the system allocator; after two warm-up
//! laps of a symmetric all-to-all coalesced message storm (which grow the
//! ring slot arrays, coalescer buffers, arena freelists and receive scratch
//! to their steady-state sizes), further laps must perform **zero** heap
//! allocations: envelopes live inline in recycled batch boxes, flushes swap
//! boxes instead of copying, rings are pre-sized, and received boxes recycle
//! back into the arenas. The test also asserts the overflow side-queue — the
//! only mutex on the path — never engaged, so the steady-state path is both
//! allocation-free and mutex-free.
//!
//! This file is its own test binary (integration test) because it installs a
//! `#[global_allocator]`; keep it to a single `#[test]` so no parallel test
//! thread allocates while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use x10rt::{Coalescer, Envelope, LocalTransport, MsgClass, PlaceId, Transport};

struct CountingAlloc;

// The armed flag is thread-local (const-init: the TLS access itself never
// allocates) so only the test thread's allocations count — the libtest
// harness main thread parks on its result channel at an arbitrary point
// (its one-time parker allocation would land inside the armed window
// whenever the scheduler delays it, a rare flake under machine load).
thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicU64 = AtomicU64::new(0);

fn count_if_armed() {
    let _ = ARMED.try_with(|armed| {
        if armed.get() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_armed();
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_armed();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const PLACES: usize = 4;
const MAX_MSGS: usize = 16;
const PER_DEST: usize = 64; // divisible by MAX_MSGS: laps end with empty buffers

/// One storm lap: every place coalesces `PER_DEST` zero-sized messages to
/// every other place (threshold flushes fire along the way), then every
/// place bulk-drains its mailbox and recycles the batch boxes it received.
fn lap(t: &LocalTransport, coal: &mut [Coalescer], scratch: &mut [Vec<Envelope>]) {
    for (s, c) in coal.iter_mut().enumerate() {
        for d in 0..PLACES {
            if d == s {
                continue;
            }
            for _ in 0..PER_DEST {
                let e = Envelope::new(
                    PlaceId(s as u32),
                    PlaceId(d as u32),
                    MsgClass::Task,
                    8,
                    Box::new(()), // ZST payload: boxing it does not allocate
                );
                c.send(t, e).unwrap();
            }
        }
        c.flush(t).unwrap();
    }
    for d in 0..PLACES {
        let out = &mut scratch[d];
        while t.try_recv_batch(PlaceId(d as u32), 1024, out) > 0 {
            for env in out.drain(..) {
                match env.unbatch_boxed() {
                    Ok(batch) => coal[d].recycle_batch(batch), // "dispatched"
                    Err(_scalar) => {}
                }
            }
        }
    }
}

#[test]
fn steady_state_storm_allocates_nothing() {
    let t = LocalTransport::new(PLACES);
    let mut coal: Vec<Coalescer> = (0..PLACES)
        .map(|p| Coalescer::new(PlaceId(p as u32), PLACES, MAX_MSGS, 1 << 20, true))
        .collect();
    let mut scratch: Vec<Vec<Envelope>> = (0..PLACES).map(|_| Vec::new()).collect();

    // Warm up: allocate ring slot arrays, grow coalescer buffers to the
    // batch size, seed the arena freelists, size the receive scratch.
    for _ in 0..2 {
        lap(&t, &mut coal, &mut scratch);
    }

    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.with(|a| a.set(true));
    for _ in 0..5 {
        lap(&t, &mut coal, &mut scratch);
    }
    ARMED.with(|a| a.set(false));

    let allocs = ALLOCS.load(Ordering::SeqCst);
    let messages = 5 * PLACES * (PLACES - 1) * PER_DEST;
    assert_eq!(
        allocs, 0,
        "steady-state hot path allocated {allocs} times over {messages} messages"
    );
    // The overflow side-queue is the only mutex on the path; a well-sized
    // ring must never have engaged it.
    assert_eq!(
        t.stats().total_ring_overflows(),
        0,
        "storm spilled into the mutex-protected overflow path"
    );
    // Sanity: the storm really went through the batch path.
    assert!(t.stats().total_envelopes() < t.stats().total_messages());
}
