//! Property tests of the SPSC-ring mailbox fast path, run at deliberately
//! tiny ring capacities so wraparound and the overflow side-queue — the
//! paths a default-sized ring almost never exercises — are hit constantly.
//! These mirror the invariants `transport_props.rs` checks at the default
//! capacity: per-pair FIFO, conservation, and waker-debounce liveness.

use proptest::prelude::*;
use std::sync::Arc;
use x10rt::{Envelope, LocalTransport, MsgClass, PlaceId, SpscRing, Transport};

fn env(from: u32, to: u32, tag: u64) -> Envelope {
    Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
}

fn tag_of(from: u32, to: u32, seq: u64) -> u64 {
    ((from as u64) << 40) | ((to as u64) << 32) | seq
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// FIFO and conservation survive arbitrary push/pop interleavings across
    /// many wraparounds of a tiny ring.
    #[test]
    fn ring_fifo_across_wraparound(
        ops in prop::collection::vec(any::<bool>(), 1..300),
        cap in 1usize..9
    ) {
        let r = SpscRing::new(cap);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for &push in &ops {
            if push {
                match r.push(next_push) {
                    Ok(()) => next_push += 1,
                    Err(v) => prop_assert_eq!(v, next_push, "rejected value mangled"),
                }
            } else {
                match r.pop() {
                    Some(v) => {
                        prop_assert_eq!(v, next_pop, "FIFO violated");
                        next_pop += 1;
                    }
                    None => prop_assert_eq!(next_pop, next_push, "empty pop lost items"),
                }
            }
            prop_assert_eq!(r.len() as u64, next_push - next_pop);
        }
        // Drain the remainder: everything pushed comes out, in order.
        while let Some(v) = r.pop() {
            prop_assert_eq!(v, next_pop);
            next_pop += 1;
        }
        prop_assert_eq!(next_pop, next_push);
    }

    /// With rings far smaller than the traffic, most envelopes divert to the
    /// overflow side-queues — per-pair FIFO and conservation must hold
    /// across the ring → overflow → ring transitions, for any interleaving
    /// and any receive chunking.
    #[test]
    fn overflow_preserves_per_pair_fifo(
        sends in prop::collection::vec((0u32..4, 0u32..4), 1..200),
        cap in 1usize..5,
        chunk in 1usize..9
    ) {
        let t = LocalTransport::with_ring_capacity(4, cap);
        let mut seq = [[0u64; 4]; 4];
        for &(from, to) in &sends {
            let s = seq[from as usize][to as usize];
            seq[from as usize][to as usize] += 1;
            t.send(env(from, to, tag_of(from, to, s))).unwrap();
        }
        let mut seen = [[0u64; 4]; 4];
        let mut total = 0usize;
        for place in 0..4u32 {
            let mut out = Vec::new();
            while t.try_recv_batch(PlaceId(place), chunk, &mut out) > 0 {
                for e in out.drain(..) {
                    let tag = *e.payload.downcast::<u64>().unwrap();
                    let from = (tag >> 40) as usize;
                    let to = ((tag >> 32) & 0xff) as usize;
                    let s = tag & 0xffff_ffff;
                    prop_assert_eq!(to as u32, place);
                    prop_assert_eq!(s, seen[from][to], "per-pair FIFO violated");
                    seen[from][to] += 1;
                    total += 1;
                }
            }
        }
        prop_assert_eq!(total, sends.len());
        // Bursts longer than ring capacity must have engaged the overflow.
        let max_pair = seq.iter().flatten().copied().max().unwrap_or(0);
        if max_pair > t.ring_capacity() as u64 {
            prop_assert!(t.stats().total_ring_overflows() > 0);
        }
    }

    /// Interleaving receives between sends (so lanes oscillate between ring
    /// mode and overflow mode) never reorders or loses messages.
    #[test]
    fn mixed_send_recv_oscillates_overflow_mode(
        steps in prop::collection::vec(any::<bool>(), 1..300),
        cap in 1usize..4
    ) {
        let t = LocalTransport::with_ring_capacity(2, cap);
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for &send in &steps {
            if send {
                t.send(env(0, 1, pushed)).unwrap();
                pushed += 1;
            } else if let Some(e) = t.try_recv(PlaceId(1)) {
                prop_assert_eq!(*e.payload.downcast::<u64>().unwrap(), popped);
                popped += 1;
            }
            prop_assert_eq!(t.queue_len(PlaceId(1)) as u64, pushed - popped);
        }
        while let Some(e) = t.try_recv(PlaceId(1)) {
            prop_assert_eq!(*e.payload.downcast::<u64>().unwrap(), popped);
            popped += 1;
        }
        prop_assert_eq!(popped, pushed);
    }
}

/// The waker-liveness harness from `transport_props.rs`, re-run over a
/// 2-slot ring so nearly every send crosses the overflow side-queue: the
/// empty→non-empty edge, the re-arm race and the overflow handoff all
/// interleave under 4 producer threads. A lost wakeup fails the 5-second
/// condvar timeout.
#[test]
fn debounced_waker_survives_constant_overflow() {
    use parking_lot::{Condvar, Mutex};
    use std::time::Duration;

    const SENDERS: u64 = 4;
    const PER_SENDER: u64 = 5_000;
    const TOTAL: u64 = SENDERS * PER_SENDER;

    let t = Arc::new(LocalTransport::with_ring_capacity(2, 2));
    let state = Arc::new((Mutex::new(false), Condvar::new()));

    let s2 = state.clone();
    t.register_waker(
        PlaceId(1),
        Arc::new(move || {
            let (flag, cv) = &*s2;
            *flag.lock() = true;
            cv.notify_all();
        }),
    );

    let producers: Vec<_> = (0..SENDERS)
        .map(|s| {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 0..PER_SENDER {
                    t.send(env(0, 1, (s << 32) | i)).unwrap();
                }
            })
        })
        .collect();

    let mut got = 0u64;
    let mut out = Vec::new();
    while got < TOTAL {
        let n = t.try_recv_batch(PlaceId(1), 1024, &mut out);
        if n > 0 {
            got += n as u64;
            out.clear();
            continue;
        }
        let (flag, cv) = &*state;
        let mut pending = flag.lock();
        if !*pending && t.queue_len(PlaceId(1)) == 0 {
            let r = cv.wait_for(&mut pending, Duration::from_secs(5));
            assert!(
                !r.timed_out(),
                "lost wakeup: {got}/{TOTAL} received, queue empty, no notify in 5s"
            );
        }
        *pending = false;
    }
    assert_eq!(got, TOTAL);
    assert!(
        t.stats().total_ring_overflows() > 0,
        "2-slot rings under 4 producers must overflow"
    );
    for p in producers {
        p.join().unwrap();
    }
}

/// Concurrent per-pair senders at tiny capacity: each pair's FIFO holds even
/// while other pairs' lanes overflow and drain concurrently.
#[test]
fn concurrent_pairs_keep_fifo_under_overflow() {
    let t = Arc::new(LocalTransport::with_ring_capacity(3, 4));
    const PER_SENDER: u64 = 2_000;
    let producers: Vec<_> = (0..2u32)
        .map(|s| {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 0..PER_SENDER {
                    t.send(env(s, 2, ((s as u64) << 32) | i)).unwrap();
                }
            })
        })
        .collect();
    let mut next = [0u64; 2];
    let mut got = 0u64;
    let mut out = Vec::new();
    while got < 2 * PER_SENDER {
        let n = t.try_recv_batch(PlaceId(2), 256, &mut out);
        for e in out.drain(..) {
            let tag = *e.payload.downcast::<u64>().unwrap();
            let s = (tag >> 32) as usize;
            assert_eq!(tag & 0xffff_ffff, next[s], "sender {s} FIFO violated");
            next[s] += 1;
        }
        got += n as u64;
        if n == 0 {
            std::hint::spin_loop();
        }
    }
    for p in producers {
        p.join().unwrap();
    }
    assert_eq!(next, [PER_SENDER; 2]);
}
