//! Property-based tests of the transport invariants the finish protocols
//! depend on: per-pair FIFO under arbitrary interleavings (scalar, bulk and
//! coalesced paths), conservation of messages, waker-debounce liveness, and
//! congruent-allocation symmetry.

use proptest::prelude::*;
use std::sync::Arc;
use x10rt::{
    Coalescer, CongruentAllocator, Envelope, LocalTransport, MsgClass, PlaceId, SegmentTable,
    Transport,
};

fn env(from: u32, to: u32, tag: u64) -> Envelope {
    Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
}

/// Pack (from, to, per-pair sequence number) into a message tag.
fn tag_of(from: u32, to: u32, seq: u64) -> u64 {
    ((from as u64) << 40) | ((to as u64) << 32) | seq
}

/// Drain every place with `try_recv_batch` (random-ish chunk size),
/// unpacking batch envelopes, and check per-pair FIFO plus conservation
/// against the per-pair send counts in `seq`.
fn check_fifo_and_conservation(
    t: &LocalTransport,
    places: u32,
    chunk: usize,
    seq: &[[u64; 4]; 4],
    total_sent: usize,
) -> Result<(), TestCaseError> {
    let mut seen = [[0u64; 4]; 4];
    let mut total = 0usize;
    let mut check = |e: Envelope, place: u32| -> Result<(), TestCaseError> {
        let tag = *e.payload.downcast::<u64>().unwrap();
        let from = (tag >> 40) as usize;
        let to = ((tag >> 32) & 0xff) as usize;
        let s = tag & 0xffff_ffff;
        prop_assert_eq!(to as u32, place);
        prop_assert_eq!(s, seen[from][to], "per-pair FIFO violated");
        seen[from][to] += 1;
        total += 1;
        Ok(())
    };
    for place in 0..places {
        let mut out = Vec::new();
        loop {
            if t.try_recv_batch(PlaceId(place), chunk, &mut out) == 0 {
                break;
            }
            for e in out.drain(..) {
                match e.unbatch() {
                    Ok(inner) => {
                        for e in inner {
                            check(e, place)?;
                        }
                    }
                    Err(e) => check(e, place)?,
                }
            }
        }
    }
    prop_assert_eq!(total, total_sent);
    for f in 0..4 {
        for d in 0..4 {
            prop_assert_eq!(seen[f][d], seq[f][d], "message lost");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any interleaved send schedule preserves per-(sender,destination)
    /// FIFO order and delivers every message exactly once.
    #[test]
    fn per_pair_fifo_under_interleaving(
        sends in prop::collection::vec((0u32..4, 0u32..4), 1..200)
    ) {
        let t = LocalTransport::new(4);
        // tag messages with per-pair sequence numbers
        let mut seq = [[0u64; 4]; 4];
        for &(from, to) in &sends {
            let s = seq[from as usize][to as usize];
            seq[from as usize][to as usize] += 1;
            t.send(env(from, to, ((from as u64) << 40) | ((to as u64) << 32) | s)).unwrap();
        }
        let mut seen = [[0u64; 4]; 4];
        let mut total = 0;
        for place in 0..4u32 {
            while let Some(e) = t.try_recv(PlaceId(place)) {
                let tag = *e.payload.downcast::<u64>().unwrap();
                let from = (tag >> 40) as usize;
                let to = ((tag >> 32) & 0xff) as usize;
                let s = tag & 0xffff_ffff;
                prop_assert_eq!(to as u32, place);
                prop_assert_eq!(s, seen[from][to], "per-pair FIFO violated");
                seen[from][to] += 1;
                total += 1;
            }
        }
        prop_assert_eq!(total, sends.len());
        for f in 0..4 {
            for d in 0..4 {
                prop_assert_eq!(seen[f][d], seq[f][d], "message lost");
            }
        }
    }

    /// Interleaving scalar `send` and bulk `send_batch` submissions from
    /// each sender preserves per-pair FIFO and loses nothing, however the
    /// receiver chunks its `try_recv_batch` drains.
    #[test]
    fn mixed_scalar_and_batch_fifo(
        sends in prop::collection::vec((0u32..4, 0u32..4, any::<bool>()), 1..200),
        chunk in 1usize..9
    ) {
        let t = LocalTransport::new(4);
        let mut seq = [[0u64; 4]; 4];
        // Each sender accumulates messages and, on a `cut`, submits the run
        // via send_batch (or scalar send when the run is a single message).
        let mut pending: Vec<Vec<Envelope>> = (0..4).map(|_| Vec::new()).collect();
        for &(from, to, cut) in &sends {
            let s = seq[from as usize][to as usize];
            seq[from as usize][to as usize] += 1;
            pending[from as usize].push(env(from, to, tag_of(from, to, s)));
            if cut {
                let run = std::mem::take(&mut pending[from as usize]);
                if run.len() == 1 {
                    t.send(run.into_iter().next().unwrap()).unwrap();
                } else {
                    t.send_batch(run).unwrap();
                }
            }
        }
        for run in pending {
            t.send_batch(run).unwrap();
        }
        check_fifo_and_conservation(&t, 4, chunk, &seq, sends.len())?;
        // send_batch submits scalar envelopes: physical == logical here.
        prop_assert_eq!(t.stats().total_messages(), sends.len() as u64);
        prop_assert_eq!(t.stats().total_envelopes(), sends.len() as u64);
    }

    /// Routing everything through per-sender coalescers — with arbitrary
    /// thresholds and arbitrarily interleaved explicit flushes — preserves
    /// per-pair FIFO, loses nothing, and keeps logical counts exact while
    /// physical envelope counts can only shrink.
    #[test]
    fn coalesced_fifo_and_stats(
        sends in prop::collection::vec((0u32..4, 0u32..4, any::<bool>()), 1..200),
        max_msgs in 1usize..10,
        chunk in 1usize..9
    ) {
        let t = LocalTransport::new(4);
        let mut seq = [[0u64; 4]; 4];
        let mut coal: Vec<Coalescer> = (0..4)
            .map(|s| Coalescer::new(PlaceId(s), 4, max_msgs, 1 << 20, true))
            .collect();
        for &(from, to, flush) in &sends {
            let s = seq[from as usize][to as usize];
            seq[from as usize][to as usize] += 1;
            coal[from as usize].send(&t, env(from, to, tag_of(from, to, s))).unwrap();
            if flush {
                coal[from as usize].flush(&t).unwrap();
            }
        }
        for c in &mut coal {
            c.flush(&t).unwrap();
            prop_assert!(c.is_empty());
        }
        check_fifo_and_conservation(&t, 4, chunk, &seq, sends.len())?;
        prop_assert_eq!(t.stats().total_messages(), sends.len() as u64);
        prop_assert!(t.stats().total_envelopes() <= sends.len() as u64);
        prop_assert!(t.stats().envelope_bytes() <= t.stats().total_bytes());
    }

    /// Stats counters agree with the actual traffic.
    #[test]
    fn stats_count_every_send(
        sends in prop::collection::vec((0u32..3, 0u32..3, 1usize..500), 1..50)
    ) {
        let t = LocalTransport::new(3);
        let mut bytes = 0u64;
        for &(from, to, sz) in &sends {
            t.send(Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Team, sz, Box::new(())))
                .unwrap();
            bytes += (sz + x10rt::message::HEADER_BYTES) as u64;
        }
        prop_assert_eq!(t.stats().total_messages(), sends.len() as u64);
        prop_assert_eq!(t.stats().total_bytes(), bytes);
    }

    /// The congruent allocator hands out the same id sequence at every
    /// place regardless of interleaving across places.
    #[test]
    fn congruent_ids_depend_only_on_local_history(
        schedule in prop::collection::vec(0usize..3, 3..40)
    ) {
        let table = Arc::new(SegmentTable::new());
        let alloc = CongruentAllocator::new(3, table);
        let mut ids: Vec<Vec<u64>> = vec![vec![]; 3];
        for &p in &schedule {
            let a = alloc.alloc::<u64>(p as u32, 4);
            ids[p].push(a.id().0);
            std::mem::forget(a); // keep registrations alive for the test
        }
        for (p, got) in ids.iter().enumerate() {
            let expect: Vec<u64> = (0..got.len() as u64).collect();
            prop_assert_eq!(got, &expect, "place {} ids not dense", p);
        }
    }

    /// RDMA put/get round-trips arbitrary payloads at arbitrary offsets.
    #[test]
    fn rdma_roundtrip(
        len in 1usize..128,
        off in 0usize..64,
        data in prop::collection::vec(any::<u8>(), 1..128)
    ) {
        use x10rt::rdma;
        let table = SegmentTable::new();
        let seg = Arc::new(x10rt::Segment::alloc(off + len + data.len()));
        table.register(0, x10rt::SegId(0), seg);
        let payload = &data[..data.len().min(len)];
        let addr = x10rt::RemoteAddr::new(0, x10rt::SegId(0), off);
        rdma::put(&table, addr, payload);
        let mut out = vec![0u8; payload.len()];
        rdma::get(&table, addr, &mut out);
        prop_assert_eq!(&out, payload);
    }
}

/// Stress the waker-debounce protocol: a consumer that parks on a condition
/// variable exactly the way the scheduler does (waker sets a flag under the
/// mutex; the consumer re-checks the queue before sleeping) must never miss
/// a wakeup, even with many producers hammering the same mailbox. A lost
/// wakeup shows up as a 5-second condvar timeout, which fails the test.
#[test]
fn debounced_waker_never_loses_a_wakeup() {
    use parking_lot::{Condvar, Mutex};
    use std::time::Duration;

    const SENDERS: u64 = 4;
    const PER_SENDER: u64 = 5_000;
    const TOTAL: u64 = SENDERS * PER_SENDER;

    let t = Arc::new(LocalTransport::new(2));
    let state = Arc::new((Mutex::new(false), Condvar::new()));

    let s2 = state.clone();
    t.register_waker(
        PlaceId(1),
        Arc::new(move || {
            let (flag, cv) = &*s2;
            *flag.lock() = true;
            cv.notify_all();
        }),
    );

    let producers: Vec<_> = (0..SENDERS)
        .map(|s| {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 0..PER_SENDER {
                    t.send(env(0, 1, (s << 32) | i)).unwrap();
                }
            })
        })
        .collect();

    let mut got = 0u64;
    let mut out = Vec::new();
    while got < TOTAL {
        let n = t.try_recv_batch(PlaceId(1), 1024, &mut out);
        if n > 0 {
            got += n as u64;
            out.clear();
            continue;
        }
        // Park like the scheduler: sleep only if nothing is pending and no
        // wake arrived since the last check, both verified under the mutex.
        let (flag, cv) = &*state;
        let mut pending = flag.lock();
        if !*pending && t.queue_len(PlaceId(1)) == 0 {
            let r = cv.wait_for(&mut pending, Duration::from_secs(5));
            assert!(
                !r.timed_out(),
                "lost wakeup: {got}/{TOTAL} received, queue empty, no notify in 5s"
            );
        }
        *pending = false;
    }
    assert_eq!(got, TOTAL);
    for p in producers {
        p.join().unwrap();
    }
}
