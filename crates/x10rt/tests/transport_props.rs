//! Property-based tests of the transport invariants the finish protocols
//! depend on: per-pair FIFO under arbitrary interleavings, conservation of
//! messages, and congruent-allocation symmetry.

use proptest::prelude::*;
use std::sync::Arc;
use x10rt::{
    CongruentAllocator, Envelope, LocalTransport, MsgClass, PlaceId, SegmentTable, Transport,
};

fn env(from: u32, to: u32, tag: u64) -> Envelope {
    Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any interleaved send schedule preserves per-(sender,destination)
    /// FIFO order and delivers every message exactly once.
    #[test]
    fn per_pair_fifo_under_interleaving(
        sends in prop::collection::vec((0u32..4, 0u32..4), 1..200)
    ) {
        let t = LocalTransport::new(4);
        // tag messages with per-pair sequence numbers
        let mut seq = [[0u64; 4]; 4];
        for &(from, to) in &sends {
            let s = seq[from as usize][to as usize];
            seq[from as usize][to as usize] += 1;
            t.send(env(from, to, ((from as u64) << 40) | ((to as u64) << 32) | s));
        }
        let mut seen = [[0u64; 4]; 4];
        let mut total = 0;
        for place in 0..4u32 {
            while let Some(e) = t.try_recv(PlaceId(place)) {
                let tag = *e.payload.downcast::<u64>().unwrap();
                let from = (tag >> 40) as usize;
                let to = ((tag >> 32) & 0xff) as usize;
                let s = tag & 0xffff_ffff;
                prop_assert_eq!(to as u32, place);
                prop_assert_eq!(s, seen[from][to], "per-pair FIFO violated");
                seen[from][to] += 1;
                total += 1;
            }
        }
        prop_assert_eq!(total, sends.len());
        for f in 0..4 {
            for d in 0..4 {
                prop_assert_eq!(seen[f][d], seq[f][d], "message lost");
            }
        }
    }

    /// Stats counters agree with the actual traffic.
    #[test]
    fn stats_count_every_send(
        sends in prop::collection::vec((0u32..3, 0u32..3, 1usize..500), 1..50)
    ) {
        let t = LocalTransport::new(3);
        let mut bytes = 0u64;
        for &(from, to, sz) in &sends {
            t.send(Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Team, sz, Box::new(())));
            bytes += (sz + x10rt::message::HEADER_BYTES) as u64;
        }
        prop_assert_eq!(t.stats().total_messages(), sends.len() as u64);
        prop_assert_eq!(t.stats().total_bytes(), bytes);
    }

    /// The congruent allocator hands out the same id sequence at every
    /// place regardless of interleaving across places.
    #[test]
    fn congruent_ids_depend_only_on_local_history(
        schedule in prop::collection::vec(0usize..3, 3..40)
    ) {
        let table = Arc::new(SegmentTable::new());
        let alloc = CongruentAllocator::new(3, table);
        let mut ids: Vec<Vec<u64>> = vec![vec![]; 3];
        for &p in &schedule {
            let a = alloc.alloc::<u64>(p as u32, 4);
            ids[p].push(a.id().0);
            std::mem::forget(a); // keep registrations alive for the test
        }
        for (p, got) in ids.iter().enumerate() {
            let expect: Vec<u64> = (0..got.len() as u64).collect();
            prop_assert_eq!(got, &expect, "place {} ids not dense", p);
        }
    }

    /// RDMA put/get round-trips arbitrary payloads at arbitrary offsets.
    #[test]
    fn rdma_roundtrip(
        len in 1usize..128,
        off in 0usize..64,
        data in prop::collection::vec(any::<u8>(), 1..128)
    ) {
        use x10rt::rdma;
        let table = SegmentTable::new();
        let seg = Arc::new(x10rt::Segment::alloc(off + len + data.len()));
        table.register(0, x10rt::SegId(0), seg);
        let payload = &data[..data.len().min(len)];
        let addr = x10rt::RemoteAddr::new(0, x10rt::SegId(0), off);
        rdma::put(&table, addr, payload);
        let mut out = vec![0u8; payload.len()];
        rdma::get(&table, addr, &mut out);
        prop_assert_eq!(&out, payload);
    }
}
