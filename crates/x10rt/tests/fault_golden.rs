//! Golden seed-stability tests for the fault decorator's decision stream.
//!
//! Chaos runs and DST repro lines are only as durable as the mapping from
//! `(seed, pair, class, sequence)` to fault decisions: if a refactor of the
//! decision hash silently reshuffles which sends get dropped or delayed, a
//! `SIM-REPRO` line recorded yesterday replays a *different* run today and
//! every seed corpus goes stale. These tests pin the observable decision
//! pattern for fixed seeds so such a change has to be made consciously
//! (update the goldens **and** invalidate recorded corpora/repro lines —
//! see TESTING.md).

use std::sync::Arc;
use x10rt::{
    ClassFaults, Envelope, FaultPlan, FaultTransport, LocalTransport, MsgClass, PlaceId, Transport,
};

const PLACES: usize = 4;

fn env(from: u32, to: u32, class: MsgClass, tag: u64) -> Envelope {
    Envelope::new(PlaceId(from), PlaceId(to), class, 64, Box::new(tag))
}

/// Send `n` tagged envelopes 0→1 of `class` through a fresh decorator over
/// `plan`, then drain place 1 and return the delivered-tag bitmask (bit i
/// set ⇔ tag i came out at least once) plus the number of envelopes that
/// came out (counts duplicates).
fn delivered_pattern(plan: FaultPlan, class: MsgClass, n: u64) -> (u64, u64) {
    assert!(n <= 64);
    let t = FaultTransport::new(Arc::new(LocalTransport::new(PLACES)), plan);
    for tag in 0..n {
        // Drops and delays are "the wire lost/held it", not send errors.
        t.send(env(0, 1, class, tag)).unwrap();
    }
    // Advance the logical clock far enough that every held (delayed)
    // envelope has been released back into the inner transport.
    while t.held_len() > 0 {
        t.poke();
    }
    let mut mask = 0u64;
    let mut count = 0u64;
    while let Some(e) = t.try_recv(PlaceId(1)) {
        // Delay markers and duplicates both resolve to real payloads here;
        // phantom duplicate markers are filtered by the decorator itself.
        let tag = *e.payload.downcast::<u64>().unwrap();
        mask |= 1 << tag;
        count += 1;
    }
    (mask, count)
}

#[test]
fn drop_decisions_are_a_pure_function_of_the_seed() {
    let plan = || FaultPlan::new(0x601D).class(MsgClass::Task, ClassFaults::dropping(0.5));
    let (mask, count) = delivered_pattern(plan(), MsgClass::Task, 64);
    // Golden: which of the 64 sends survived seed 0x601D. A change here
    // means the decision hash changed and all recorded corpora are stale.
    assert_eq!(mask, 0xddbe_af1f_79d2_a394, "drop pattern moved");
    assert_eq!(count, mask.count_ones() as u64);
    // Replays bit-for-bit.
    assert_eq!(delivered_pattern(plan(), MsgClass::Task, 64).0, mask);
}

#[test]
fn decisions_are_class_and_seed_sensitive() {
    let base = FaultPlan::new(0x601D).all_classes(ClassFaults::dropping(0.5));
    let (task_mask, _) = delivered_pattern(base.clone(), MsgClass::Task, 64);
    let (ctl_mask, _) = delivered_pattern(base, MsgClass::FinishCtl, 64);
    // Independent draws per class: same pair, same seq, different stream.
    assert_ne!(task_mask, ctl_mask, "classes must draw independently");
    let reseeded = FaultPlan::new(0x601E).all_classes(ClassFaults::dropping(0.5));
    let (reseeded_mask, _) = delivered_pattern(reseeded, MsgClass::Task, 64);
    assert_ne!(task_mask, reseeded_mask, "seed must steer the decisions");
}

#[test]
fn delay_release_pattern_is_stable() {
    let plan = || {
        FaultPlan::new(0xDE1A7)
            .class(MsgClass::Task, ClassFaults::delaying(0.5))
            .delay_steps(1, 6)
    };
    let run = || {
        let t = FaultTransport::new(Arc::new(LocalTransport::new(PLACES)), plan());
        for tag in 0..16u64 {
            t.send(env(0, 1, MsgClass::Task, tag)).unwrap();
        }
        while t.held_len() > 0 {
            t.poke();
        }
        let mut order = Vec::new();
        while let Some(e) = t.try_recv(PlaceId(1)) {
            order.push(*e.payload.downcast::<u64>().unwrap());
        }
        (order, t.fault_counts().delayed)
    };
    let (order, delayed) = run();
    // Goldens: how many sends were held, and — the load-bearing FIFO
    // invariant — that releases merge back *in per-pair order*: a delay
    // must never reorder one sender's stream to one destination.
    assert_eq!(delayed, 9, "delay decision count moved");
    assert_eq!(
        order,
        (0..16).collect::<Vec<u64>>(),
        "delays reordered a per-pair FIFO stream"
    );
    assert_eq!(run().0, order, "delay pattern must replay");
}

#[test]
fn duplicate_decisions_are_stable() {
    let plan = FaultPlan::new(0xD0_D0).class(MsgClass::Task, ClassFaults::duplicating(0.25));
    let t = FaultTransport::new(Arc::new(LocalTransport::new(PLACES)), plan);
    for tag in 0..32u64 {
        t.send(env(0, 1, MsgClass::Task, tag)).unwrap();
    }
    let mut mask = 0u64;
    let mut count = 0u64;
    while let Some(e) = t.try_recv(PlaceId(1)) {
        mask |= 1 << *e.payload.downcast::<u64>().unwrap();
        count += 1;
    }
    // Nothing dropped and no phantom surfaces: every tag arrives exactly
    // once (duplicates are wire-level phantoms the decorator filters back
    // out at recv — they stress the transport beneath, not the runtime).
    assert_eq!(mask, 0xffff_ffff);
    assert_eq!(count, 32);
    // The golden number of phantom duplicates was injected and filtered.
    let counts = t.fault_counts();
    assert_eq!(counts.duplicated, 10, "duplicate decision pattern moved");
    assert_eq!(counts.filtered, 10, "phantom filter leaked or over-ate");
}
