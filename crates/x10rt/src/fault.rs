//! Deterministic fault injection over any [`Transport`].
//!
//! At petascale the network *will* misbehave: messages are lost, delayed,
//! duplicated by retransmission, truncated by failing links, and whole nodes
//! die mid-job. The paper's protocols (distributed finish, lifeline GLB) are
//! only trustworthy if they degrade cleanly under exactly that churn —
//! which is impossible to establish from happy-path tests. [`FaultTransport`]
//! decorates a real back-end and injects those faults *deterministically*:
//! every decision is a pure function of the [`FaultPlan`] seed and the
//! message's (sender, destination, class, per-pair attempt index), so a
//! failing run is replayed exactly from its seed alone.
//!
//! # Fault model
//!
//! Per message class, a plan assigns independent probabilities for:
//!
//! * **drop** — the envelope vanishes after submission (the NIC accepted it;
//!   the wire lost it). The send reports success, like a real unreliable
//!   datagram.
//! * **delay** — the envelope is *held* for a seeded number of logical steps
//!   and released later. Held envelopes queue per (sender, destination) pair
//!   and release strictly in pair order — later traffic on a delayed pair
//!   queues *behind* the held messages — so per-pair FIFO survives while
//!   traffic reorders freely across pairs, the exact guarantee/weakness mix
//!   of the real network.
//! * **duplicate** — a phantom copy travels the wire alongside the original.
//!   With the `CodecMode::Bytes` codec the payload is serialized bytes and a
//!   true byte-for-byte clone *could* be delivered, but the protocols above
//!   do not carry per-message sequence numbers, so delivering one would be
//!   indistinguishable from real traffic and would double finish counts.
//!   The decorator therefore models **receiver-side dedup** uniformly: the
//!   copy is a marker envelope, charged to the wire ledgers (and, under the
//!   TCP back-end, physically framed and shipped — handler `H_MARKER` in
//!   `PROTOCOL.md`) like real duplicate traffic, then filtered at the
//!   receive edge before any protocol sees it.
//! * **truncate** — the envelope's payload is destroyed in flight; the
//!   mangled envelope still transits (and is charged) but is discarded at
//!   the receive edge, like a frame that fails its checksum.
//! * **reject** — the transport refuses the send with a retryable
//!   [`TransportError::Rejected`], modeling injection-FIFO backpressure.
//!   The caller gets the envelope back and is expected to retry; the
//!   decision index advances per attempt, so retries eventually pass.
//!
//! On top of the probabilistic faults, a plan scripts discrete events on the
//! decorator's *logical clock* (one tick per send or receive operation):
//! [`FaultPlan::kill_place`] kills a place when the clock reaches a step,
//! black-holing its mailbox via [`Transport::kill_place`].
//!
//! # Liveness of held messages
//!
//! Releases are driven by the same logical clock, pumped on every send *and*
//! receive. Workers poll their mailboxes even while otherwise idle (the
//! scheduler's park path wakes on a bounded timeout), so held messages are
//! always eventually released — delay can starve no one forever.

use crate::message::{Envelope, MsgClass};
use crate::place::PlaceId;
use crate::stats::NetStats;
use crate::transport::{SendError, Transport, TransportError, Waker};
use obs::metrics::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-class fault probabilities, each in `[0.0, 1.0]`. All zero by default.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ClassFaults {
    /// Probability the envelope is silently lost after submission.
    pub drop: f64,
    /// Probability the envelope is held for a seeded number of steps.
    pub delay: f64,
    /// Probability a phantom duplicate transits alongside the original.
    pub duplicate: f64,
    /// Probability the payload is destroyed in flight.
    pub truncate: f64,
    /// Probability the send is transiently refused (retryable).
    pub reject: f64,
}

impl ClassFaults {
    /// Faults that only drop with probability `p`.
    pub fn dropping(p: f64) -> Self {
        ClassFaults {
            drop: p,
            ..Default::default()
        }
    }

    /// Faults that only delay with probability `p`.
    pub fn delaying(p: f64) -> Self {
        ClassFaults {
            delay: p,
            ..Default::default()
        }
    }

    /// Faults that only duplicate with probability `p`.
    pub fn duplicating(p: f64) -> Self {
        ClassFaults {
            duplicate: p,
            ..Default::default()
        }
    }

    /// Faults that only truncate with probability `p`.
    pub fn truncating(p: f64) -> Self {
        ClassFaults {
            truncate: p,
            ..Default::default()
        }
    }

    /// Faults that only reject with probability `p`.
    pub fn rejecting(p: f64) -> Self {
        ClassFaults {
            reject: p,
            ..Default::default()
        }
    }

    fn is_zero(&self) -> bool {
        self.drop == 0.0
            && self.delay == 0.0
            && self.duplicate == 0.0
            && self.truncate == 0.0
            && self.reject == 0.0
    }
}

/// A discrete scripted event on the decorator's logical clock.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Kill `place` once the logical clock reaches `step`.
    KillPlace {
        /// Logical step (send/recv operations observed) at which to fire.
        step: u64,
        /// The victim.
        place: PlaceId,
    },
}

impl FaultEvent {
    fn step(&self) -> u64 {
        match self {
            FaultEvent::KillPlace { step, .. } => *step,
        }
    }
}

/// A complete, replayable description of the faults to inject: seed,
/// per-class probabilities, delay magnitude, and scripted events.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    faults: [ClassFaults; MsgClass::ALL.len()],
    /// Inclusive range of logical steps a delayed envelope is held.
    delay_steps: (u64, u64),
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: [ClassFaults::default(); MsgClass::ALL.len()],
            delay_steps: (1, 64),
            events: Vec::new(),
        }
    }

    /// Set the fault probabilities for one message class.
    pub fn class(mut self, class: MsgClass, f: ClassFaults) -> Self {
        self.faults[class.index()] = f;
        self
    }

    /// Set the same fault probabilities for every message class (including
    /// `Batch` envelopes — faults strike at envelope granularity).
    pub fn all_classes(mut self, f: ClassFaults) -> Self {
        self.faults = [f; MsgClass::ALL.len()];
        self
    }

    /// Hold delayed envelopes between `min` and `max` logical steps
    /// (inclusive; `max` is clamped up to `min`).
    pub fn delay_steps(mut self, min: u64, max: u64) -> Self {
        self.delay_steps = (min.max(1), max.max(min.max(1)));
        self
    }

    /// Script a place kill at logical step `step`.
    pub fn kill_place(mut self, place: PlaceId, step: u64) -> Self {
        self.events.push(FaultEvent::KillPlace { step, place });
        self.events.sort_by_key(|e| e.step());
        self
    }

    /// True when the plan injects nothing: all probabilities zero and no
    /// scripted events. A [`FaultTransport`] under such a plan must be
    /// observably identical to its inner transport.
    pub fn is_zero(&self) -> bool {
        self.events.is_empty() && self.faults.iter().all(ClassFaults::is_zero)
    }

    /// The fault probabilities in effect for `class`.
    pub fn faults_for(&self, class: MsgClass) -> ClassFaults {
        self.faults[class.index()]
    }

    /// The scripted events, ascending by step.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// Running totals of the faults a [`FaultTransport`] has injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Envelopes silently lost.
    pub dropped: u64,
    /// Envelopes held and later released.
    pub delayed: u64,
    /// Phantom duplicates injected.
    pub duplicated: u64,
    /// Payloads destroyed in flight.
    pub truncated: u64,
    /// Sends transiently refused.
    pub rejected: u64,
    /// Places killed by scripted events or [`Transport::kill_place`].
    pub killed: u64,
    /// Marker envelopes (duplicates, truncations) filtered at the receive
    /// edge.
    pub filtered: u64,
    /// Protocol-visible messages destroyed by drop/truncate, tallied by the
    /// *inner* message class (indexed by [`MsgClass::index`]). `dropped` and
    /// `truncated` count physical envelopes — a lost [`MsgClass::Batch`]
    /// envelope counts once there but loses every coalesced message inside
    /// it, which used to be a silent-loss channel: a dropped batch carrying
    /// GLB steal handshakes was invisible to any per-class reconciliation.
    /// This array opens every batched class to the lossy-fault oracles.
    pub lost_by_class: [u64; MsgClass::ALL.len()],
}

impl FaultCounts {
    /// Messages of `class` destroyed by drop/truncate, counting through
    /// batch envelopes.
    pub fn lost(&self, class: MsgClass) -> u64 {
        self.lost_by_class[class.index()]
    }

    /// Total messages destroyed by drop/truncate across every class,
    /// counting through batch envelopes. Always `>= dropped + truncated`
    /// (strictly greater whenever a multi-message batch was lost), and zero
    /// exactly when nothing was lost.
    pub fn lost_total(&self) -> u64 {
        self.lost_by_class.iter().sum()
    }
}

#[derive(Default)]
struct FaultTallies {
    dropped: AtomicU64,
    delayed: AtomicU64,
    duplicated: AtomicU64,
    truncated: AtomicU64,
    rejected: AtomicU64,
    killed: AtomicU64,
    filtered: AtomicU64,
    lost_by_class: [AtomicU64; MsgClass::ALL.len()],
}

/// Resolved observability counters mirroring [`FaultCounts`].
struct FaultHooks {
    dropped: Counter,
    delayed: Counter,
    duplicated: Counter,
    truncated: Counter,
    rejected: Counter,
    killed: Counter,
}

/// Payload of an injected marker envelope. Marker envelopes transit the
/// inner transport (so the wire ledgers charge them) and are filtered out at
/// [`FaultTransport::try_recv`] before any protocol sees them. `pub(crate)`
/// so the TCP back-end can serialize markers across its socket (handler id
/// `H_MARKER` in `PROTOCOL.md`) — receive-edge filtering stays observable
/// when the inner transport is a real wire.
pub(crate) enum FaultMarker {
    /// A phantom duplicate (receiver-side dedup removes it).
    Duplicate,
    /// A payload destroyed in flight (checksum failure discards the frame).
    Truncated,
}

/// An envelope held for delayed release: release step + the envelope.
type Held = (u64, Envelope);

/// Deterministic, seed-driven fault-injection decorator over any transport.
///
/// See the [module docs](self) for the fault model. Construction wires the
/// decorator *between* the upper layers and the inner back-end; everything —
/// wakers, statistics, place count — delegates to the inner transport, so a
/// runtime built over a `FaultTransport` behaves identically to one built
/// over the bare back-end whenever the plan [is zero](FaultPlan::is_zero).
pub struct FaultTransport {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
    /// Logical clock: one tick per send or receive operation.
    clock: AtomicU64,
    /// Scripted events not yet fired (drained front-to-back; sorted by step).
    pending_events: Mutex<VecDeque<FaultEvent>>,
    /// Lock-free fast path: how many scripted events remain.
    events_left: AtomicUsize,
    /// Per-place death flags (scripted kills and explicit `kill_place`).
    dead: Vec<AtomicBool>,
    /// Per (sender, destination) pair decision counters; index = from*n+to.
    pair_seq: Vec<AtomicU64>,
    /// Held (delayed) envelopes per pair. BTreeMap so the release sweep
    /// visits pairs in a deterministic order.
    held: Mutex<BTreeMap<(u32, u32), VecDeque<Held>>>,
    /// Lock-free fast path: how many envelopes are currently held.
    held_count: AtomicUsize,
    tallies: FaultTallies,
    hooks: Option<FaultHooks>,
}

impl FaultTransport {
    /// Decorate `inner` with the faults described by `plan`.
    pub fn new(inner: Arc<dyn Transport>, plan: FaultPlan) -> Self {
        let places = inner.num_places();
        let events: VecDeque<FaultEvent> = plan.events.iter().copied().collect();
        FaultTransport {
            inner,
            clock: AtomicU64::new(0),
            events_left: AtomicUsize::new(events.len()),
            pending_events: Mutex::new(events),
            dead: (0..places).map(|_| AtomicBool::new(false)).collect(),
            pair_seq: (0..places * places).map(|_| AtomicU64::new(0)).collect(),
            held: Mutex::new(BTreeMap::new()),
            held_count: AtomicUsize::new(0),
            tallies: FaultTallies::default(),
            hooks: None,
            plan,
        }
    }

    /// Mirror every injected fault into the shared metrics registry
    /// (builder style), sharded by sending place.
    pub fn with_obs(mut self, metrics: &MetricsRegistry) -> Self {
        self.hooks = Some(FaultHooks {
            dropped: metrics.counter(obs::names::FAULT_DROPPED),
            delayed: metrics.counter(obs::names::FAULT_DELAYED),
            duplicated: metrics.counter(obs::names::FAULT_DUPLICATED),
            truncated: metrics.counter(obs::names::FAULT_TRUNCATED),
            rejected: metrics.counter(obs::names::FAULT_REJECTED),
            killed: metrics.counter(obs::names::FAULT_KILLED),
        });
        self
    }

    /// The plan governing this decorator.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Running totals of the faults injected so far.
    pub fn fault_counts(&self) -> FaultCounts {
        let mut lost_by_class = [0u64; MsgClass::ALL.len()];
        for (out, tally) in lost_by_class.iter_mut().zip(&self.tallies.lost_by_class) {
            *out = tally.load(Ordering::Relaxed);
        }
        FaultCounts {
            dropped: self.tallies.dropped.load(Ordering::Relaxed),
            delayed: self.tallies.delayed.load(Ordering::Relaxed),
            duplicated: self.tallies.duplicated.load(Ordering::Relaxed),
            truncated: self.tallies.truncated.load(Ordering::Relaxed),
            rejected: self.tallies.rejected.load(Ordering::Relaxed),
            killed: self.tallies.killed.load(Ordering::Relaxed),
            filtered: self.tallies.filtered.load(Ordering::Relaxed),
            lost_by_class,
        }
    }

    /// Tally the protocol-visible messages destroyed with `env` by a drop
    /// or truncation: the envelope's own class, or — for a batch — the
    /// class of every coalesced message inside it. Pure counting, **no
    /// decision draws**: the seeded fault stream is untouched, so recorded
    /// corpora and the `fault_golden` pins stay valid.
    fn tally_lost(&self, env: &Envelope) {
        if env.class == MsgClass::Batch {
            if let Some(batch) = env.payload.downcast_ref::<crate::message::BatchPayload>() {
                for inner in &batch.envs {
                    self.tallies.lost_by_class[inner.class.index()].fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
        self.tallies.lost_by_class[env.class.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// The decorator's logical clock (diagnostics).
    pub fn logical_step(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Envelopes currently held for delayed release (diagnostics).
    pub fn held_len(&self) -> usize {
        self.held_count.load(Ordering::Relaxed)
    }

    /// Scripted events not yet fired.
    pub fn pending_events(&self) -> usize {
        self.events_left.load(Ordering::Acquire)
    }

    /// Advance the logical clock one step with no traffic: fire due
    /// scripted events and release due held envelopes. The clock normally
    /// advances only on send/recv, so when traffic stops, held state can
    /// strand; an external scheduler (the DST controller) pokes the layer
    /// to drain it deterministically.
    pub fn poke(&self) {
        let now = self.tick();
        self.apply_events(now);
        self.pump(now);
    }

    /// Advance the logical clock by one operation and return the new time.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Fire scripted events whose step has been reached.
    fn apply_events(&self, now: u64) {
        if self.events_left.load(Ordering::Acquire) == 0 {
            return;
        }
        loop {
            let event = {
                let mut pending = self.pending_events.lock();
                match pending.front() {
                    Some(e) if e.step() <= now => {
                        let e = *e;
                        pending.pop_front();
                        self.events_left.store(pending.len(), Ordering::Release);
                        e
                    }
                    _ => return,
                }
            };
            match event {
                FaultEvent::KillPlace { place, .. } => self.kill(place),
            }
        }
    }

    fn kill(&self, place: PlaceId) {
        if self.dead[place.index()].swap(true, Ordering::AcqRel) {
            return; // already dead
        }
        self.inner.kill_place(place);
        // Held traffic addressed to the victim is destroyed with it —
        // tallied per inner class like any other destroyed message, so the
        // loss stays accounted even when it happens as a side effect of a
        // kill rather than a drop decision.
        {
            let mut held = self.held.lock();
            held.retain(|&(_, to), q| {
                if to != place.0 {
                    return true;
                }
                for (_, env) in q.iter() {
                    self.tally_lost(env);
                }
                false
            });
            let remaining = held.values().map(VecDeque::len).sum();
            self.held_count.store(remaining, Ordering::Relaxed);
        }
        self.tallies.killed.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &self.hooks {
            h.killed.inc(place.0);
        }
    }

    /// Release every held envelope whose release step has passed, in
    /// deterministic pair order (which is what reorders traffic *across*
    /// pairs while each pair's own queue drains FIFO).
    fn pump(&self, now: u64) {
        if self.held_count.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut ready: Vec<Envelope> = Vec::new();
        {
            let mut held = self.held.lock();
            held.retain(|_, q| {
                while q.front().is_some_and(|(release, _)| *release <= now) {
                    ready.push(q.pop_front().expect("front checked").1);
                }
                !q.is_empty()
            });
            let remaining = held.values().map(VecDeque::len).sum();
            self.held_count.store(remaining, Ordering::Relaxed);
        }
        for env in ready {
            // The destination may have died while the envelope was held;
            // the black hole swallows it silently, like in-flight traffic
            // to a crashed node.
            let _ = self.inner.send(env);
        }
    }

    /// One decision draw: uniform in `[0, 1)`, a pure function of the plan
    /// seed, the pair, the class, the per-pair attempt index, and the fault
    /// kind (`salt`).
    fn draw(&self, from: u32, to: u32, class: MsgClass, seq: u64, salt: u64) -> f64 {
        let bits = decision_bits(self.plan.seed, from, to, class, seq, salt);
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn count(&self, tally: &AtomicU64, hook: impl Fn(&FaultHooks) -> &Counter, shard: u32) {
        tally.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &self.hooks {
            hook(h).inc(shard);
        }
    }
}

/// Salts separating the independent per-fault-kind draws.
const SALT_DROP: u64 = 0xD0;
const SALT_DELAY: u64 = 0xDE;
const SALT_DELAY_LEN: u64 = 0xDF;
const SALT_DUP: u64 = 0xD2;
const SALT_TRUNC: u64 = 0x7C;
const SALT_REJECT: u64 = 0xE7;

/// SplitMix64 over the packed decision inputs.
fn decision_bits(seed: u64, from: u32, to: u32, class: MsgClass, seq: u64, salt: u64) -> u64 {
    let pair = ((from as u64) << 24) ^ (to as u64) ^ ((class.index() as u64) << 48);
    let mut z = seed
        ^ pair.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ seq.wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ salt.wrapping_mul(0x94d0_49bb_1331_11eb);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Transport for FaultTransport {
    fn send(&self, env: Envelope) -> Result<(), SendError> {
        let now = self.tick();
        self.apply_events(now);
        self.pump(now);

        let (from, to) = (env.from.0, env.to.0);
        if self.dead[env.to.index()].load(Ordering::Acquire) {
            return Err(SendError::dead(env.to, 1));
        }
        // A killed place is fully isolated: nothing it tries to send after
        // the kill reaches the network either.
        if self.dead[env.from.index()].load(Ordering::Acquire) {
            return Err(SendError::dead(env.from, 1));
        }
        let class = env.class;
        let faults = self.plan.faults[class.index()];
        let seq = self.pair_seq[env.from.index() * self.dead.len() + env.to.index()]
            .fetch_add(1, Ordering::Relaxed);

        if faults.reject > 0.0 && self.draw(from, to, class, seq, SALT_REJECT) < faults.reject {
            self.count(&self.tallies.rejected, |h| &h.rejected, from);
            return Err(SendError {
                error: TransportError::Rejected { place: env.to },
                retry: vec![env],
                dropped: 0,
            });
        }
        if faults.drop > 0.0 && self.draw(from, to, class, seq, SALT_DROP) < faults.drop {
            // The NIC accepted it; the wire lost it. Success, silently.
            self.count(&self.tallies.dropped, |h| &h.dropped, from);
            self.tally_lost(&env);
            return Ok(());
        }

        let env = if faults.truncate > 0.0
            && self.draw(from, to, class, seq, SALT_TRUNC) < faults.truncate
        {
            self.count(&self.tallies.truncated, |h| &h.truncated, from);
            self.tally_lost(&env);
            Envelope {
                payload: Box::new(FaultMarker::Truncated),
                ..env
            }
        } else {
            env
        };
        let duplicate =
            faults.duplicate > 0.0 && self.draw(from, to, class, seq, SALT_DUP) < faults.duplicate;

        // Delay, or forced queueing behind already-held same-pair traffic
        // (anything else would let this envelope overtake them and break
        // per-pair FIFO).
        let delayed =
            faults.delay > 0.0 && self.draw(from, to, class, seq, SALT_DELAY) < faults.delay;
        let env = {
            let mut held = self.held.lock();
            if delayed {
                let (lo, hi) = self.plan.delay_steps;
                let span = hi - lo + 1;
                let extra =
                    lo + decision_bits(self.plan.seed, from, to, class, seq, SALT_DELAY_LEN) % span;
                let q = held.entry((from, to)).or_default();
                // Never release before a held predecessor on the same pair.
                let release = q
                    .back()
                    .map_or(now + extra, |(prev, _)| (now + extra).max(*prev));
                q.push_back((release, env));
                self.held_count.fetch_add(1, Ordering::Relaxed);
                self.count(&self.tallies.delayed, |h| &h.delayed, from);
                None
            } else {
                match held.get_mut(&(from, to)).filter(|q| !q.is_empty()) {
                    Some(q) => {
                        let prev = q.back().expect("non-empty").0;
                        q.push_back((prev, env));
                        self.held_count.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                    None => Some(env),
                }
            }
        };
        let Some(env) = env else {
            return Ok(());
        };

        self.inner.send(env)?;
        if duplicate {
            self.count(&self.tallies.duplicated, |h| &h.duplicated, from);
            let phantom = Envelope {
                from: PlaceId(from),
                to: PlaceId(to),
                class,
                bytes: crate::message::HEADER_BYTES,
                // A phantom is transport noise, not a caused message; it
                // carries no causal identity and never enters the DAG.
                causal: None,
                payload: Box::new(FaultMarker::Duplicate),
            };
            let _ = self.inner.send(phantom);
        }
        Ok(())
    }

    fn try_recv(&self, place: PlaceId) -> Option<Envelope> {
        let now = self.tick();
        self.apply_events(now);
        self.pump(now);
        if self.dead[place.index()].load(Ordering::Acquire) {
            return None;
        }
        loop {
            let env = self.inner.try_recv(place)?;
            if env.payload.downcast_ref::<FaultMarker>().is_some() {
                self.tallies.filtered.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            return Some(env);
        }
    }

    fn try_recv_batch(&self, place: PlaceId, max: usize, out: &mut Vec<Envelope>) -> usize {
        let now = self.tick();
        self.apply_events(now);
        self.pump(now);
        if self.dead[place.index()].load(Ordering::Acquire) {
            return 0;
        }
        let before = out.len();
        self.inner.try_recv_batch(place, max, out);
        let mut filtered = 0u64;
        out.retain(|env| {
            let marker = env.payload.downcast_ref::<FaultMarker>().is_some();
            filtered += marker as u64;
            !marker
        });
        if filtered > 0 {
            self.tallies.filtered.fetch_add(filtered, Ordering::Relaxed);
        }
        out.len() - before
    }

    fn register_waker(&self, place: PlaceId, waker: Waker) {
        self.inner.register_waker(place, waker)
    }

    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }

    fn num_places(&self) -> usize {
        self.dead.len()
    }

    fn queue_len(&self, place: PlaceId) -> usize {
        if self.dead[place.index()].load(Ordering::Acquire) {
            return 0;
        }
        self.inner.queue_len(place)
    }

    fn kill_place(&self, place: PlaceId) {
        self.kill(place)
    }

    fn is_dead(&self, place: PlaceId) -> bool {
        self.dead[place.index()].load(Ordering::Acquire)
    }

    fn dead_places(&self) -> Vec<PlaceId> {
        (0..self.dead.len())
            .filter(|&i| self.dead[i].load(Ordering::Acquire))
            .map(|i| PlaceId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalTransport;

    fn env(from: u32, to: u32, tag: u64) -> Envelope {
        Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
    }

    fn wrap(places: usize, plan: FaultPlan) -> FaultTransport {
        FaultTransport::new(Arc::new(LocalTransport::new(places)), plan)
    }

    /// Drain place `p`, ticking the clock until `want` messages arrived or
    /// `budget` polls elapsed.
    fn drain(t: &FaultTransport, p: u32, want: usize, budget: usize) -> Vec<u64> {
        let mut tags = Vec::new();
        for _ in 0..budget {
            if let Some(e) = t.try_recv(PlaceId(p)) {
                tags.push(*e.payload.downcast::<u64>().unwrap());
                if tags.len() == want {
                    break;
                }
            }
        }
        tags
    }

    #[test]
    fn zero_plan_passes_everything_through() {
        let t = wrap(2, FaultPlan::new(42));
        assert!(t.plan().is_zero());
        for i in 0..50u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        assert_eq!(drain(&t, 1, 50, 60), (0..50).collect::<Vec<_>>());
        assert_eq!(t.fault_counts(), FaultCounts::default());
    }

    #[test]
    fn drop_loses_messages_deterministically() {
        let run = || {
            let t = wrap(2, FaultPlan::new(7).all_classes(ClassFaults::dropping(0.3)));
            for i in 0..200u64 {
                t.send(env(0, 1, i)).unwrap();
            }
            (drain(&t, 1, 200, 400), t.fault_counts().dropped)
        };
        let (got_a, dropped_a) = run();
        let (got_b, dropped_b) = run();
        assert!(dropped_a > 0, "p=0.3 over 200 sends should drop some");
        assert_eq!(got_a.len() as u64 + dropped_a, 200);
        // Same seed, same traffic: identical losses.
        assert_eq!(got_a, got_b);
        assert_eq!(dropped_a, dropped_b);
        // Survivors keep their relative order.
        assert!(got_a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn different_seeds_differ() {
        let survivors = |seed| {
            let t = wrap(
                2,
                FaultPlan::new(seed).all_classes(ClassFaults::dropping(0.3)),
            );
            for i in 0..200u64 {
                t.send(env(0, 1, i)).unwrap();
            }
            drain(&t, 1, 200, 400)
        };
        assert_ne!(survivors(1), survivors(2));
    }

    #[test]
    fn delay_preserves_per_pair_fifo() {
        let t = wrap(
            3,
            FaultPlan::new(11).all_classes(ClassFaults::delaying(0.5)),
        );
        for i in 0..100u64 {
            t.send(env(0, 2, i)).unwrap();
            t.send(env(1, 2, 1000 + i)).unwrap();
        }
        let got = drain(&t, 2, 200, 2000);
        assert_eq!(got.len(), 200, "delay must not lose messages");
        assert!(t.held_len() == 0);
        assert!(t.fault_counts().delayed > 0);
        let from0: Vec<u64> = got.iter().copied().filter(|&x| x < 1000).collect();
        let from1: Vec<u64> = got.iter().copied().filter(|&x| x >= 1000).collect();
        assert_eq!(from0, (0..100).collect::<Vec<_>>());
        assert_eq!(from1, (1000..1100).collect::<Vec<_>>());
        // With half the traffic delayed, the interleaving across pairs must
        // differ from the strict alternation it was sent in.
        let alternation: Vec<u64> = (0..100u64).flat_map(|i| [i, 1000 + i]).collect();
        assert_ne!(got, alternation, "cross-pair reordering expected");
    }

    #[test]
    fn duplicates_charged_but_filtered() {
        let t = wrap(
            2,
            FaultPlan::new(5).all_classes(ClassFaults::duplicating(0.5)),
        );
        for i in 0..100u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        let dup = t.fault_counts().duplicated;
        assert!(dup > 0);
        // Phantom envelopes transit the wire ...
        assert_eq!(t.stats().total_envelopes(), 100 + dup);
        // ... but the protocol layer sees each message exactly once.
        assert_eq!(drain(&t, 1, 200, 400), (0..100).collect::<Vec<_>>());
        assert_eq!(t.fault_counts().filtered, dup);
    }

    #[test]
    fn truncation_discards_at_receive_edge() {
        let t = wrap(
            2,
            FaultPlan::new(3).all_classes(ClassFaults::truncating(0.4)),
        );
        for i in 0..100u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        let counts = t.fault_counts();
        assert!(counts.truncated > 0);
        let got = drain(&t, 1, 100, 300);
        assert_eq!(got.len() as u64 + counts.truncated, 100);
        // Mangled frames transited (and were charged) before discard.
        assert_eq!(t.stats().total_envelopes(), 100);
        assert_eq!(t.fault_counts().filtered, counts.truncated);
    }

    #[test]
    fn reject_returns_envelope_and_retry_succeeds() {
        let t = wrap(
            2,
            FaultPlan::new(1).all_classes(ClassFaults::rejecting(0.9)),
        );
        let mut pending = vec![env(0, 1, 7)];
        let mut attempts = 0;
        while let Some(e) = pending.pop() {
            attempts += 1;
            assert!(attempts < 1000, "rejection must be transient");
            match t.send(e) {
                Ok(()) => break,
                Err(err) => {
                    assert_eq!(err.error, TransportError::Rejected { place: PlaceId(1) });
                    pending.extend(err.retry);
                }
            }
        }
        assert!(attempts > 1, "p=0.9 should reject the first attempt");
        assert_eq!(drain(&t, 1, 1, 10), vec![7]);
    }

    #[test]
    fn scripted_kill_fires_on_logical_clock() {
        let plan = FaultPlan::new(9).kill_place(PlaceId(1), 10);
        let t = wrap(3, plan);
        for i in 0..9u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        assert!(!t.is_dead(PlaceId(1)));
        // The tenth operation crosses the scripted step and fires the kill
        // before the envelope is submitted: it dies with the place.
        let err = t.send(env(0, 1, 9)).unwrap_err();
        assert_eq!(err.error, TransportError::PlaceDead { place: PlaceId(1) });
        assert!(t.is_dead(PlaceId(1)));
        assert_eq!(t.fault_counts().killed, 1);
        // The mailbox black-holed its backlog.
        assert!(t.try_recv(PlaceId(1)).is_none());
        assert_eq!(t.queue_len(PlaceId(1)), 0);
        // Other places keep working.
        t.send(env(0, 2, 99)).unwrap();
        assert_eq!(drain(&t, 2, 1, 10), vec![99]);
    }

    #[test]
    fn lost_by_class_counts_through_batches() {
        // A dropped Batch envelope loses every coalesced message inside it:
        // `dropped` says 1, but the per-class ledger must say what was
        // really destroyed (this was the GLB steal-handshake silent-loss
        // channel under batching).
        let t = wrap(2, FaultPlan::new(1).all_classes(ClassFaults::dropping(1.0)));
        let inner = vec![
            env(0, 1, 10),
            Envelope::new(PlaceId(0), PlaceId(1), MsgClass::Steal, 8, Box::new(11u64)),
            Envelope::new(PlaceId(0), PlaceId(1), MsgClass::Steal, 8, Box::new(12u64)),
        ];
        t.send(Envelope::batch(PlaceId(0), PlaceId(1), inner))
            .unwrap();
        let counts = t.fault_counts();
        assert_eq!(counts.dropped, 1, "one physical envelope dropped");
        assert_eq!(counts.lost(MsgClass::Task), 1);
        assert_eq!(counts.lost(MsgClass::Steal), 2);
        assert_eq!(
            counts.lost(MsgClass::Batch),
            0,
            "count the cargo, not the crate"
        );
        assert_eq!(counts.lost_total(), 3);
        assert!(counts.lost_total() >= counts.dropped + counts.truncated);
    }

    #[test]
    fn lost_by_class_counts_unbatched_drops_and_truncations() {
        let t = wrap(
            2,
            FaultPlan::new(3).all_classes(ClassFaults::truncating(0.4)),
        );
        for i in 0..100u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        let counts = t.fault_counts();
        assert!(counts.truncated > 0);
        assert_eq!(counts.lost(MsgClass::Task), counts.truncated);
        assert_eq!(counts.lost_total(), counts.truncated);
        // Lossless kinds leave the ledger untouched.
        let clean = wrap(2, FaultPlan::new(5).all_classes(ClassFaults::delaying(0.5)));
        for i in 0..50u64 {
            clean.send(env(0, 1, i)).unwrap();
        }
        assert_eq!(clean.fault_counts().lost_total(), 0);
    }

    #[test]
    fn held_traffic_to_killed_place_is_destroyed() {
        let plan = FaultPlan::new(13)
            .all_classes(ClassFaults::delaying(1.0))
            .delay_steps(1000, 1000);
        let t = wrap(2, plan);
        t.send(env(0, 1, 0)).unwrap();
        assert_eq!(t.held_len(), 1);
        t.kill_place(PlaceId(1));
        assert_eq!(t.held_len(), 0);
    }
}
