//! Place identifiers and the host topology.
//!
//! A *place* is the APGAS unit of locality: a collection of data plus the
//! worker(s) operating on it. The paper runs one place per Power7 core and 32
//! places per octant (host). Several subsystems need the place→host mapping:
//! `FINISH_DENSE` routes termination-control messages through one *master*
//! place per host, and the Power 775 bandwidth model charges intra-host and
//! inter-host traffic to different links.

use std::fmt;

/// Identifier of a place (0-based, dense).
///
/// The X10 execution model numbers places `0..n`; execution starts with the
/// main activity at `Place(0)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub u32);

impl PlaceId {
    /// The place index as a `usize`, for indexing per-place tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The first place, where the main activity starts.
    pub const FIRST: PlaceId = PlaceId(0);
}

impl fmt::Debug for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Place({})", self.0)
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Mapping from places to hosts (octants on the Power 775).
///
/// Places are laid out densely: host `h` owns places
/// `h*places_per_host .. (h+1)*places_per_host` (the final host may own
/// fewer when `places` is not a multiple). This matches the paper's launch
/// configuration ("places are mapped to hosts in groups of 32").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    places: usize,
    places_per_host: usize,
}

impl Topology {
    /// Create a topology of `places` places packed `places_per_host` per host.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(places: usize, places_per_host: usize) -> Self {
        assert!(places > 0, "topology needs at least one place");
        assert!(places_per_host > 0, "places_per_host must be positive");
        Topology {
            places,
            places_per_host,
        }
    }

    /// Total number of places.
    #[inline]
    pub fn places(&self) -> usize {
        self.places
    }

    /// Places packed per host (32 on the Power 775).
    #[inline]
    pub fn places_per_host(&self) -> usize {
        self.places_per_host
    }

    /// Number of hosts (octants) in use.
    #[inline]
    pub fn hosts(&self) -> usize {
        self.places.div_ceil(self.places_per_host)
    }

    /// Host (octant) index of a place.
    #[inline]
    pub fn host_of(&self, p: PlaceId) -> usize {
        p.index() / self.places_per_host
    }

    /// The *master* place of `p`'s host: the paper's `FINISH_DENSE` routes a
    /// control message from place `p` to `q` via `p - p%b` then `q - q%b`
    /// where `b` is the number of places per node.
    #[inline]
    pub fn master_of(&self, p: PlaceId) -> PlaceId {
        PlaceId((p.index() - p.index() % self.places_per_host) as u32)
    }

    /// Do two places share a host (so their traffic never leaves the node)?
    #[inline]
    pub fn same_host(&self, a: PlaceId, b: PlaceId) -> bool {
        self.host_of(a) == self.host_of(b)
    }

    /// Iterate over all places.
    pub fn iter(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.places as u32).map(PlaceId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_mapping_groups_of_b() {
        let t = Topology::new(70, 32);
        assert_eq!(t.hosts(), 3);
        assert_eq!(t.host_of(PlaceId(0)), 0);
        assert_eq!(t.host_of(PlaceId(31)), 0);
        assert_eq!(t.host_of(PlaceId(32)), 1);
        assert_eq!(t.host_of(PlaceId(69)), 2);
    }

    #[test]
    fn master_is_first_place_of_host() {
        let t = Topology::new(128, 32);
        assert_eq!(t.master_of(PlaceId(0)), PlaceId(0));
        assert_eq!(t.master_of(PlaceId(31)), PlaceId(0));
        assert_eq!(t.master_of(PlaceId(33)), PlaceId(32));
        assert_eq!(t.master_of(PlaceId(127)), PlaceId(96));
    }

    #[test]
    fn same_host_symmetric() {
        let t = Topology::new(64, 32);
        assert!(t.same_host(PlaceId(1), PlaceId(31)));
        assert!(!t.same_host(PlaceId(31), PlaceId(32)));
    }

    #[test]
    fn single_place_topology() {
        let t = Topology::new(1, 32);
        assert_eq!(t.hosts(), 1);
        assert_eq!(t.master_of(PlaceId(0)), PlaceId(0));
    }

    #[test]
    #[should_panic]
    fn zero_places_rejected() {
        Topology::new(0, 32);
    }
}
