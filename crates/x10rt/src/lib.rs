//! `x10rt` — the X10 Runtime Transport layer, reimplemented in Rust.
//!
//! The paper ("X10 and APGAS at Petascale", PPoPP'14, §3.3) describes X10's
//! layered runtime: the upper APGAS layer (places, activities, `finish`)
//! talks to a common transport API — X10RT — with back-ends for PAMI, MPI and
//! TCP/IP sockets. An implementation is only *required* to provide basic
//! point-to-point FIFO primitives; richer capabilities (collectives, RDMA)
//! are either mapped to hardware or emulated.
//!
//! This crate provides:
//!
//! * [`transport::Transport`] — the point-to-point API, with the in-process
//!   [`transport::LocalTransport`] back-end: one lock-free SPSC [`ring`]
//!   lane per (sender, receiver) pair with an overflow side-queue,
//!   preserving per-sender FIFO — exactly the guarantee PAMI gives and the
//!   guarantee the finish protocols rely on;
//! * [`arena::EnvelopeArena`] — freelist recycling of coalescer batch
//!   buffers, making the steady-state send path allocation-free;
//! * [`coalesce::Coalescer`] — sender-side aggregation of small messages
//!   into batch envelopes (the PAMI aggregation layer), with per-destination
//!   flush thresholds and an explicit flush discipline;
//! * [`stats::NetStats`] — per-message-class counters (messages, modeled wire
//!   bytes, per-place in-degree) sharded per sender, plus physical envelope
//!   counters so benchmarks can compare protocol and transport costs;
//! * [`segment`] / [`rdma`] — registered memory segments and RDMA emulation:
//!   `put`/`get` copy directly into the destination segment from the sender's
//!   thread (no destination-CPU involvement — the defining property of RDMA),
//!   and `fetch_xor_u64` models the Torrent "GUPS" remote atomic update;
//! * [`congruent`] — the congruent memory allocator: the same allocation
//!   sequence executed at every place yields the same segment identifiers, so
//!   any place can name remote memory without a handshake (§3.3, "Congruent
//!   Memory Allocator");
//! * [`place`] — place identifiers and the host topology (the paper runs 32
//!   places per Power 775 octant; `FINISH_DENSE` routes control messages via
//!   per-host master places);
//! * [`codec`] — the serialized wire format (`PROTOCOL.md`): fixed
//!   little-endian message headers, handler-id registry conventions, batch
//!   frames and the connection handshake;
//! * [`tcp`] — [`tcp::TcpTransport`], the sockets back-end: places in
//!   separate OS processes over per-peer framed TCP streams.

#![warn(missing_docs)]

pub mod arena;
pub mod coalesce;
pub mod codec;
pub mod congruent;
pub mod fault;
pub mod message;
pub mod place;
pub mod rdma;
pub mod ring;
pub mod segment;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use arena::{ArenaCounts, EnvelopeArena, DEFAULT_ARENA_RETAIN};
pub use coalesce::{Coalescer, FlushCounts, FlushReason};
pub use codec::{CodecMode, DecodeError, EncodeError, HandlerId, WireMsg, PROTO_VERSION};
pub use congruent::{CongruentAllocator, CongruentArray, Pod};
pub use fault::{ClassFaults, FaultCounts, FaultEvent, FaultPlan, FaultTransport};
pub use message::{BatchPayload, Envelope, MsgClass, Payload, HEADER_BYTES};
pub use place::{PlaceId, Topology};
pub use rdma::RemoteAddr;
pub use ring::{SpscRing, DEFAULT_RING_CAPACITY};
pub use segment::{SegId, Segment, SegmentTable};
pub use stats::NetStats;
pub use tcp::{ProcSpec, TcpConfig, TcpError, TcpTransport};
pub use transport::{LocalTransport, SendError, Transport, TransportError};
