//! The point-to-point transport API and the in-process back-end.
//!
//! X10RT back-ends (PAMI, MPI, sockets) all provide the same primitive: send
//! an active message to a place, with FIFO ordering *per sender/destination
//! pair*. The APGAS layer builds everything else (finish protocols, teams,
//! clocks, load balancing) on top of that primitive — which is why this crate
//! is deliberately tiny.
//!
//! [`LocalTransport`] realizes the API with one mutex-protected deque per
//! destination place. Pushes from one sender thread reach the deque in
//! program order, which gives exactly the per-pair FIFO guarantee the finish
//! protocols rely on (see `apgas::finish::default_proto`).
//!
//! # Batched hot path
//!
//! The trait also exposes a bulk interface — [`Transport::send_batch`] and
//! [`Transport::try_recv_batch`] — with default implementations that loop the
//! scalar operations, so any back-end stays correct without doing anything.
//! [`LocalTransport`] overrides both to move whole runs of messages under a
//! single mailbox lock acquisition, which is where the hot-path saving lives.
//!
//! # Waker debouncing
//!
//! Each mailbox carries a `notified` flag. A sender fires the destination's
//! waker only on the false→true transition, so a burst of sends costs one
//! wake instead of one per message. The *receiver* re-arms the flag whenever
//! it observes the queue empty — under the queue lock, so a concurrent push
//! either lands before the observation (and is seen) or blocks until after
//! the re-arm (and its sender sees `notified == false` and fires). Spurious
//! wakes are possible; lost wakes are not. The scheduler's park path
//! additionally re-checks [`LocalTransport::queue_len`] before sleeping,
//! which makes the protocol robust even against misuse.

use crate::message::{Envelope, MsgClass};
use crate::place::PlaceId;
use crate::stats::NetStats;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A callback invoked when a message arrives for a place, used to unpark its
/// worker thread(s).
pub type Waker = Arc<dyn Fn() + Send + Sync>;

/// Point-to-point transport between places.
///
/// Implementations must deliver messages between any fixed (sender,
/// destination) pair in order; no ordering is guaranteed across pairs (a real
/// network reorders freely across routes — the paper's default finish
/// protocol is designed for exactly this).
pub trait Transport: Send + Sync {
    /// Enqueue a message for delivery. Never blocks.
    fn send(&self, env: Envelope);

    /// Enqueue several messages for delivery, preserving their order per
    /// (sender, destination) pair. The default loops [`Transport::send`];
    /// back-ends override it to amortize per-message submission costs.
    fn send_batch(&self, envs: Vec<Envelope>) {
        for env in envs {
            self.send(env);
        }
    }

    /// Poll for the next message addressed to `place`. Non-blocking.
    fn try_recv(&self, place: PlaceId) -> Option<Envelope>;

    /// Drain up to `max` messages addressed to `place` into `out`,
    /// returning how many were appended. Non-blocking. The default loops
    /// [`Transport::try_recv`]; back-ends override it to drain in bulk.
    fn try_recv_batch(&self, place: PlaceId, max: usize, out: &mut Vec<Envelope>) -> usize {
        let mut n = 0;
        while n < max {
            match self.try_recv(place) {
                Some(env) => {
                    out.push(env);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Register a waker invoked when a message is enqueued for `place`.
    /// Implementations may debounce: a burst of sends while the place has
    /// not yet drained its queue may fire the waker only once.
    fn register_waker(&self, place: PlaceId, waker: Waker);

    /// Shared statistics counters.
    fn stats(&self) -> &NetStats;

    /// Number of places this transport connects.
    fn num_places(&self) -> usize;
}

struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    /// Waker debounce: true while the place has been notified of pending
    /// traffic and has not yet drained to empty.
    notified: AtomicBool,
}

/// In-process transport: one locked FIFO deque per place, with debounced
/// wakers and bulk enqueue/drain.
pub struct LocalTransport {
    mailboxes: Vec<Mailbox>,
    wakers: RwLock<Vec<Option<Waker>>>,
    stats: NetStats,
}

impl LocalTransport {
    /// A transport connecting `places` places.
    pub fn new(places: usize) -> Self {
        assert!(places > 0);
        let mailboxes = (0..places)
            .map(|_| Mailbox {
                queue: Mutex::new(VecDeque::new()),
                notified: AtomicBool::new(false),
            })
            .collect();
        LocalTransport {
            mailboxes,
            wakers: RwLock::new(vec![None; places]),
            stats: NetStats::new(places),
        }
    }

    /// Number of messages currently queued for `place` (diagnostics and the
    /// scheduler's pre-park re-check).
    pub fn queue_len(&self, place: PlaceId) -> usize {
        self.mailboxes[place.index()].queue.lock().len()
    }

    /// Count this envelope: one physical envelope always; one logical
    /// message unless it is a batch (whose inner messages were counted by
    /// the coalescer at pack time).
    fn record(&self, env: &Envelope) {
        self.stats.record_envelope(env.from.0, env.bytes);
        if env.class != MsgClass::Batch {
            self.stats
                .record_send(env.from.0, env.to.0, env.class, env.bytes);
        }
    }

    /// Fire `to`'s waker on the false→true edge of its debounce flag.
    fn wake(&self, to: usize) {
        if !self.mailboxes[to].notified.swap(true, Ordering::AcqRel) {
            // Clone the waker out and drop the read guard *before* invoking:
            // the waker may re-enter the transport (e.g. register_waker needs
            // the write lock), which deadlocks if invoked under the guard.
            let waker = self.wakers.read()[to].clone();
            if let Some(w) = waker {
                w();
            }
        }
    }
}

impl Transport for LocalTransport {
    fn send(&self, env: Envelope) {
        debug_assert!(env.to.index() < self.mailboxes.len(), "bad destination");
        self.record(&env);
        let to = env.to.index();
        self.mailboxes[to].queue.lock().push_back(env);
        self.wake(to);
    }

    fn send_batch(&self, envs: Vec<Envelope>) {
        // Enqueue each same-destination run under one lock acquisition and
        // fire at most one (debounced) wake per run. Processing runs in
        // order preserves per-pair FIFO.
        let mut iter = envs.into_iter().peekable();
        while let Some(env) = iter.next() {
            debug_assert!(env.to.index() < self.mailboxes.len(), "bad destination");
            let to = env.to.index();
            {
                let mut q = self.mailboxes[to].queue.lock();
                self.record(&env);
                q.push_back(env);
                while let Some(next) = iter.peek() {
                    if next.to.index() != to {
                        break;
                    }
                    let next = iter.next().expect("peeked");
                    self.record(&next);
                    q.push_back(next);
                }
            }
            self.wake(to);
        }
    }

    fn try_recv(&self, place: PlaceId) -> Option<Envelope> {
        let mb = &self.mailboxes[place.index()];
        let mut q = mb.queue.lock();
        let env = q.pop_front();
        if q.is_empty() {
            // Re-arm the debounce under the lock: any send serialized after
            // this sees notified == false and fires the waker.
            mb.notified.store(false, Ordering::Release);
        }
        env
    }

    fn try_recv_batch(&self, place: PlaceId, max: usize, out: &mut Vec<Envelope>) -> usize {
        let mb = &self.mailboxes[place.index()];
        let mut q = mb.queue.lock();
        let n = max.min(q.len());
        out.extend(q.drain(..n));
        if q.is_empty() {
            mb.notified.store(false, Ordering::Release);
        }
        n
    }

    fn register_waker(&self, place: PlaceId, waker: Waker) {
        self.wakers.write()[place.index()] = Some(waker);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn num_places(&self) -> usize {
        self.mailboxes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn env(from: u32, to: u32, tag: u64) -> Envelope {
        Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
    }

    #[test]
    fn delivers_point_to_point() {
        let t = LocalTransport::new(3);
        t.send(env(0, 2, 7));
        assert!(t.try_recv(PlaceId(1)).is_none());
        let got = t.try_recv(PlaceId(2)).expect("message for place 2");
        assert_eq!(*got.payload.downcast::<u64>().unwrap(), 7);
        assert!(t.try_recv(PlaceId(2)).is_none());
    }

    #[test]
    fn per_pair_fifo_order() {
        let t = LocalTransport::new(2);
        for i in 0..100u64 {
            t.send(env(0, 1, i));
        }
        for i in 0..100u64 {
            let got = t.try_recv(PlaceId(1)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), i);
        }
    }

    #[test]
    fn waker_debounced_per_burst() {
        let t = LocalTransport::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        t.register_waker(
            PlaceId(1),
            Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        // A burst of sends with no drain in between fires the waker once.
        t.send(env(0, 1, 0));
        t.send(env(0, 1, 1));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // Draining to empty re-arms the debounce ...
        assert!(t.try_recv(PlaceId(1)).is_some());
        assert!(t.try_recv(PlaceId(1)).is_some());
        assert!(t.try_recv(PlaceId(1)).is_none());
        // ... so the next burst fires it again.
        t.send(env(0, 1, 2));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn waker_may_reenter_transport() {
        // Regression test: the waker used to be invoked while the `wakers`
        // read guard was held, so a waker touching the transport (here:
        // re-registering itself, which takes the write lock) deadlocked.
        let t = Arc::new(LocalTransport::new(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let (t2, h) = (t.clone(), hits.clone());
        t.register_waker(
            PlaceId(1),
            Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
                let h2 = h.clone();
                t2.register_waker(
                    PlaceId(1),
                    Arc::new(move || {
                        h2.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }),
        );
        t.send(env(0, 1, 0));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stats_accumulate() {
        let t = LocalTransport::new(2);
        t.send(env(0, 1, 0));
        assert_eq!(t.stats().class(MsgClass::Task).messages, 1);
        assert_eq!(t.stats().total_envelopes(), 1);
        assert_eq!(t.queue_len(PlaceId(1)), 1);
    }

    #[test]
    fn send_batch_preserves_order_and_counts() {
        let t = LocalTransport::new(3);
        let batch: Vec<Envelope> = (0..10u64).map(|i| env(0, 1 + (i % 2) as u32, i)).collect();
        t.send_batch(batch);
        // Per-destination order is send order.
        for want in [0u64, 2, 4, 6, 8] {
            let got = t.try_recv(PlaceId(1)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), want);
        }
        for want in [1u64, 3, 5, 7, 9] {
            let got = t.try_recv(PlaceId(2)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), want);
        }
        assert_eq!(t.stats().total_messages(), 10);
        assert_eq!(t.stats().total_envelopes(), 10);
    }

    #[test]
    fn try_recv_batch_drains_in_order() {
        let t = LocalTransport::new(2);
        for i in 0..10u64 {
            t.send(env(0, 1, i));
        }
        let mut out = Vec::new();
        assert_eq!(t.try_recv_batch(PlaceId(1), 4, &mut out), 4);
        assert_eq!(t.try_recv_batch(PlaceId(1), 100, &mut out), 6);
        assert_eq!(t.try_recv_batch(PlaceId(1), 100, &mut out), 0);
        for (i, e) in out.into_iter().enumerate() {
            assert_eq!(*e.payload.downcast::<u64>().unwrap(), i as u64);
        }
    }

    #[test]
    fn batch_envelope_counts_once_physically() {
        let t = LocalTransport::new(2);
        let inner: Vec<Envelope> = (0..4u64).map(|i| env(0, 1, i)).collect();
        t.send(Envelope::batch(PlaceId(0), PlaceId(1), inner));
        // The transport only counts the physical envelope; logical counts
        // for the inner messages are the coalescer's job.
        assert_eq!(t.stats().total_envelopes(), 1);
        assert_eq!(t.stats().total_messages(), 0);
        let got = t.try_recv(PlaceId(1)).unwrap();
        let envs = got.unbatch().expect("batch");
        assert_eq!(envs.len(), 4);
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let t = Arc::new(LocalTransport::new(2));
        let mut handles = vec![];
        for s in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    t.send(env(0, 1, (s as u64) << 32 | i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut n = 0;
        while t.try_recv(PlaceId(1)).is_some() {
            n += 1;
        }
        assert_eq!(n, 2000);
    }
}
