//! The point-to-point transport API and the in-process back-end.
//!
//! X10RT back-ends (PAMI, MPI, sockets) all provide the same primitive: send
//! an active message to a place, with FIFO ordering *per sender/destination
//! pair*. The APGAS layer builds everything else (finish protocols, teams,
//! clocks, load balancing) on top of that primitive — which is why this crate
//! is deliberately tiny.
//!
//! [`LocalTransport`] realizes the API with one mutex-protected deque per
//! destination place. Pushes from one sender thread reach the deque in
//! program order, which gives exactly the per-pair FIFO guarantee the finish
//! protocols rely on (see `apgas::finish::default_proto`).
//!
//! # Batched hot path
//!
//! The trait also exposes a bulk interface — [`Transport::send_batch`] and
//! [`Transport::try_recv_batch`] — with default implementations that loop the
//! scalar operations, so any back-end stays correct without doing anything.
//! [`LocalTransport`] overrides both to move whole runs of messages under a
//! single mailbox lock acquisition, which is where the hot-path saving lives.
//!
//! # Waker debouncing
//!
//! Each mailbox carries a `notified` flag. A sender fires the destination's
//! waker only on the false→true transition, so a burst of sends costs one
//! wake instead of one per message. The *receiver* re-arms the flag whenever
//! it observes the queue empty — under the queue lock, so a concurrent push
//! either lands before the observation (and is seen) or blocks until after
//! the re-arm (and its sender sees `notified == false` and fires). Spurious
//! wakes are possible; lost wakes are not. The scheduler's park path
//! additionally re-checks [`LocalTransport::queue_len`] before sleeping,
//! which makes the protocol robust even against misuse.

use crate::message::{Envelope, MsgClass};
use crate::place::PlaceId;
use crate::stats::NetStats;
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A callback invoked when a message arrives for a place, used to unpark its
/// worker thread(s).
pub type Waker = Arc<dyn Fn() + Send + Sync>;

/// Why a send could not be completed.
///
/// Real back-ends fail in exactly two shapes: *terminally* (the peer is gone
/// — PAMI surfaces this as a destination error) and *transiently* (the
/// injection FIFO is full and the NIC pushes back). The upper layers treat
/// them very differently: transient rejections are retried with backoff (see
/// [`crate::coalesce::Coalescer`]), terminal failures are surfaced so the
/// protocol layer can degrade (a `finish` reports a dead place instead of
/// hanging, GLB routes around the victim).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The destination place is dead (its mailbox was closed). Terminal:
    /// retrying can never succeed.
    PlaceDead {
        /// The dead destination.
        place: PlaceId,
    },
    /// The transport transiently refused the message (modeled injection-FIFO
    /// backpressure). Retryable.
    Rejected {
        /// The refusing destination.
        place: PlaceId,
    },
    /// Bounded retry gave up without the message being accepted.
    Timeout {
        /// The destination that kept refusing.
        place: PlaceId,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PlaceDead { place } => write!(f, "destination {place} is dead"),
            TransportError::Rejected { place } => {
                write!(f, "send to {place} transiently rejected")
            }
            TransportError::Timeout { place } => {
                write!(f, "send to {place} timed out after bounded retry")
            }
        }
    }
}

impl TransportError {
    /// The destination place the failure concerns.
    pub fn place(&self) -> PlaceId {
        match *self {
            TransportError::PlaceDead { place }
            | TransportError::Rejected { place }
            | TransportError::Timeout { place } => place,
        }
    }
}

impl std::error::Error for TransportError {}

/// A failed send: the error plus what happened to the envelope(s).
///
/// Envelopes in `retry` were *not* consumed and may be resubmitted (only
/// transient [`TransportError::Rejected`] failures return them); `dropped`
/// counts envelopes destroyed outright (sends to a dead place black-hole).
#[derive(Debug)]
pub struct SendError {
    /// The first error encountered.
    pub error: TransportError,
    /// Envelopes eligible for retry (empty for terminal failures).
    pub retry: Vec<Envelope>,
    /// Envelopes destroyed (e.g. addressed to a dead place).
    pub dropped: usize,
}

impl SendError {
    /// A terminal dead-place failure that destroyed `dropped` envelopes.
    pub fn dead(place: PlaceId, dropped: usize) -> Self {
        SendError {
            error: TransportError::PlaceDead { place },
            retry: Vec::new(),
            dropped,
        }
    }

    /// Total envelopes this failure affected (destroyed or returned).
    pub fn affected(&self) -> usize {
        self.dropped + self.retry.len()
    }

    /// The destination place the failure concerns.
    pub fn place(&self) -> PlaceId {
        self.error.place()
    }
}

/// Point-to-point transport between places.
///
/// Implementations must deliver messages between any fixed (sender,
/// destination) pair in order; no ordering is guaranteed across pairs (a real
/// network reorders freely across routes — the paper's default finish
/// protocol is designed for exactly this).
pub trait Transport: Send + Sync {
    /// Enqueue a message for delivery. Never blocks. A send to a dead place
    /// fails with [`TransportError::PlaceDead`]; a transiently refused
    /// message comes back in [`SendError::retry`] for resubmission.
    fn send(&self, env: Envelope) -> Result<(), SendError>;

    /// Enqueue several messages for delivery, preserving their order per
    /// (sender, destination) pair. The default loops [`Transport::send`];
    /// back-ends override it to amortize per-message submission costs.
    ///
    /// On failure the whole batch is still attempted (skipping a failed
    /// envelope cannot break per-pair FIFO for the ones that follow it only
    /// when the failure is terminal for that destination; transient
    /// rejections therefore return the refused envelope *and* every later
    /// same-destination envelope in `retry`, in order). The default
    /// implementation keeps this property by funneling each envelope through
    /// [`Transport::send`] and routing later same-destination envelopes
    /// straight to `retry` once one was refused.
    fn send_batch(&self, envs: Vec<Envelope>) -> Result<(), SendError> {
        let mut first: Option<TransportError> = None;
        let mut retry: Vec<Envelope> = Vec::new();
        let mut dropped = 0usize;
        // Destinations with a transiently refused envelope: later envelopes
        // to the same destination must queue behind it, not overtake it.
        let mut refused: Vec<PlaceId> = Vec::new();
        for env in envs {
            if refused.contains(&env.to) {
                retry.push(env);
                continue;
            }
            match self.send(env) {
                Ok(()) => {}
                Err(e) => {
                    if first.is_none() {
                        first = Some(e.error);
                    }
                    if let TransportError::Rejected { place } = e.error {
                        if !refused.contains(&place) {
                            refused.push(place);
                        }
                    }
                    retry.extend(e.retry);
                    dropped += e.dropped;
                }
            }
        }
        match first {
            None => Ok(()),
            Some(error) => Err(SendError {
                error,
                retry,
                dropped,
            }),
        }
    }

    /// Poll for the next message addressed to `place`. Non-blocking.
    fn try_recv(&self, place: PlaceId) -> Option<Envelope>;

    /// Drain up to `max` messages addressed to `place` into `out`,
    /// returning how many were appended. Non-blocking. The default loops
    /// [`Transport::try_recv`]; back-ends override it to drain in bulk.
    fn try_recv_batch(&self, place: PlaceId, max: usize, out: &mut Vec<Envelope>) -> usize {
        let mut n = 0;
        while n < max {
            match self.try_recv(place) {
                Some(env) => {
                    out.push(env);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Register a waker invoked when a message is enqueued for `place`.
    /// Implementations may debounce: a burst of sends while the place has
    /// not yet drained its queue may fire the waker only once.
    fn register_waker(&self, place: PlaceId, waker: Waker);

    /// Shared statistics counters.
    fn stats(&self) -> &NetStats;

    /// Number of places this transport connects.
    fn num_places(&self) -> usize;

    /// Number of messages currently queued for `place` (diagnostics and the
    /// scheduler's pre-park re-check).
    fn queue_len(&self, place: PlaceId) -> usize;

    /// Kill `place`: its mailbox black-holes (pending and future traffic is
    /// destroyed) and subsequent sends to it fail with
    /// [`TransportError::PlaceDead`]. Irreversible. The default is a no-op
    /// for back-ends without failure support.
    fn kill_place(&self, _place: PlaceId) {}

    /// Has `place` been killed?
    fn is_dead(&self, _place: PlaceId) -> bool {
        false
    }

    /// All places killed so far, ascending.
    fn dead_places(&self) -> Vec<PlaceId> {
        Vec::new()
    }
}

struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    /// Waker debounce: true while the place has been notified of pending
    /// traffic and has not yet drained to empty.
    notified: AtomicBool,
    /// Set when the place is killed: the queue is emptied and stays empty,
    /// and sends fail with [`TransportError::PlaceDead`].
    closed: AtomicBool,
}

/// In-process transport: one locked FIFO deque per place, with debounced
/// wakers and bulk enqueue/drain.
pub struct LocalTransport {
    mailboxes: Vec<Mailbox>,
    wakers: RwLock<Vec<Option<Waker>>>,
    stats: NetStats,
}

impl LocalTransport {
    /// A transport connecting `places` places.
    pub fn new(places: usize) -> Self {
        assert!(places > 0);
        let mailboxes = (0..places)
            .map(|_| Mailbox {
                queue: Mutex::new(VecDeque::new()),
                notified: AtomicBool::new(false),
                closed: AtomicBool::new(false),
            })
            .collect();
        LocalTransport {
            mailboxes,
            wakers: RwLock::new(vec![None; places]),
            stats: NetStats::new(places),
        }
    }

    /// Count this envelope: one physical envelope always; one logical
    /// message unless it is a batch (whose inner messages were counted by
    /// the coalescer at pack time).
    fn record(&self, env: &Envelope) {
        self.stats.record_envelope(env.from.0, env.bytes);
        if env.class != MsgClass::Batch {
            self.stats
                .record_send(env.from.0, env.to.0, env.class, env.bytes);
        }
    }

    /// Fire `to`'s waker on the false→true edge of its debounce flag.
    fn wake(&self, to: usize) {
        if !self.mailboxes[to].notified.swap(true, Ordering::AcqRel) {
            // Clone the waker out and drop the read guard *before* invoking:
            // the waker may re-enter the transport (e.g. register_waker needs
            // the write lock), which deadlocks if invoked under the guard.
            let waker = self.wakers.read()[to].clone();
            if let Some(w) = waker {
                w();
            }
        }
    }
}

impl Transport for LocalTransport {
    fn send(&self, env: Envelope) -> Result<(), SendError> {
        debug_assert!(env.to.index() < self.mailboxes.len(), "bad destination");
        let to = env.to.index();
        if self.mailboxes[to].closed.load(Ordering::Acquire) {
            return Err(SendError::dead(env.to, 1));
        }
        self.record(&env);
        self.mailboxes[to].queue.lock().push_back(env);
        self.wake(to);
        Ok(())
    }

    fn send_batch(&self, envs: Vec<Envelope>) -> Result<(), SendError> {
        // Enqueue each same-destination run under one lock acquisition and
        // fire at most one (debounced) wake per run. Processing runs in
        // order preserves per-pair FIFO. Runs addressed to a dead place are
        // destroyed (black hole) and reported via the returned error.
        let mut err: Option<SendError> = None;
        let mut iter = envs.into_iter().peekable();
        while let Some(env) = iter.next() {
            debug_assert!(env.to.index() < self.mailboxes.len(), "bad destination");
            let to = env.to.index();
            if self.mailboxes[to].closed.load(Ordering::Acquire) {
                let mut destroyed = 1;
                while iter.peek().is_some_and(|next| next.to.index() == to) {
                    iter.next();
                    destroyed += 1;
                }
                match &mut err {
                    Some(e) => e.dropped += destroyed,
                    None => err = Some(SendError::dead(env.to, destroyed)),
                }
                continue;
            }
            {
                let mut q = self.mailboxes[to].queue.lock();
                self.record(&env);
                q.push_back(env);
                while let Some(next) = iter.peek() {
                    if next.to.index() != to {
                        break;
                    }
                    let next = iter.next().expect("peeked");
                    self.record(&next);
                    q.push_back(next);
                }
            }
            self.wake(to);
        }
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn try_recv(&self, place: PlaceId) -> Option<Envelope> {
        let mb = &self.mailboxes[place.index()];
        let mut q = mb.queue.lock();
        let env = q.pop_front();
        if q.is_empty() {
            // Re-arm the debounce under the lock: any send serialized after
            // this sees notified == false and fires the waker.
            mb.notified.store(false, Ordering::Release);
        }
        env
    }

    fn try_recv_batch(&self, place: PlaceId, max: usize, out: &mut Vec<Envelope>) -> usize {
        let mb = &self.mailboxes[place.index()];
        let mut q = mb.queue.lock();
        let n = max.min(q.len());
        out.extend(q.drain(..n));
        if q.is_empty() {
            mb.notified.store(false, Ordering::Release);
        }
        n
    }

    fn register_waker(&self, place: PlaceId, waker: Waker) {
        self.wakers.write()[place.index()] = Some(waker);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn num_places(&self) -> usize {
        self.mailboxes.len()
    }

    fn queue_len(&self, place: PlaceId) -> usize {
        self.mailboxes[place.index()].queue.lock().len()
    }

    fn kill_place(&self, place: PlaceId) {
        let mb = &self.mailboxes[place.index()];
        // Order matters: close first, then purge under the queue lock, so a
        // concurrent send either observed `closed` (and failed) or enqueued
        // before the purge (and is destroyed with the rest).
        mb.closed.store(true, Ordering::Release);
        mb.queue.lock().clear();
    }

    fn is_dead(&self, place: PlaceId) -> bool {
        self.mailboxes[place.index()].closed.load(Ordering::Acquire)
    }

    fn dead_places(&self) -> Vec<PlaceId> {
        (0..self.mailboxes.len())
            .filter(|&i| self.mailboxes[i].closed.load(Ordering::Acquire))
            .map(|i| PlaceId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn env(from: u32, to: u32, tag: u64) -> Envelope {
        Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
    }

    #[test]
    fn delivers_point_to_point() {
        let t = LocalTransport::new(3);
        t.send(env(0, 2, 7)).unwrap();
        assert!(t.try_recv(PlaceId(1)).is_none());
        let got = t.try_recv(PlaceId(2)).expect("message for place 2");
        assert_eq!(*got.payload.downcast::<u64>().unwrap(), 7);
        assert!(t.try_recv(PlaceId(2)).is_none());
    }

    #[test]
    fn per_pair_fifo_order() {
        let t = LocalTransport::new(2);
        for i in 0..100u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        for i in 0..100u64 {
            let got = t.try_recv(PlaceId(1)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), i);
        }
    }

    #[test]
    fn waker_debounced_per_burst() {
        let t = LocalTransport::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        t.register_waker(
            PlaceId(1),
            Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        // A burst of sends with no drain in between fires the waker once.
        t.send(env(0, 1, 0)).unwrap();
        t.send(env(0, 1, 1)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // Draining to empty re-arms the debounce ...
        assert!(t.try_recv(PlaceId(1)).is_some());
        assert!(t.try_recv(PlaceId(1)).is_some());
        assert!(t.try_recv(PlaceId(1)).is_none());
        // ... so the next burst fires it again.
        t.send(env(0, 1, 2)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn waker_may_reenter_transport() {
        // Regression test: the waker used to be invoked while the `wakers`
        // read guard was held, so a waker touching the transport (here:
        // re-registering itself, which takes the write lock) deadlocked.
        let t = Arc::new(LocalTransport::new(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let (t2, h) = (t.clone(), hits.clone());
        t.register_waker(
            PlaceId(1),
            Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
                let h2 = h.clone();
                t2.register_waker(
                    PlaceId(1),
                    Arc::new(move || {
                        h2.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }),
        );
        t.send(env(0, 1, 0)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stats_accumulate() {
        let t = LocalTransport::new(2);
        t.send(env(0, 1, 0)).unwrap();
        assert_eq!(t.stats().class(MsgClass::Task).messages, 1);
        assert_eq!(t.stats().total_envelopes(), 1);
        assert_eq!(t.queue_len(PlaceId(1)), 1);
    }

    #[test]
    fn send_batch_preserves_order_and_counts() {
        let t = LocalTransport::new(3);
        let batch: Vec<Envelope> = (0..10u64).map(|i| env(0, 1 + (i % 2) as u32, i)).collect();
        t.send_batch(batch).unwrap();
        // Per-destination order is send order.
        for want in [0u64, 2, 4, 6, 8] {
            let got = t.try_recv(PlaceId(1)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), want);
        }
        for want in [1u64, 3, 5, 7, 9] {
            let got = t.try_recv(PlaceId(2)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), want);
        }
        assert_eq!(t.stats().total_messages(), 10);
        assert_eq!(t.stats().total_envelopes(), 10);
    }

    #[test]
    fn try_recv_batch_drains_in_order() {
        let t = LocalTransport::new(2);
        for i in 0..10u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(t.try_recv_batch(PlaceId(1), 4, &mut out), 4);
        assert_eq!(t.try_recv_batch(PlaceId(1), 100, &mut out), 6);
        assert_eq!(t.try_recv_batch(PlaceId(1), 100, &mut out), 0);
        for (i, e) in out.into_iter().enumerate() {
            assert_eq!(*e.payload.downcast::<u64>().unwrap(), i as u64);
        }
    }

    #[test]
    fn batch_envelope_counts_once_physically() {
        let t = LocalTransport::new(2);
        let inner: Vec<Envelope> = (0..4u64).map(|i| env(0, 1, i)).collect();
        t.send(Envelope::batch(PlaceId(0), PlaceId(1), inner))
            .unwrap();
        // The transport only counts the physical envelope; logical counts
        // for the inner messages are the coalescer's job.
        assert_eq!(t.stats().total_envelopes(), 1);
        assert_eq!(t.stats().total_messages(), 0);
        let got = t.try_recv(PlaceId(1)).unwrap();
        let envs = got.unbatch().expect("batch");
        assert_eq!(envs.len(), 4);
    }

    #[test]
    fn send_to_dead_place_returns_typed_error() {
        let t = LocalTransport::new(3);
        t.send(env(0, 1, 0)).unwrap();
        t.kill_place(PlaceId(1));
        // Pending traffic is destroyed; the mailbox black-holes.
        assert_eq!(t.queue_len(PlaceId(1)), 0);
        assert!(t.try_recv(PlaceId(1)).is_none());
        let err = t.send(env(0, 1, 1)).unwrap_err();
        assert_eq!(err.error, TransportError::PlaceDead { place: PlaceId(1) });
        assert!(err.retry.is_empty());
        assert_eq!(err.dropped, 1);
        assert!(t.is_dead(PlaceId(1)));
        assert!(!t.is_dead(PlaceId(2)));
        assert_eq!(t.dead_places(), vec![PlaceId(1)]);
        // Other places are unaffected.
        t.send(env(0, 2, 9)).unwrap();
        assert!(t.try_recv(PlaceId(2)).is_some());
    }

    #[test]
    fn send_batch_skips_dead_runs_and_reports() {
        let t = LocalTransport::new(3);
        t.kill_place(PlaceId(1));
        let batch: Vec<Envelope> = (0..6u64).map(|i| env(0, 1 + (i % 2) as u32, i)).collect();
        let err = t.send_batch(batch).unwrap_err();
        assert_eq!(err.error, TransportError::PlaceDead { place: PlaceId(1) });
        assert_eq!(err.dropped, 3);
        assert!(err.retry.is_empty());
        // The live destination still got its run, in order.
        for want in [1u64, 3, 5] {
            let got = t.try_recv(PlaceId(2)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), want);
        }
        // Destroyed envelopes are not recorded in the ledgers.
        assert_eq!(t.stats().total_messages(), 3);
        assert_eq!(t.stats().total_envelopes(), 3);
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let t = Arc::new(LocalTransport::new(2));
        let mut handles = vec![];
        for s in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    t.send(env(0, 1, (s as u64) << 32 | i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut n = 0;
        while t.try_recv(PlaceId(1)).is_some() {
            n += 1;
        }
        assert_eq!(n, 2000);
    }
}
