//! The point-to-point transport API and the in-process back-end.
//!
//! X10RT back-ends (PAMI, MPI, sockets) all provide the same primitive: send
//! an active message to a place, with FIFO ordering *per sender/destination
//! pair*. The APGAS layer builds everything else (finish protocols, teams,
//! clocks, load balancing) on top of that primitive — which is why this crate
//! is deliberately tiny.
//!
//! # Lane matrix
//!
//! [`LocalTransport`] realizes the API with one *lane* per (sender,
//! destination) pair: a bounded lock-free SPSC ring (see [`crate::ring`])
//! backed by an overflow side-queue. The hot send path is a ring push — no
//! mutex, no allocation — and the hot receive path is a round-robin sweep of
//! the destination's incoming lanes, bulk-draining each ring. Per-pair FIFO
//! holds because one sender's messages to one destination all travel the
//! same lane in program order (this is exactly the PAMI guarantee the finish
//! protocols rely on; see `apgas::finish::default_proto`). No ordering holds
//! *across* lanes — a real network reorders freely across routes.
//!
//! # Dense vs. sparse lane storage
//!
//! Up to [`DENSE_LANES_MAX`] places the lanes live in a dense row-major
//! `places × places` array — zero indirection on the hot paths. Above it the
//! quadratic header cost becomes real money (at 4,096 places a dense matrix
//! is 16.7M lane headers, gigabytes before a single message flows), so the
//! transport switches to one *sparse row* per receiver: lanes materialize on
//! a sender's first message, held in an append-only vector guarded by an
//! `RwLock` (reads on every send/sweep, a write only on first contact).
//! Append-only matters: lane positions are stable, so the receiver's
//! round-robin cursor survives concurrent lane creation. Real communication
//! graphs at scale are sparse — finish protocols talk to a home place, GLB
//! to O(log P) lifelines — so the populated rows stay short. The
//! `mailbox.lanes_allocated` metric ([`LocalTransport::lanes_allocated`])
//! reports how many pairs actually paid for storage.
//!
//! # Overflow side-queue
//!
//! A full ring must not block the sender (the worker that would drain it may
//! itself be blocked on this send completing) and must not drop. When a push
//! finds the ring full, the envelope diverts to the lane's mutex-protected
//! overflow deque and the lane stays in *overflow mode* — subsequent sends
//! append to the overflow, never the ring, until the receiver has drained
//! the overflow empty. That rule is what preserves FIFO: ring items are
//! always older than overflow items, so the receiver drains ring-then-
//! overflow. Overflow engagements are counted (`NetStats::
//! total_ring_overflows`, the `mailbox.ring_overflow` metric); a workload
//! that lives in overflow mode needs a bigger `mailbox_ring_capacity`, not a
//! faster mutex.
//!
//! # Waker debouncing
//!
//! Each destination carries a `notified` flag. A sender fires the
//! destination's waker only on the false→true transition of an `AcqRel`
//! `swap`, so a burst of sends costs one wake instead of one per message.
//! The *receiver* re-arms the flag when a sweep finds every lane empty —
//! also with a `swap`, then re-checks the lanes. The two swaps on the same
//! flag are totally ordered, and RMWs extend release sequences, so either
//! the sender's swap observes the re-arm (and fires) or the receiver's
//! re-arm swap acquires the sender's push (and the re-check sees the
//! message). Spurious wakes are possible; lost wakes are not. The
//! scheduler's park path additionally re-checks [`Transport::queue_len`]
//! before sleeping, which makes the protocol robust even against misuse.

use crate::message::{Envelope, MsgClass};
use crate::place::PlaceId;
use crate::ring::{spin_lock, SpscRing, DEFAULT_RING_CAPACITY};
use crate::stats::NetStats;
use obs::metrics::{Counter, MetricsRegistry};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A callback invoked when a message arrives for a place, used to unpark its
/// worker thread(s).
pub type Waker = Arc<dyn Fn() + Send + Sync>;

/// Why a send could not be completed.
///
/// Real back-ends fail in exactly two shapes: *terminally* (the peer is gone
/// — PAMI surfaces this as a destination error) and *transiently* (the
/// injection FIFO is full and the NIC pushes back). The upper layers treat
/// them very differently: transient rejections are retried with backoff (see
/// [`crate::coalesce::Coalescer`]), terminal failures are surfaced so the
/// protocol layer can degrade (a `finish` reports a dead place instead of
/// hanging, GLB routes around the victim).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The destination place is dead (its mailbox was closed). Terminal:
    /// retrying can never succeed.
    PlaceDead {
        /// The dead destination.
        place: PlaceId,
    },
    /// The transport transiently refused the message (modeled injection-FIFO
    /// backpressure). Retryable.
    Rejected {
        /// The refusing destination.
        place: PlaceId,
    },
    /// Bounded retry gave up without the message being accepted.
    Timeout {
        /// The destination that kept refusing.
        place: PlaceId,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PlaceDead { place } => write!(f, "destination {place} is dead"),
            TransportError::Rejected { place } => {
                write!(f, "send to {place} transiently rejected")
            }
            TransportError::Timeout { place } => {
                write!(f, "send to {place} timed out after bounded retry")
            }
        }
    }
}

impl TransportError {
    /// The destination place the failure concerns.
    pub fn place(&self) -> PlaceId {
        match *self {
            TransportError::PlaceDead { place }
            | TransportError::Rejected { place }
            | TransportError::Timeout { place } => place,
        }
    }
}

impl std::error::Error for TransportError {}

/// A failed send: the error plus what happened to the envelope(s).
///
/// Envelopes in `retry` were *not* consumed and may be resubmitted (only
/// transient [`TransportError::Rejected`] failures return them); `dropped`
/// counts envelopes destroyed outright (sends to a dead place black-hole).
#[derive(Debug)]
pub struct SendError {
    /// The first error encountered.
    pub error: TransportError,
    /// Envelopes eligible for retry (empty for terminal failures).
    pub retry: Vec<Envelope>,
    /// Envelopes destroyed (e.g. addressed to a dead place).
    pub dropped: usize,
}

impl SendError {
    /// A terminal dead-place failure that destroyed `dropped` envelopes.
    pub fn dead(place: PlaceId, dropped: usize) -> Self {
        SendError {
            error: TransportError::PlaceDead { place },
            retry: Vec::new(),
            dropped,
        }
    }

    /// Total envelopes this failure affected (destroyed or returned).
    pub fn affected(&self) -> usize {
        self.dropped + self.retry.len()
    }

    /// The destination place the failure concerns.
    pub fn place(&self) -> PlaceId {
        self.error.place()
    }
}

/// Point-to-point transport between places.
///
/// Implementations must deliver messages between any fixed (sender,
/// destination) pair in order; no ordering is guaranteed across pairs (a real
/// network reorders freely across routes — the paper's default finish
/// protocol is designed for exactly this).
pub trait Transport: Send + Sync {
    /// Enqueue a message for delivery. Never blocks. A send to a dead place
    /// fails with [`TransportError::PlaceDead`]; a transiently refused
    /// message comes back in [`SendError::retry`] for resubmission.
    fn send(&self, env: Envelope) -> Result<(), SendError>;

    /// Enqueue several messages for delivery, preserving their order per
    /// (sender, destination) pair. The default loops [`Transport::send`];
    /// back-ends override it to amortize per-message submission costs.
    ///
    /// On failure the whole batch is still attempted (skipping a failed
    /// envelope cannot break per-pair FIFO for the ones that follow it only
    /// when the failure is terminal for that destination; transient
    /// rejections therefore return the refused envelope *and* every later
    /// same-destination envelope in `retry`, in order). The default
    /// implementation keeps this property by funneling each envelope through
    /// [`Transport::send`] and routing later same-destination envelopes
    /// straight to `retry` once one was refused.
    fn send_batch(&self, envs: Vec<Envelope>) -> Result<(), SendError> {
        let mut first: Option<TransportError> = None;
        let mut retry: Vec<Envelope> = Vec::new();
        let mut dropped = 0usize;
        // Destinations with a transiently refused envelope: later envelopes
        // to the same destination must queue behind it, not overtake it.
        let mut refused: Vec<PlaceId> = Vec::new();
        for env in envs {
            if refused.contains(&env.to) {
                retry.push(env);
                continue;
            }
            match self.send(env) {
                Ok(()) => {}
                Err(e) => {
                    if first.is_none() {
                        first = Some(e.error);
                    }
                    if let TransportError::Rejected { place } = e.error {
                        if !refused.contains(&place) {
                            refused.push(place);
                        }
                    }
                    retry.extend(e.retry);
                    dropped += e.dropped;
                }
            }
        }
        match first {
            None => Ok(()),
            Some(error) => Err(SendError {
                error,
                retry,
                dropped,
            }),
        }
    }

    /// Poll for the next message addressed to `place`. Non-blocking.
    fn try_recv(&self, place: PlaceId) -> Option<Envelope>;

    /// Drain up to `max` messages addressed to `place` into `out`,
    /// returning how many were appended. Non-blocking. The default loops
    /// [`Transport::try_recv`]; back-ends override it to drain in bulk.
    fn try_recv_batch(&self, place: PlaceId, max: usize, out: &mut Vec<Envelope>) -> usize {
        let mut n = 0;
        while n < max {
            match self.try_recv(place) {
                Some(env) => {
                    out.push(env);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Register a waker invoked when a message is enqueued for `place`.
    /// Implementations may debounce: a burst of sends while the place has
    /// not yet drained its queue may fire the waker only once.
    fn register_waker(&self, place: PlaceId, waker: Waker);

    /// Shared statistics counters.
    fn stats(&self) -> &NetStats;

    /// Number of places this transport connects.
    fn num_places(&self) -> usize;

    /// Number of messages currently queued for `place` (diagnostics and the
    /// scheduler's pre-park re-check).
    fn queue_len(&self, place: PlaceId) -> usize;

    /// Kill `place`: its mailbox black-holes (pending and future traffic is
    /// destroyed) and subsequent sends to it fail with
    /// [`TransportError::PlaceDead`]. Irreversible. The default is a no-op
    /// for back-ends without failure support.
    fn kill_place(&self, _place: PlaceId) {}

    /// Has `place` been killed?
    fn is_dead(&self, _place: PlaceId) -> bool {
        false
    }

    /// All places killed so far, ascending.
    fn dead_places(&self) -> Vec<PlaceId> {
        Vec::new()
    }
}

/// One (sender place, destination place) channel: a lock-free ring plus the
/// overflow side-queue that catches what the ring cannot hold.
struct Lane {
    ring: SpscRing<Envelope>,
    /// Overflow side-queue — only touched when the ring fills (or until the
    /// receiver has drained a previous overflow empty). Deliberately a
    /// mutex: this is the documented escape hatch, not the fast path.
    overflow: Mutex<VecDeque<Envelope>>,
    /// Mirror of the overflow queue length, written under the mutex, so the
    /// fast path can check "overflow engaged?" with one relaxed-cost load.
    overflow_len: AtomicUsize,
}

impl Lane {
    fn new(ring_capacity: usize) -> Self {
        Lane {
            ring: SpscRing::new(ring_capacity),
            overflow: Mutex::new(VecDeque::new()),
            overflow_len: AtomicUsize::new(0),
        }
    }

    /// Messages queued in this lane (approximate under concurrency).
    fn len(&self) -> usize {
        self.ring.len() + self.overflow_len.load(Ordering::Acquire)
    }

    /// Any message queued in this lane?
    fn is_active(&self) -> bool {
        !self.ring.is_empty() || self.overflow_len.load(Ordering::Acquire) != 0
    }
}

/// Largest place count served by the dense `places × places` lane array.
/// Above it, lane storage switches to per-receiver sparse rows (see the
/// module docs): `128² = 16,384` headers is the most the dense layout is
/// allowed to cost up front.
pub const DENSE_LANES_MAX: usize = 128;

/// Lane storage: dense matrix for small worlds, lazily-populated sparse
/// rows for big ones.
enum Lanes {
    /// Row-major by sender: lane `(s, r)` lives at `s * places + r`.
    Dense(Box<[Lane]>),
    /// One row per *receiver*; a sender's lane materializes on its first
    /// message to that receiver.
    Sparse(Box<[SparseRow]>),
}

/// A receiver's lazily-populated incoming lanes.
///
/// The lock is read-held on every send and sweep and write-held only to
/// append a new sender's lane — first contact per pair, once ever. Lane
/// operations themselves (ring push/pop, overflow mutex) happen under the
/// *read* guard, so senders and the receiver proceed concurrently; only a
/// first-contact insert briefly excludes them.
struct SparseRow {
    inner: RwLock<SparseLanes>,
}

#[derive(Default)]
struct SparseLanes {
    /// Sender place id → position in `lanes`.
    by_sender: HashMap<u32, usize>,
    /// Append-only — positions are stable, so the receiver's round-robin
    /// cursor (an index into this vector) survives concurrent growth.
    lanes: Vec<(u32, Arc<Lane>)>,
}

/// Per-destination receive state, cache-line isolated from its neighbours.
#[repr(align(64))]
struct RecvState {
    /// Waker debounce: true while the place has been notified of pending
    /// traffic and has not yet drained to empty.
    notified: AtomicBool,
    /// Set when the place is killed: the lanes are purged, receive paths
    /// return nothing, and sends fail with [`TransportError::PlaceDead`].
    closed: AtomicBool,
    /// Consumer spin guard: serializes sweeps (and the kill-time purge) so
    /// the lane matrix sees one consumer per destination.
    sweep_guard: AtomicBool,
    /// Round-robin sweep position (which sender lane to take next);
    /// accessed under `sweep_guard`.
    cursor: AtomicUsize,
}

/// In-process transport: a lock-free SPSC ring lane per (sender, receiver)
/// pair, with overflow side-queues, debounced wakers and bulk sweep drain.
pub struct LocalTransport {
    places: usize,
    ring_capacity: usize,
    /// Dense matrix at ≤ [`DENSE_LANES_MAX`] places, sparse per-receiver
    /// rows above (see the module docs).
    lanes: Lanes,
    recv: Box<[RecvState]>,
    wakers: RwLock<Vec<Option<Waker>>>,
    stats: NetStats,
    /// Observability mirror of the ring-overflow counter (sharded by
    /// sender), resolved once at construction.
    overflow_obs: Option<Counter>,
    /// Lanes actually backed by storage. Dense mode records the whole
    /// matrix at construction; sparse mode counts each first-contact
    /// materialization.
    lanes_allocated: AtomicUsize,
    /// Observability mirror of `lanes_allocated` (sharded by sender).
    lanes_obs: Option<Counter>,
}

impl LocalTransport {
    /// A transport connecting `places` places with the default per-lane ring
    /// capacity ([`DEFAULT_RING_CAPACITY`]).
    pub fn new(places: usize) -> Self {
        Self::with_ring_capacity(places, DEFAULT_RING_CAPACITY)
    }

    /// A transport with an explicit per-lane ring capacity (rounded up to a
    /// power of two). Ring buffers are allocated lazily per active lane, so
    /// the `places²` matrix costs headers, not buffers, for idle pairs.
    pub fn with_ring_capacity(places: usize, ring_capacity: usize) -> Self {
        assert!(places > 0);
        let lanes = if places <= DENSE_LANES_MAX {
            Lanes::Dense(
                (0..places * places)
                    .map(|_| Lane::new(ring_capacity))
                    .collect(),
            )
        } else {
            Lanes::Sparse(
                (0..places)
                    .map(|_| SparseRow {
                        inner: RwLock::new(SparseLanes::default()),
                    })
                    .collect(),
            )
        };
        let lanes_allocated = AtomicUsize::new(match &lanes {
            Lanes::Dense(l) => l.len(),
            Lanes::Sparse(_) => 0,
        });
        let recv = (0..places)
            .map(|_| RecvState {
                notified: AtomicBool::new(false),
                closed: AtomicBool::new(false),
                sweep_guard: AtomicBool::new(false),
                cursor: AtomicUsize::new(0),
            })
            .collect();
        LocalTransport {
            places,
            ring_capacity: ring_capacity.next_power_of_two().max(2),
            lanes,
            recv,
            wakers: RwLock::new(vec![None; places]),
            stats: NetStats::new(places),
            overflow_obs: None,
            lanes_allocated,
            lanes_obs: None,
        }
    }

    /// Mirror ring-overflow engagements and lane materializations into the
    /// shared metrics registry (builder style): resolves the counters once
    /// so the hot paths stay one relaxed increment.
    pub fn with_obs(mut self, metrics: &MetricsRegistry) -> Self {
        self.overflow_obs = Some(metrics.counter(obs::names::MAILBOX_RING_OVERFLOW));
        let lanes = metrics.counter(obs::names::MAILBOX_LANES_ALLOCATED);
        // Catch up on lanes that predate the registry (the dense matrix, or
        // — defensively — sparse lanes created before this call).
        let already = self.lanes_allocated.load(Ordering::Relaxed);
        if already > 0 {
            lanes.add(0, already as u64);
        }
        self.lanes_obs = Some(lanes);
        self
    }

    /// The per-lane ring capacity this transport was built with.
    pub fn ring_capacity(&self) -> usize {
        self.ring_capacity
    }

    /// How many (sender, receiver) lanes are actually backed by storage.
    /// Dense mode: the full `places²` matrix. Sparse mode: one per pair
    /// that has communicated — the number the `mailbox.lanes_allocated`
    /// metric mirrors.
    pub fn lanes_allocated(&self) -> usize {
        self.lanes_allocated.load(Ordering::Relaxed)
    }

    /// The lane for `(from, to)` in sparse mode, materializing it on first
    /// contact. Read-lock lookup on the hot path; the write lock is taken
    /// only to append a new sender's lane (with a double-check, since two
    /// racing first messages can both miss the read probe — only one
    /// inserts; per-pair SPSC discipline means the pair's *owner* sender is
    /// normally the only writer anyway).
    fn sparse_lane(&self, rows: &[SparseRow], from: u32, to: usize) -> Arc<Lane> {
        {
            let row = rows[to].inner.read();
            if let Some(&i) = row.by_sender.get(&from) {
                return row.lanes[i].1.clone();
            }
        }
        let mut row = rows[to].inner.write();
        if let Some(&i) = row.by_sender.get(&from) {
            return row.lanes[i].1.clone();
        }
        let lane = Arc::new(Lane::new(self.ring_capacity));
        let pos = row.lanes.len();
        row.lanes.push((from, lane.clone()));
        row.by_sender.insert(from, pos);
        self.lanes_allocated.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.lanes_obs {
            c.inc(from);
        }
        lane
    }

    /// Count this envelope: one physical envelope always; one logical
    /// message unless it is a batch (whose inner messages were counted by
    /// the coalescer at pack time).
    fn record(&self, env: &Envelope) {
        self.stats.record_envelope(env.from.0, env.bytes);
        if env.class != MsgClass::Batch {
            self.stats
                .record_send(env.from.0, env.to.0, env.class, env.bytes);
        }
    }

    /// Enqueue `env` on its lane: ring fast path, overflow side-queue when
    /// the ring is full *or* a previous overflow has not drained yet (the
    /// rule that keeps ring items strictly older than overflow items, hence
    /// per-pair FIFO). Counts the overflow engagement when it happens.
    fn push_lane(&self, env: Envelope) {
        match &self.lanes {
            Lanes::Dense(lanes) => {
                let lane = &lanes[env.from.index() * self.places + env.to.index()];
                self.push_to(lane, env);
            }
            Lanes::Sparse(rows) => {
                // Lane creation (under the row's write lock) happens-before
                // the push, which happens-before the waker swap — so the
                // receiver's re-arm/re-check protocol (module docs) sees
                // fresh lanes exactly as reliably as fresh messages: its
                // re-check takes the row's read lock, which synchronizes
                // with the creating write.
                let lane = self.sparse_lane(rows, env.from.0, env.to.index());
                self.push_to(&lane, env);
            }
        }
    }

    fn push_to(&self, lane: &Lane, env: Envelope) {
        if lane.overflow_len.load(Ordering::Acquire) == 0 {
            match lane.ring.push(env) {
                Ok(()) => {}
                Err(env) => self.push_overflow(lane, env),
            }
        } else {
            self.push_overflow(lane, env);
        }
    }

    fn push_overflow(&self, lane: &Lane, env: Envelope) {
        let from = env.from.0;
        {
            let mut q = lane.overflow.lock();
            q.push_back(env);
            lane.overflow_len.store(q.len(), Ordering::Release);
        }
        self.stats.record_ring_overflow(from);
        if let Some(c) = &self.overflow_obs {
            c.inc(from);
        }
    }

    /// Fire `to`'s waker on the false→true edge of its debounce flag. The
    /// `AcqRel` swap pairs with the receiver's re-arm swap (see the module
    /// docs for why this cannot lose a wakeup).
    fn wake(&self, to: usize) {
        if !self.recv[to].notified.swap(true, Ordering::AcqRel) {
            // Clone the waker out and drop the read guard *before* invoking:
            // the waker may re-enter the transport (e.g. register_waker needs
            // the write lock), which deadlocks if invoked under the guard.
            let waker = self.wakers.read()[to].clone();
            if let Some(w) = waker {
                w();
            }
        }
    }

    /// Any message queued for destination `r`?
    fn has_pending(&self, r: usize) -> bool {
        match &self.lanes {
            Lanes::Dense(lanes) => (0..self.places).any(|s| lanes[s * self.places + r].is_active()),
            Lanes::Sparse(rows) => rows[r]
                .inner
                .read()
                .lanes
                .iter()
                .any(|(_, lane)| lane.is_active()),
        }
    }

    /// Drain one lane FIFO-correctly: ring first (strictly older), then the
    /// overflow, then the ring again (items pushed after the overflow
    /// emptied). Returns how many envelopes were appended (≤ `budget`).
    ///
    /// Ordering subtlety: the first `pop_many` may run against a *stale*
    /// view of the ring (the producer's tail store not yet observed) while
    /// the `overflow_len` load — which synchronizes with the producer's
    /// *later* overflow push — succeeds. Draining the overflow on that
    /// stale view would deliver newer items ahead of older ring items, so
    /// after every non-zero `overflow_len` observation the ring is drained
    /// *again* first: the Acquire load made every earlier ring push
    /// visible.
    fn drain_lane(&self, lane: &Lane, budget: usize, out: &mut Vec<Envelope>) -> usize {
        let mut n = lane.ring.pop_many(budget, out);
        loop {
            if n >= budget || lane.overflow_len.load(Ordering::Acquire) == 0 {
                return n;
            }
            // Ring items are strictly older than overflow items (producers
            // divert only on full-or-diverting) — and the Acquire above is
            // what guarantees we can actually see all of them. Ring first.
            let more = lane.ring.pop_many(budget - n, out);
            n += more;
            if n >= budget {
                return n;
            }
            let drained = {
                let mut q = lane.overflow.lock();
                let k = (budget - n).min(q.len());
                out.extend(q.drain(..k));
                lane.overflow_len.store(q.len(), Ordering::Release);
                k
            };
            n += drained;
            if drained == 0 && more == 0 {
                return n;
            }
        }
    }

    /// One round-robin pass over destination `r`'s incoming lanes, starting
    /// at the sweep cursor. Caller holds the sweep guard.
    ///
    /// The cursor indexes *senders* in dense mode and *row positions* in
    /// sparse mode — either way a stable identity for "the lane to resume
    /// at" (sparse rows are append-only, so positions never move).
    fn sweep(&self, r: usize, budget: usize, out: &mut Vec<Envelope>) -> usize {
        if budget == 0 {
            return 0;
        }
        let start = self.recv[r].cursor.load(Ordering::Relaxed);
        let mut total = 0;
        match &self.lanes {
            Lanes::Dense(lanes) => {
                for i in 0..self.places {
                    let s = (start + i) % self.places;
                    total += self.drain_lane(&lanes[s * self.places + r], budget - total, out);
                    if total >= budget {
                        // Resume at this lane next sweep — it may hold more.
                        self.recv[r].cursor.store(s, Ordering::Relaxed);
                        break;
                    }
                }
            }
            Lanes::Sparse(rows) => {
                let row = rows[r].inner.read();
                let n = row.lanes.len();
                if n == 0 {
                    return 0;
                }
                for i in 0..n {
                    let p = (start + i) % n;
                    total += self.drain_lane(&row.lanes[p].1, budget - total, out);
                    if total >= budget {
                        self.recv[r].cursor.store(p, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }
        total
    }

    /// Pop one envelope from `lane`, FIFO-correctly (same stale-ring hazard
    /// as `drain_lane`: after a non-zero `overflow_len` observation the
    /// Acquire load has made every older ring push visible, so re-take the
    /// ring before the overflow).
    fn pop_lane(&self, lane: &Lane) -> Option<Envelope> {
        lane.ring.pop().or_else(|| {
            if lane.overflow_len.load(Ordering::Acquire) != 0 {
                lane.ring.pop().or_else(|| {
                    let mut q = lane.overflow.lock();
                    let e = q.pop_front();
                    lane.overflow_len.store(q.len(), Ordering::Release);
                    // The ring may have refilled once the overflow emptied.
                    e.or_else(|| lane.ring.pop())
                })
            } else {
                None
            }
        })
    }

    /// Pop a single envelope for `r`, resuming at the sweep cursor so an
    /// in-progress lane drains FIFO before the sweep moves on. Caller holds
    /// the sweep guard.
    fn sweep_one(&self, r: usize) -> Option<Envelope> {
        let start = self.recv[r].cursor.load(Ordering::Relaxed);
        match &self.lanes {
            Lanes::Dense(lanes) => {
                for i in 0..self.places {
                    let s = (start + i) % self.places;
                    if let Some(env) = self.pop_lane(&lanes[s * self.places + r]) {
                        self.recv[r].cursor.store(s, Ordering::Relaxed);
                        return Some(env);
                    }
                }
            }
            Lanes::Sparse(rows) => {
                let row = rows[r].inner.read();
                let n = row.lanes.len();
                for i in 0..n {
                    let p = (start + i) % n;
                    if let Some(env) = self.pop_lane(&row.lanes[p].1) {
                        self.recv[r].cursor.store(p, Ordering::Relaxed);
                        return Some(env);
                    }
                }
            }
        }
        None
    }

    /// Re-arm the debounce for `r` and re-check the lanes. Returns true when
    /// the race was lost to a concurrent sender — a message landed around
    /// the re-arm — and the caller should sweep again.
    fn rearm_and_recheck(&self, r: usize) -> bool {
        let rs = &self.recv[r];
        // Must be a swap (RMW), not a plain store: reading the senders' swap
        // chain is what acquires their ring pushes for the re-check below.
        rs.notified.swap(false, Ordering::AcqRel);
        if !self.has_pending(r) {
            return false;
        }
        // Reclaim the notification — we are about to consume the message.
        rs.notified.swap(true, Ordering::AcqRel);
        true
    }
}

impl Transport for LocalTransport {
    fn send(&self, env: Envelope) -> Result<(), SendError> {
        debug_assert!(env.to.index() < self.places, "bad destination");
        debug_assert!(env.from.index() < self.places, "bad sender");
        let to = env.to.index();
        if self.recv[to].closed.load(Ordering::Acquire) {
            return Err(SendError::dead(env.to, 1));
        }
        self.record(&env);
        self.push_lane(env);
        self.wake(to);
        Ok(())
    }

    fn send_batch(&self, envs: Vec<Envelope>) -> Result<(), SendError> {
        // Enqueue each same-destination run and fire at most one (debounced)
        // wake per run. Processing runs in order preserves per-pair FIFO.
        // Runs addressed to a dead place are destroyed (black hole) and
        // reported via the returned error.
        let mut err: Option<SendError> = None;
        let mut iter = envs.into_iter().peekable();
        while let Some(env) = iter.next() {
            debug_assert!(env.to.index() < self.places, "bad destination");
            let to = env.to.index();
            if self.recv[to].closed.load(Ordering::Acquire) {
                let mut destroyed = 1;
                while iter.peek().is_some_and(|next| next.to.index() == to) {
                    iter.next();
                    destroyed += 1;
                }
                match &mut err {
                    Some(e) => e.dropped += destroyed,
                    None => err = Some(SendError::dead(env.to, destroyed)),
                }
                continue;
            }
            self.record(&env);
            self.push_lane(env);
            while let Some(next) = iter.peek() {
                if next.to.index() != to {
                    break;
                }
                let next = iter.next().expect("peeked");
                self.record(&next);
                self.push_lane(next);
            }
            self.wake(to);
        }
        match err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn try_recv(&self, place: PlaceId) -> Option<Envelope> {
        let r = place.index();
        let rs = &self.recv[r];
        if rs.closed.load(Ordering::Acquire) {
            return None;
        }
        let _guard = spin_lock(&rs.sweep_guard);
        loop {
            if let Some(env) = self.sweep_one(r) {
                return Some(env);
            }
            if !self.rearm_and_recheck(r) {
                return None;
            }
        }
    }

    fn try_recv_batch(&self, place: PlaceId, max: usize, out: &mut Vec<Envelope>) -> usize {
        let r = place.index();
        let rs = &self.recv[r];
        if rs.closed.load(Ordering::Acquire) {
            return 0;
        }
        let _guard = spin_lock(&rs.sweep_guard);
        let mut total = 0;
        loop {
            total += self.sweep(r, max - total, out);
            if total >= max {
                return total;
            }
            // Every lane observed empty: re-arm the debounce; keep draining
            // if a sender raced the re-arm.
            if !self.rearm_and_recheck(r) {
                return total;
            }
        }
    }

    fn register_waker(&self, place: PlaceId, waker: Waker) {
        self.wakers.write()[place.index()] = Some(waker);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn num_places(&self) -> usize {
        self.places
    }

    fn queue_len(&self, place: PlaceId) -> usize {
        let r = place.index();
        if self.recv[r].closed.load(Ordering::Acquire) {
            return 0;
        }
        match &self.lanes {
            Lanes::Dense(lanes) => (0..self.places)
                .map(|s| lanes[s * self.places + r].len())
                .sum(),
            Lanes::Sparse(rows) => rows[r]
                .inner
                .read()
                .lanes
                .iter()
                .map(|(_, lane)| lane.len())
                .sum(),
        }
    }

    fn kill_place(&self, place: PlaceId) {
        let r = place.index();
        // Order matters: close first, then purge under the sweep guard, so
        // a concurrent send either observed `closed` (and failed) or landed
        // before the purge (and is destroyed with the rest). A straggler
        // that slips a message in after the purge is harmless: every
        // receive path gates on `closed`, so it is never delivered, and it
        // is freed when the transport drops.
        self.recv[r].closed.store(true, Ordering::Release);
        let _guard = spin_lock(&self.recv[r].sweep_guard);
        let mut sink = Vec::new();
        match &self.lanes {
            Lanes::Dense(lanes) => {
                for s in 0..self.places {
                    let lane = &lanes[s * self.places + r];
                    while self.drain_lane(lane, usize::MAX, &mut sink) > 0 {}
                    sink.clear();
                }
            }
            Lanes::Sparse(rows) => {
                let row = rows[r].inner.read();
                for (_, lane) in row.lanes.iter() {
                    while self.drain_lane(lane, usize::MAX, &mut sink) > 0 {}
                    sink.clear();
                }
            }
        }
    }

    fn is_dead(&self, place: PlaceId) -> bool {
        self.recv[place.index()].closed.load(Ordering::Acquire)
    }

    fn dead_places(&self) -> Vec<PlaceId> {
        (0..self.places)
            .filter(|&i| self.recv[i].closed.load(Ordering::Acquire))
            .map(|i| PlaceId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn env(from: u32, to: u32, tag: u64) -> Envelope {
        Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
    }

    #[test]
    fn delivers_point_to_point() {
        let t = LocalTransport::new(3);
        t.send(env(0, 2, 7)).unwrap();
        assert!(t.try_recv(PlaceId(1)).is_none());
        let got = t.try_recv(PlaceId(2)).expect("message for place 2");
        assert_eq!(*got.payload.downcast::<u64>().unwrap(), 7);
        assert!(t.try_recv(PlaceId(2)).is_none());
    }

    #[test]
    fn per_pair_fifo_order() {
        let t = LocalTransport::new(2);
        for i in 0..100u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        for i in 0..100u64 {
            let got = t.try_recv(PlaceId(1)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), i);
        }
    }

    #[test]
    fn per_pair_fifo_through_overflow() {
        // Ring capacity 4: most of the burst lands in the overflow
        // side-queue, and order must survive the ring → overflow → ring
        // transitions.
        let t = LocalTransport::with_ring_capacity(2, 4);
        for i in 0..100u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        assert!(t.stats().total_ring_overflows() > 0, "overflow must engage");
        assert_eq!(t.queue_len(PlaceId(1)), 100);
        for i in 0..100u64 {
            let got = t.try_recv(PlaceId(1)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), i);
        }
        assert!(t.try_recv(PlaceId(1)).is_none());
    }

    #[test]
    fn no_overflow_within_ring_capacity() {
        let t = LocalTransport::new(2);
        for i in 0..DEFAULT_RING_CAPACITY as u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        assert_eq!(t.stats().total_ring_overflows(), 0);
    }

    #[test]
    fn waker_debounced_per_burst() {
        let t = LocalTransport::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        t.register_waker(
            PlaceId(1),
            Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        // A burst of sends with no drain in between fires the waker once.
        t.send(env(0, 1, 0)).unwrap();
        t.send(env(0, 1, 1)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // Draining to empty re-arms the debounce ...
        assert!(t.try_recv(PlaceId(1)).is_some());
        assert!(t.try_recv(PlaceId(1)).is_some());
        assert!(t.try_recv(PlaceId(1)).is_none());
        // ... so the next burst fires it again.
        t.send(env(0, 1, 2)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn waker_may_reenter_transport() {
        // Regression test: the waker used to be invoked while the `wakers`
        // read guard was held, so a waker touching the transport (here:
        // re-registering itself, which takes the write lock) deadlocked.
        let t = Arc::new(LocalTransport::new(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let (t2, h) = (t.clone(), hits.clone());
        t.register_waker(
            PlaceId(1),
            Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
                let h2 = h.clone();
                t2.register_waker(
                    PlaceId(1),
                    Arc::new(move || {
                        h2.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }),
        );
        t.send(env(0, 1, 0)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stats_accumulate() {
        let t = LocalTransport::new(2);
        t.send(env(0, 1, 0)).unwrap();
        assert_eq!(t.stats().class(MsgClass::Task).messages, 1);
        assert_eq!(t.stats().total_envelopes(), 1);
        assert_eq!(t.queue_len(PlaceId(1)), 1);
    }

    #[test]
    fn send_batch_preserves_order_and_counts() {
        let t = LocalTransport::new(3);
        let batch: Vec<Envelope> = (0..10u64).map(|i| env(0, 1 + (i % 2) as u32, i)).collect();
        t.send_batch(batch).unwrap();
        // Per-destination order is send order.
        for want in [0u64, 2, 4, 6, 8] {
            let got = t.try_recv(PlaceId(1)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), want);
        }
        for want in [1u64, 3, 5, 7, 9] {
            let got = t.try_recv(PlaceId(2)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), want);
        }
        assert_eq!(t.stats().total_messages(), 10);
        assert_eq!(t.stats().total_envelopes(), 10);
    }

    #[test]
    fn try_recv_batch_drains_in_order() {
        let t = LocalTransport::new(2);
        for i in 0..10u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(t.try_recv_batch(PlaceId(1), 4, &mut out), 4);
        assert_eq!(t.try_recv_batch(PlaceId(1), 100, &mut out), 6);
        assert_eq!(t.try_recv_batch(PlaceId(1), 100, &mut out), 0);
        for (i, e) in out.into_iter().enumerate() {
            assert_eq!(*e.payload.downcast::<u64>().unwrap(), i as u64);
        }
    }

    #[test]
    fn batch_envelope_counts_once_physically() {
        let t = LocalTransport::new(2);
        let inner: Vec<Envelope> = (0..4u64).map(|i| env(0, 1, i)).collect();
        t.send(Envelope::batch(PlaceId(0), PlaceId(1), inner))
            .unwrap();
        // The transport only counts the physical envelope; logical counts
        // for the inner messages are the coalescer's job.
        assert_eq!(t.stats().total_envelopes(), 1);
        assert_eq!(t.stats().total_messages(), 0);
        let got = t.try_recv(PlaceId(1)).unwrap();
        let envs = got.unbatch().expect("batch");
        assert_eq!(envs.len(), 4);
    }

    #[test]
    fn send_to_dead_place_returns_typed_error() {
        let t = LocalTransport::new(3);
        t.send(env(0, 1, 0)).unwrap();
        t.kill_place(PlaceId(1));
        // Pending traffic is destroyed; the mailbox black-holes.
        assert_eq!(t.queue_len(PlaceId(1)), 0);
        assert!(t.try_recv(PlaceId(1)).is_none());
        let err = t.send(env(0, 1, 1)).unwrap_err();
        assert_eq!(err.error, TransportError::PlaceDead { place: PlaceId(1) });
        assert!(err.retry.is_empty());
        assert_eq!(err.dropped, 1);
        assert!(t.is_dead(PlaceId(1)));
        assert!(!t.is_dead(PlaceId(2)));
        assert_eq!(t.dead_places(), vec![PlaceId(1)]);
        // Other places are unaffected.
        t.send(env(0, 2, 9)).unwrap();
        assert!(t.try_recv(PlaceId(2)).is_some());
    }

    #[test]
    fn send_batch_skips_dead_runs_and_reports() {
        let t = LocalTransport::new(3);
        t.kill_place(PlaceId(1));
        let batch: Vec<Envelope> = (0..6u64).map(|i| env(0, 1 + (i % 2) as u32, i)).collect();
        let err = t.send_batch(batch).unwrap_err();
        assert_eq!(err.error, TransportError::PlaceDead { place: PlaceId(1) });
        assert_eq!(err.dropped, 3);
        assert!(err.retry.is_empty());
        // The live destination still got its run, in order.
        for want in [1u64, 3, 5] {
            let got = t.try_recv(PlaceId(2)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), want);
        }
        // Destroyed envelopes are not recorded in the ledgers.
        assert_eq!(t.stats().total_messages(), 3);
        assert_eq!(t.stats().total_envelopes(), 3);
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let t = Arc::new(LocalTransport::new(2));
        let mut handles = vec![];
        for s in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    t.send(env(0, 1, (s as u64) << 32 | i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut n = 0;
        while t.try_recv(PlaceId(1)).is_some() {
            n += 1;
        }
        assert_eq!(n, 2000);
    }

    #[test]
    fn round_robin_sweep_interleaves_senders() {
        // Three senders, bulk drain: every sender's run arrives FIFO, and
        // the receiver sees all of them however the sweep interleaves.
        let t = LocalTransport::new(4);
        for i in 0..30u64 {
            t.send(env((i % 3) as u32, 3, i)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(t.try_recv_batch(PlaceId(3), usize::MAX, &mut out), 30);
        let mut per_sender: [Vec<u64>; 3] = Default::default();
        for e in out {
            let tag = *e.payload.downcast::<u64>().unwrap();
            per_sender[(tag % 3) as usize].push(tag);
        }
        for (s, tags) in per_sender.iter().enumerate() {
            let want: Vec<u64> = (0..30).filter(|i| i % 3 == s as u64).collect();
            assert_eq!(tags, &want, "sender {s} order broken");
        }
    }

    #[test]
    fn queue_len_counts_ring_and_overflow() {
        let t = LocalTransport::with_ring_capacity(2, 4);
        for i in 0..10u64 {
            t.send(env(0, 1, i)).unwrap();
        }
        assert_eq!(t.queue_len(PlaceId(1)), 10);
        assert!(t.try_recv(PlaceId(1)).is_some());
        assert_eq!(t.queue_len(PlaceId(1)), 9);
    }

    /// Above the dense threshold: the number of places that would cost
    /// `150² = 22,500` lane headers eagerly.
    const SPARSE_PLACES: usize = 150;

    #[test]
    fn dense_mode_accounts_for_the_whole_matrix() {
        let t = LocalTransport::new(4);
        assert_eq!(t.lanes_allocated(), 16);
        t.send(env(0, 1, 0)).unwrap();
        assert_eq!(t.lanes_allocated(), 16, "dense count is fixed at build");
    }

    #[test]
    fn sparse_mode_materializes_lanes_on_first_contact() {
        let t = LocalTransport::new(SPARSE_PLACES);
        assert_eq!(t.lanes_allocated(), 0, "no traffic, no lanes");
        for s in [3u32, 9, 140] {
            t.send(env(s, 7, u64::from(s))).unwrap();
        }
        assert_eq!(t.lanes_allocated(), 3, "one lane per talking pair");
        // Repeat traffic on an existing pair creates nothing.
        t.send(env(3, 7, 99)).unwrap();
        assert_eq!(t.lanes_allocated(), 3);
        // A new pair — even a familiar sender — creates exactly one more.
        t.send(env(3, 8, 1)).unwrap();
        assert_eq!(t.lanes_allocated(), 4);
        let mut got = 0;
        while t.try_recv(PlaceId(7)).is_some() {
            got += 1;
        }
        assert_eq!(got, 4);
    }

    #[test]
    fn sparse_per_pair_fifo_through_overflow() {
        // Tiny rings in sparse mode: order must survive the ring →
        // overflow → ring transitions on a lazily-created lane.
        let t = LocalTransport::with_ring_capacity(SPARSE_PLACES, 4);
        for i in 0..100u64 {
            t.send(env(0, 149, i)).unwrap();
        }
        assert!(t.stats().total_ring_overflows() > 0, "overflow must engage");
        assert_eq!(t.queue_len(PlaceId(149)), 100);
        for i in 0..100u64 {
            let got = t.try_recv(PlaceId(149)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), i);
        }
        assert!(t.try_recv(PlaceId(149)).is_none());
    }

    #[test]
    fn sparse_round_robin_sweep_interleaves_senders() {
        let t = LocalTransport::new(SPARSE_PLACES);
        for i in 0..30u64 {
            t.send(env((i % 3) as u32, 120, i)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(t.try_recv_batch(PlaceId(120), usize::MAX, &mut out), 30);
        let mut per_sender: [Vec<u64>; 3] = Default::default();
        for e in out {
            let tag = *e.payload.downcast::<u64>().unwrap();
            per_sender[(tag % 3) as usize].push(tag);
        }
        for (s, tags) in per_sender.iter().enumerate() {
            let want: Vec<u64> = (0..30).filter(|i| i % 3 == s as u64).collect();
            assert_eq!(tags, &want, "sender {s} order broken");
        }
    }

    #[test]
    fn sparse_waker_fires_for_a_brand_new_lane() {
        // The debounce re-arm must see messages on lanes created *after*
        // the previous drain cycle (the row read-lock in the re-check
        // synchronizes with the creating write).
        let t = LocalTransport::new(SPARSE_PLACES);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        t.register_waker(
            PlaceId(60),
            Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        t.send(env(1, 60, 0)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(t.try_recv(PlaceId(60)).is_some());
        assert!(t.try_recv(PlaceId(60)).is_none()); // re-arms the debounce
        t.send(env(2, 60, 1)).unwrap(); // fresh sender, fresh lane
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert!(t.try_recv(PlaceId(60)).is_some());
    }

    #[test]
    fn sparse_kill_place_purges_lazy_lanes() {
        let t = LocalTransport::new(SPARSE_PLACES);
        t.send(env(0, 33, 0)).unwrap();
        t.send(env(5, 33, 1)).unwrap();
        t.kill_place(PlaceId(33));
        assert_eq!(t.queue_len(PlaceId(33)), 0);
        assert!(t.try_recv(PlaceId(33)).is_none());
        let err = t.send(env(0, 33, 2)).unwrap_err();
        assert_eq!(err.error, TransportError::PlaceDead { place: PlaceId(33) });
        // Unrelated pairs keep working.
        t.send(env(0, 34, 3)).unwrap();
        assert!(t.try_recv(PlaceId(34)).is_some());
    }

    #[test]
    fn sparse_concurrent_first_contacts_race_safely() {
        // Many senders hit the same receiver's row concurrently, all
        // first-contact: every lane must be created exactly once and every
        // message delivered.
        let t = Arc::new(LocalTransport::new(SPARSE_PLACES));
        let mut handles = vec![];
        for s in 0..8u32 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    t.send(env(s, 77, (u64::from(s)) << 32 | i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.lanes_allocated(), 8);
        let mut n = 0;
        while t.try_recv(PlaceId(77)).is_some() {
            n += 1;
        }
        assert_eq!(n, 1600);
    }
}
