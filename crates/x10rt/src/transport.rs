//! The point-to-point transport API and the in-process back-end.
//!
//! X10RT back-ends (PAMI, MPI, sockets) all provide the same primitive: send
//! an active message to a place, with FIFO ordering *per sender/destination
//! pair*. The APGAS layer builds everything else (finish protocols, teams,
//! clocks, load balancing) on top of that primitive — which is why this crate
//! is deliberately tiny.
//!
//! [`LocalTransport`] realizes the API with one unbounded MPMC queue per
//! destination place. `crossbeam_channel` preserves per-sender ordering into a
//! channel, which gives exactly the per-pair FIFO guarantee the finish
//! protocols rely on (see `apgas::finish::default_proto`).

use crate::message::Envelope;
use crate::place::PlaceId;
use crate::stats::NetStats;
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::sync::Arc;

/// A callback invoked when a message arrives for a place, used to unpark its
/// worker thread(s).
pub type Waker = Arc<dyn Fn() + Send + Sync>;

/// Point-to-point transport between places.
///
/// Implementations must deliver messages between any fixed (sender,
/// destination) pair in order; no ordering is guaranteed across pairs (a real
/// network reorders freely across routes — the paper's default finish
/// protocol is designed for exactly this).
pub trait Transport: Send + Sync {
    /// Enqueue a message for delivery. Never blocks.
    fn send(&self, env: Envelope);

    /// Poll for the next message addressed to `place`. Non-blocking.
    fn try_recv(&self, place: PlaceId) -> Option<Envelope>;

    /// Register a waker invoked whenever a message is enqueued for `place`.
    fn register_waker(&self, place: PlaceId, waker: Waker);

    /// Shared statistics counters.
    fn stats(&self) -> &NetStats;

    /// Number of places this transport connects.
    fn num_places(&self) -> usize;
}

struct Mailbox {
    tx: Sender<Envelope>,
    rx: Receiver<Envelope>,
}

/// In-process transport: one unbounded FIFO queue per place.
pub struct LocalTransport {
    mailboxes: Vec<Mailbox>,
    wakers: RwLock<Vec<Option<Waker>>>,
    stats: NetStats,
}

impl LocalTransport {
    /// A transport connecting `places` places.
    pub fn new(places: usize) -> Self {
        assert!(places > 0);
        let mailboxes = (0..places)
            .map(|_| {
                let (tx, rx) = unbounded();
                Mailbox { tx, rx }
            })
            .collect();
        LocalTransport {
            mailboxes,
            wakers: RwLock::new(vec![None; places]),
            stats: NetStats::new(places),
        }
    }

    /// Number of messages currently queued for `place` (diagnostics only).
    pub fn queue_len(&self, place: PlaceId) -> usize {
        self.mailboxes[place.index()].rx.len()
    }
}

impl Transport for LocalTransport {
    fn send(&self, env: Envelope) {
        debug_assert!(env.to.index() < self.mailboxes.len(), "bad destination");
        self.stats
            .record_send(env.from.0, env.to.0, env.class, env.bytes);
        let to = env.to.index();
        // The channel is unbounded: send can only fail if the receiver side
        // was dropped, which only happens at teardown after all workers exit.
        let _ = self.mailboxes[to].tx.send(env);
        if let Some(w) = &self.wakers.read()[to] {
            w();
        }
    }

    fn try_recv(&self, place: PlaceId) -> Option<Envelope> {
        self.mailboxes[place.index()].rx.try_recv().ok()
    }

    fn register_waker(&self, place: PlaceId, waker: Waker) {
        self.wakers.write()[place.index()] = Some(waker);
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn num_places(&self) -> usize {
        self.mailboxes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgClass;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn env(from: u32, to: u32, tag: u64) -> Envelope {
        Envelope::new(
            PlaceId(from),
            PlaceId(to),
            MsgClass::Task,
            8,
            Box::new(tag),
        )
    }

    #[test]
    fn delivers_point_to_point() {
        let t = LocalTransport::new(3);
        t.send(env(0, 2, 7));
        assert!(t.try_recv(PlaceId(1)).is_none());
        let got = t.try_recv(PlaceId(2)).expect("message for place 2");
        assert_eq!(*got.payload.downcast::<u64>().unwrap(), 7);
        assert!(t.try_recv(PlaceId(2)).is_none());
    }

    #[test]
    fn per_pair_fifo_order() {
        let t = LocalTransport::new(2);
        for i in 0..100u64 {
            t.send(env(0, 1, i));
        }
        for i in 0..100u64 {
            let got = t.try_recv(PlaceId(1)).unwrap();
            assert_eq!(*got.payload.downcast::<u64>().unwrap(), i);
        }
    }

    #[test]
    fn waker_fires_on_send() {
        let t = LocalTransport::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        t.register_waker(PlaceId(1), Arc::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        t.send(env(0, 1, 0));
        t.send(env(0, 1, 1));
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn stats_accumulate() {
        let t = LocalTransport::new(2);
        t.send(env(0, 1, 0));
        assert_eq!(t.stats().class(MsgClass::Task).messages, 1);
        assert_eq!(t.queue_len(PlaceId(1)), 1);
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let t = Arc::new(LocalTransport::new(2));
        let mut handles = vec![];
        for s in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    t.send(env(0, 1, (s as u64) << 32 | i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut n = 0;
        while t.try_recv(PlaceId(1)).is_some() {
            n += 1;
        }
        assert_eq!(n, 2000);
    }
}
