//! The congruent memory allocator (§3.3).
//!
//! RDMA and collectives require registered memory whose *effective address*
//! both ends of a transfer can compute. The paper's congruent allocator
//! "when using the same allocation sequence in every place … can be
//! configured for symmetric allocation in order to return the same sequence
//! of addresses everywhere". We reproduce the property that matters: every
//! place's allocator hands out segment ids deterministically (0, 1, 2, …),
//! so a program that performs the same allocations at every place can name
//! the peer's buffer as `(peer, same SegId, offset)` with no handshake.
//! RandomAccess uses this to aim GUPS updates, HPL/FFT use it for
//! `asyncCopy` targets.
//!
//! Large-page backing is modeled by [`crate::segment::SEGMENT_ALIGN`]
//! alignment; allocation is outside any GC's control by construction (raw
//! segments), mirroring the paper's design where congruent arrays behave
//! like ordinary arrays *except* for supporting extra communication
//! primitives.

use crate::rdma::RemoteAddr;
use crate::segment::{SegId, Segment, SegmentTable};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Types that may live in a congruent (RDMA-able) array: plain-old-data with
/// no padding-sensitive invariants and no drop glue.
///
/// # Safety
/// Implementors must be valid for every bit pattern (the segment is zero
/// initialized and may be overwritten by raw byte copies).
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Per-place deterministic segment-id allocator over a shared
/// [`SegmentTable`].
pub struct CongruentAllocator {
    table: Arc<SegmentTable>,
    next: Vec<AtomicU64>,
}

impl CongruentAllocator {
    /// An allocator for `places` places registering into `table`.
    pub fn new(places: usize, table: Arc<SegmentTable>) -> Self {
        CongruentAllocator {
            table,
            next: (0..places).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The shared segment table (RDMA resolves through it).
    pub fn table(&self) -> &Arc<SegmentTable> {
        &self.table
    }

    /// Allocate a zeroed congruent array of `len` elements at `place`.
    ///
    /// The returned array's [`SegId`] depends only on how many congruent
    /// allocations `place` has performed before — the symmetric-allocation
    /// property.
    pub fn alloc<T: Pod>(&self, place: u32, len: usize) -> CongruentArray<T> {
        assert!(len > 0, "congruent arrays cannot be empty");
        let id = SegId(self.next[place as usize].fetch_add(1, Ordering::Relaxed));
        let seg = Arc::new(Segment::alloc(len * std::mem::size_of::<T>()));
        self.table.register(place, id, seg.clone());
        CongruentArray {
            place,
            id,
            len,
            seg,
            table: self.table.clone(),
            _marker: PhantomData,
        }
    }

    /// How many segments `place` has allocated so far.
    pub fn allocated_at(&self, place: u32) -> u64 {
        self.next[place as usize].load(Ordering::Relaxed)
    }
}

/// A typed, registered, RDMA-able array owned by one place.
///
/// Dropping the array unregisters the segment (in-flight RDMA holding the
/// `Arc<Segment>` keeps the memory alive until it finishes).
pub struct CongruentArray<T: Pod> {
    place: u32,
    id: SegId,
    len: usize,
    seg: Arc<Segment>,
    table: Arc<SegmentTable>,
    _marker: PhantomData<T>,
}

impl<T: Pod> CongruentArray<T> {
    /// Owning place.
    #[inline]
    pub fn place(&self) -> u32 {
        self.place
    }

    /// Segment id — identical across places for identical allocation
    /// sequences.
    #[inline]
    pub fn id(&self) -> SegId {
        self.id
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The backing segment.
    #[inline]
    pub fn segment(&self) -> &Arc<Segment> {
        &self.seg
    }

    /// Global address of element `i` *at this place*.
    #[inline]
    pub fn addr_of(&self, i: usize) -> RemoteAddr {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        RemoteAddr::new(self.place, self.id, i * std::mem::size_of::<T>())
    }

    /// Global address of element `i` of the *congruent peer array* at
    /// another place (same allocation sequence assumed — that is the
    /// congruence contract).
    #[inline]
    pub fn peer_addr_of(&self, peer: u32, i: usize) -> RemoteAddr {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        RemoteAddr::new(peer, self.id, i * std::mem::size_of::<T>())
    }

    /// Read-only view of the elements.
    ///
    /// RDMA discipline: the caller's protocol must ensure no concurrent
    /// remote *write* overlaps this view (phases separated by `finish` or a
    /// barrier), exactly as on real RDMA hardware.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: segment length is >= len * size_of::<T>(), alignment is
        // 64 KiB >= align_of::<T>() for Pod types; Pod admits any bits.
        unsafe { std::slice::from_raw_parts(self.seg.as_ptr() as *const T, self.len) }
    }

    /// Mutable view of the elements (same RDMA discipline as
    /// [`Self::as_slice`]).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as above; &mut self prevents aliasing through *this*
        // handle, remote access is governed by the RDMA discipline.
        unsafe { std::slice::from_raw_parts_mut(self.seg.as_ptr() as *mut T, self.len) }
    }
}

impl<T: Pod> Drop for CongruentArray<T> {
    fn drop(&mut self) {
        self.table.unregister(self.place, self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdma;

    fn alloc2() -> (CongruentAllocator, Arc<SegmentTable>) {
        let table = Arc::new(SegmentTable::new());
        (CongruentAllocator::new(2, table.clone()), table)
    }

    #[test]
    fn symmetric_ids_across_places() {
        let (a, _) = alloc2();
        let x0 = a.alloc::<u64>(0, 16);
        let y0 = a.alloc::<f64>(0, 8);
        let x1 = a.alloc::<u64>(1, 16);
        let y1 = a.alloc::<f64>(1, 8);
        assert_eq!(x0.id(), x1.id());
        assert_eq!(y0.id(), y1.id());
        assert_ne!(x0.id(), y0.id());
        assert_eq!(a.allocated_at(0), 2);
    }

    #[test]
    fn typed_views_roundtrip() {
        let (a, _) = alloc2();
        let mut arr = a.alloc::<f64>(0, 4);
        arr.as_mut_slice()[2] = 2.5;
        assert_eq!(arr.as_slice(), &[0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    fn rdma_into_peer_congruent_array() {
        let (a, table) = alloc2();
        let src = a.alloc::<u64>(0, 4);
        let mut dst = a.alloc::<u64>(1, 4);
        // Place 0 names place 1's buffer via its own handle (congruence).
        let addr = src.peer_addr_of(1, 1);
        rdma::put(&table, addr, &42u64.to_ne_bytes());
        assert_eq!(dst.as_mut_slice()[1], 42);
    }

    #[test]
    fn drop_unregisters() {
        let (a, table) = alloc2();
        let arr = a.alloc::<u32>(0, 4);
        let id = arr.id();
        assert!(table.lookup(0, id).is_some());
        drop(arr);
        assert!(table.lookup(0, id).is_none());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn addr_of_bounds_checked() {
        let (a, _) = alloc2();
        let arr = a.alloc::<u64>(0, 4);
        arr.addr_of(4);
    }
}
