//! Bounded lock-free SPSC rings — the mailbox fast path.
//!
//! [`SpscRing`] is a Lamport single-producer/single-consumer ring over a
//! power-of-two slot array, with the two classic refinements that make it
//! cheap at message-storm rates:
//!
//! * **Cached opposite indices.** The producer keeps a relaxed snapshot of
//!   the consumer's `head` and only re-reads the shared index when the
//!   snapshot says the ring *might* be full (and symmetrically for the
//!   consumer's snapshot of `tail`). In steady state a push is one relaxed
//!   load, one slot write and one release store — no read-modify-write, no
//!   shared-line ping-pong beyond the slot itself.
//! * **Lazy slot allocation.** The slot array is allocated on first push
//!   (via [`std::sync::OnceLock`]), so an all-pairs lane matrix over `P`
//!   places costs `O(P²)` small headers but only `O(active pairs)` buffers.
//!
//! # Multi-producer reality
//!
//! The transport guarantees FIFO per (sender *place*, destination) pair, but
//! a place may run several worker threads (`workers_per_place > 1`) and
//! tests hammer one pair from many threads. Rather than push that burden to
//! every caller, each side of the ring carries a tiny spin guard (an
//! `AtomicBool` CAS — *not* a mutex: no syscall, no parking, no priority
//! inheritance machinery). Uncontended — the overwhelmingly common case,
//! one worker per place — the guard costs one uncontended CAS; contended
//! producers spin, which preserves each thread's program order instead of
//! reordering its messages around a detour. The guards make the safe API
//! genuinely safe while keeping the SPSC fast path intact.
//!
//! # Memory ordering
//!
//! Publication is the textbook pair: the producer writes the slot, then
//! stores `tail` with `Release`; the consumer loads `tail` with `Acquire`
//! before reading the slot. The *wakeup* handshake layered on top is the
//! transport's job (an `AcqRel` swap chain on a per-destination flag — see
//! `transport.rs`, which owns that protocol); the ring itself only promises
//! FIFO and visibility.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default per-(sender, receiver) ring capacity, in envelopes. Power of two.
/// Sized so a full coalescer quantum (64-message batches, 256-envelope
/// drains) fits without touching the overflow side-queue.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// One slot of the ring. The atomics around it (tail/head) decide whether
/// the `MaybeUninit` is live.
struct Slot<T>(UnsafeCell<MaybeUninit<T>>);

/// Producer-owned hot state, on its own cache line so producer stores never
/// invalidate the consumer's line (and vice versa).
#[repr(align(64))]
struct ProdSide {
    /// Next slot to write. Written only by the producer (under its guard).
    tail: AtomicUsize,
    /// Producer's snapshot of `head`; refreshed only when the ring looks
    /// full. Relaxed — it is a private cache, never a synchronization edge.
    cached_head: AtomicUsize,
    /// Producer spin guard (see module docs).
    guard: AtomicBool,
}

/// Consumer-owned hot state, cache-line isolated like [`ProdSide`].
#[repr(align(64))]
struct ConsSide {
    /// Next slot to read. Written only by the consumer (under its guard).
    head: AtomicUsize,
    /// Consumer's snapshot of `tail`; refreshed only when the ring looks
    /// empty.
    cached_tail: AtomicUsize,
    /// Consumer spin guard.
    guard: AtomicBool,
}

/// A bounded lock-free single-producer/single-consumer ring (with spin
/// guards degrading gracefully under accidental multi-producer use — see
/// the module docs). `push` fails (returning the value) when full; it never
/// blocks and never drops.
pub struct SpscRing<T> {
    prod: ProdSide,
    cons: ConsSide,
    /// Slot array, allocated on first push.
    slots: OnceLock<Box<[Slot<T>]>>,
    /// Capacity (power of two); `mask == capacity - 1`.
    mask: usize,
}

// SAFETY: the slot array is only accessed through the head/tail protocol
// (each index is advanced only after its side's read/write completes, with
// Release/Acquire pairing), and each side is serialized by its spin guard.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

/// Spin until `guard` is acquired. Returns a token whose drop releases it.
/// Shared with the transport, which uses the same primitive for its
/// per-destination sweep guard.
#[inline]
pub(crate) fn spin_lock(guard: &AtomicBool) -> SpinToken<'_> {
    while guard
        .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        std::hint::spin_loop();
    }
    SpinToken(guard)
}

pub(crate) struct SpinToken<'a>(&'a AtomicBool);

impl Drop for SpinToken<'_> {
    #[inline]
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

impl<T> SpscRing<T> {
    /// A ring holding up to `capacity` items (rounded up to a power of two,
    /// minimum 2). The slot array is not allocated until the first push.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        SpscRing {
            prod: ProdSide {
                tail: AtomicUsize::new(0),
                cached_head: AtomicUsize::new(0),
                guard: AtomicBool::new(false),
            },
            cons: ConsSide {
                head: AtomicUsize::new(0),
                cached_tail: AtomicUsize::new(0),
                guard: AtomicBool::new(false),
            },
            slots: OnceLock::new(),
            mask: cap - 1,
        }
    }

    /// Ring capacity in items.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Items currently in the ring (approximate under concurrency).
    #[inline]
    pub fn len(&self) -> usize {
        let tail = self.prod.tail.load(Ordering::Acquire);
        let head = self.cons.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when the ring holds no items (approximate under concurrency).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slots(&self) -> &[Slot<T>] {
        self.slots.get_or_init(|| {
            (0..self.mask + 1)
                .map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit())))
                .collect()
        })
    }

    /// Push one item. `Err(value)` means the ring is full — the caller
    /// routes the item to its overflow path; nothing blocks, nothing drops.
    #[inline]
    pub fn push(&self, value: T) -> Result<(), T> {
        let _guard = spin_lock(&self.prod.guard);
        let tail = self.prod.tail.load(Ordering::Relaxed);
        let mut head = self.prod.cached_head.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) >= self.capacity() {
            head = self.cons.head.load(Ordering::Acquire);
            self.prod.cached_head.store(head, Ordering::Relaxed);
            if tail.wrapping_sub(head) >= self.capacity() {
                return Err(value);
            }
        }
        let slot = &self.slots()[tail & self.mask];
        // SAFETY: `tail - head < capacity`, so this slot is not live; the
        // producer guard serializes writers; the consumer will only read it
        // after the Release store below.
        unsafe { (*slot.0.get()).write(value) };
        self.prod
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Pop one item, or `None` when empty.
    #[inline]
    pub fn pop(&self) -> Option<T> {
        let _guard = spin_lock(&self.cons.guard);
        // SAFETY: the consumer guard is held.
        unsafe { self.pop_exclusive() }
    }

    /// Pop up to `max` items into `out`, acquiring the consumer guard once.
    /// Returns how many were appended.
    pub fn pop_many(&self, max: usize, out: &mut Vec<T>) -> usize {
        if max == 0 {
            return 0;
        }
        let _guard = spin_lock(&self.cons.guard);
        let mut n = 0;
        // SAFETY: the consumer guard is held for the whole drain.
        while n < max {
            match unsafe { self.pop_exclusive() } {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Pop with the consumer side exclusively owned.
    ///
    /// # Safety
    /// The caller must hold the consumer guard (or otherwise be the only
    /// consumer, e.g. in `Drop`).
    #[inline]
    unsafe fn pop_exclusive(&self) -> Option<T> {
        let head = self.cons.head.load(Ordering::Relaxed);
        let mut tail = self.cons.cached_tail.load(Ordering::Relaxed);
        if tail == head {
            tail = self.prod.tail.load(Ordering::Acquire);
            self.cons.cached_tail.store(tail, Ordering::Relaxed);
            if tail == head {
                return None;
            }
        }
        let slots = self.slots.get()?; // never pushed → empty
        let slot = &slots[head & self.mask];
        // SAFETY: `head < tail`, so the slot was written and published by
        // the producer's Release store, which our Acquire load of `tail`
        // synchronized with; advancing `head` below releases it back.
        let value = unsafe { (*slot.0.get()).assume_init_read() };
        self.cons
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent access — drain and drop what remains.
        // SAFETY: exclusive access makes us the sole consumer.
        while unsafe { self.pop_exclusive() }.is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_across_wraparound() {
        let r = SpscRing::new(8);
        let mut next_pop = 0u64;
        let mut next_push = 0u64;
        // Push/pop in a pattern that wraps the ring many times.
        for lap in 0..50 {
            let burst = 1 + (lap % 8);
            for _ in 0..burst {
                r.push(next_push).unwrap();
                next_push += 1;
            }
            for _ in 0..burst {
                assert_eq!(r.pop(), Some(next_pop));
                next_pop += 1;
            }
        }
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn full_ring_rejects_without_losing_the_value() {
        let r = SpscRing::new(4);
        for i in 0..4 {
            r.push(i).unwrap();
        }
        assert_eq!(r.push(99), Err(99));
        assert_eq!(r.len(), 4);
        assert_eq!(r.pop(), Some(0));
        r.push(99).unwrap(); // space reclaimed
        for want in [1, 2, 3, 99] {
            assert_eq!(r.pop(), Some(want));
        }
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(SpscRing::<u8>::new(1).capacity(), 2);
        assert_eq!(SpscRing::<u8>::new(5).capacity(), 8);
        assert_eq!(SpscRing::<u8>::new(256).capacity(), 256);
    }

    #[test]
    fn pop_many_drains_in_order() {
        let r = SpscRing::new(16);
        for i in 0..10 {
            r.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(r.pop_many(4, &mut out), 4);
        assert_eq!(r.pop_many(100, &mut out), 6);
        assert_eq!(r.pop_many(100, &mut out), 0);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        let item = Arc::new(());
        let r = SpscRing::new(8);
        for _ in 0..5 {
            r.push(item.clone()).unwrap();
        }
        assert_eq!(Arc::strong_count(&item), 6);
        drop(r);
        assert_eq!(Arc::strong_count(&item), 1);
    }

    #[test]
    fn concurrent_producer_consumer_conserves_and_orders() {
        let r = Arc::new(SpscRing::new(32));
        const N: u64 = 100_000;
        let p = {
            let r = r.clone();
            std::thread::spawn(move || {
                let mut backoff = 0u32;
                for i in 0..N {
                    let mut v = i;
                    while let Err(back) = r.push(v) {
                        v = back;
                        backoff = backoff.wrapping_add(1);
                        if backoff.is_multiple_of(64) {
                            std::thread::yield_now();
                        }
                    }
                }
            })
        };
        let mut want = 0u64;
        while want < N {
            if let Some(v) = r.pop() {
                assert_eq!(v, want);
                want += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        p.join().unwrap();
        assert!(r.is_empty());
    }
}
