//! Registered memory segments.
//!
//! To use RDMA or hardware collectives, an application must *register* the
//! memory segments eligible for transfer with the network hardware, and the
//! initiating task must know the effective address of both ends (§3.3). We
//! model registration with a global [`SegmentTable`]: a segment registered by
//! any place is addressable by every place as `(place, SegId, offset)`, and
//! RDMA operations (see [`crate::rdma`]) act on it directly from the
//! initiator's thread — the destination CPU is never involved, exactly like
//! the Torrent.
//!
//! Safety model: a [`Segment`] is raw, page-aligned memory. Plain loads and
//! stores through it are bounds-checked but *not* synchronized — like real
//! RDMA, the application protocol (phases separated by `finish`/barriers)
//! must keep initiator transfers and local access from racing. Word-atomic
//! access is available via [`Segment::atomic_u64`], which is what the GUPS
//! path uses.

use parking_lot::RwLock;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Identifier of a registered segment, unique *per place*.
///
/// The congruent allocator guarantees that the same allocation sequence at
/// every place yields the same sequence of `SegId`s — the symmetric-address
/// property the paper's congruent memory allocator provides.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SegId(pub u64);

/// Alignment used for all registered segments. 64 KiB models large-page
/// backing: the paper notes the Torrent is very sensitive to TLB misses and
/// backs registered segments with large pages.
pub const SEGMENT_ALIGN: usize = 64 * 1024;

/// A registered, page-aligned, zero-initialized memory segment.
pub struct Segment {
    ptr: *mut u8,
    len: usize,
    layout: Layout,
}

// SAFETY: the segment is plain memory; all access goes through raw pointers
// with the RDMA race discipline documented at module level, or through
// `AtomicU64` views for the atomic paths.
unsafe impl Send for Segment {}
unsafe impl Sync for Segment {}

impl Segment {
    /// Allocate a zeroed segment of `len` bytes (rounded up to 8).
    ///
    /// # Panics
    /// Panics on `len == 0` or allocation failure.
    pub fn alloc(len: usize) -> Self {
        assert!(len > 0, "cannot register an empty segment");
        let len = len.next_multiple_of(8);
        let layout = Layout::from_size_align(len, SEGMENT_ALIGN).expect("segment layout");
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "segment allocation failed");
        Segment { ptr, len, layout }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false (segments cannot be empty).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Base pointer of the segment.
    #[inline]
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Read `dst.len()` bytes starting at `offset`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn read(&self, offset: usize, dst: &mut [u8]) {
        assert!(
            offset.checked_add(dst.len()).is_some_and(|e| e <= self.len),
            "segment read out of bounds: {}+{} > {}",
            offset,
            dst.len(),
            self.len
        );
        // SAFETY: bounds checked above; races are the caller's protocol
        // responsibility (RDMA discipline).
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(offset), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Write `src` starting at `offset`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn write(&self, offset: usize, src: &[u8]) {
        assert!(
            offset.checked_add(src.len()).is_some_and(|e| e <= self.len),
            "segment write out of bounds: {}+{} > {}",
            offset,
            src.len(),
            self.len
        );
        // SAFETY: bounds checked above; RDMA race discipline.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(offset), src.len());
        }
    }

    /// Atomic view of the 64-bit word at word index `idx` (byte offset
    /// `8*idx`). This is the GUPS access path.
    ///
    /// # Panics
    /// Panics if the word is out of bounds.
    #[inline]
    pub fn atomic_u64(&self, idx: usize) -> &AtomicU64 {
        let off = idx * 8;
        assert!(off + 8 <= self.len, "atomic word {idx} out of bounds");
        // SAFETY: in-bounds, 8-aligned (segment base is 64 KiB aligned and
        // lengths are multiples of 8); AtomicU64 has the same layout as u64.
        unsafe { &*(self.ptr.add(off) as *const AtomicU64) }
    }

    /// Number of 64-bit words in the segment.
    #[inline]
    pub fn words(&self) -> usize {
        self.len / 8
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        // SAFETY: ptr/layout came from alloc_zeroed with this layout.
        unsafe { dealloc(self.ptr, self.layout) }
    }
}

/// Global registry of segments, keyed by (place, segment id).
///
/// Shared by all places of a runtime; the RDMA functions resolve remote
/// addresses through it.
#[derive(Default)]
pub struct SegmentTable {
    map: RwLock<HashMap<(u32, SegId), Arc<Segment>>>,
}

impl SegmentTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `seg` as `(place, id)`.
    ///
    /// # Panics
    /// Panics if the key is already registered (segment ids are never reused).
    pub fn register(&self, place: u32, id: SegId, seg: Arc<Segment>) {
        let prev = self.map.write().insert((place, id), seg);
        assert!(
            prev.is_none(),
            "segment ({place}, {id:?}) already registered"
        );
    }

    /// Remove a registration (e.g. when the owning array is dropped).
    pub fn unregister(&self, place: u32, id: SegId) {
        self.map.write().remove(&(place, id));
    }

    /// Resolve `(place, id)`, if registered.
    pub fn lookup(&self, place: u32, id: SegId) -> Option<Arc<Segment>> {
        self.map.read().get(&(place, id)).cloned()
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn segment_zeroed_and_rw() {
        let s = Segment::alloc(100);
        assert_eq!(s.len(), 104); // rounded to 8
        let mut buf = [1u8; 16];
        s.read(0, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        s.write(8, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        s.read(8, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn segment_alignment_supports_atomics() {
        let s = Segment::alloc(64);
        assert_eq!(s.as_ptr() as usize % SEGMENT_ALIGN, 0);
        s.atomic_u64(3).store(0xdead_beef, Ordering::SeqCst);
        assert_eq!(s.atomic_u64(3).load(Ordering::SeqCst), 0xdead_beef);
        let mut b = [0u8; 8];
        s.read(24, &mut b);
        assert_eq!(u64::from_ne_bytes(b), 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let s = Segment::alloc(8);
        let mut b = [0u8; 16];
        s.read(0, &mut b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_overflow_offset_panics() {
        let s = Segment::alloc(8);
        s.write(usize::MAX, &[1]);
    }

    #[test]
    fn table_register_lookup_unregister() {
        let t = SegmentTable::new();
        let s = Arc::new(Segment::alloc(8));
        t.register(2, SegId(5), s.clone());
        assert!(t.lookup(2, SegId(5)).is_some());
        assert!(t.lookup(1, SegId(5)).is_none());
        assert_eq!(t.len(), 1);
        t.unregister(2, SegId(5));
        assert!(t.lookup(2, SegId(5)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let t = SegmentTable::new();
        t.register(0, SegId(1), Arc::new(Segment::alloc(8)));
        t.register(0, SegId(1), Arc::new(Segment::alloc(8)));
    }
}
