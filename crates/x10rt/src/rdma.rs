//! RDMA emulation: one-sided puts/gets and the Torrent "GUPS" remote atomic
//! update.
//!
//! RDMA hardware "enables the transfer of segments of memory from one machine
//! to another without local copies and without the involvement of the CPU or
//! operating system" of the target (§3.3). We model that by performing the
//! copy *from the initiator's thread* directly into the registered remote
//! segment: the destination worker never schedules a task for the transfer.
//! Completion is reported to the caller (the APGAS layer wires it into the
//! enclosing `finish`, mirroring `Array.asyncCopy` being "treated exactly as
//! if it were an async").
//!
//! The Torrent's GUPS feature — "atomic remote memory updates (e.g., XOR a
//! memory location with an argument data word)" — is modeled by
//! [`fetch_xor_u64`]/[`fetch_add_u64`] on the remote segment's atomic view.

use crate::segment::{SegId, SegmentTable};

/// A global address: a word/byte offset within a registered segment of a
/// place. This is what the congruent allocator lets every place compute
/// without communication.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RemoteAddr {
    /// Owning place.
    pub place: u32,
    /// Registered segment at that place.
    pub seg: SegId,
    /// Byte offset within the segment.
    pub offset: usize,
}

impl RemoteAddr {
    /// Address of byte `offset` in segment `seg` of `place`.
    pub fn new(place: u32, seg: SegId, offset: usize) -> Self {
        RemoteAddr { place, seg, offset }
    }
}

/// One-sided put: copy `src` into the remote segment at `dst`.
///
/// Returns the number of bytes transferred.
///
/// # Panics
/// Panics if the destination segment is not registered or the range is out
/// of bounds — both are programming errors a real NIC would surface as a
/// fatal transport error.
pub fn put(table: &SegmentTable, dst: RemoteAddr, src: &[u8]) -> usize {
    let seg = table.lookup(dst.place, dst.seg).unwrap_or_else(|| {
        panic!(
            "put: unregistered segment {:?} at place {}",
            dst.seg, dst.place
        )
    });
    seg.write(dst.offset, src);
    src.len()
}

/// One-sided get: copy from the remote segment at `src` into `dst`.
///
/// Returns the number of bytes transferred.
///
/// # Panics
/// Panics if the source segment is not registered or the range is out of
/// bounds.
pub fn get(table: &SegmentTable, src: RemoteAddr, dst: &mut [u8]) -> usize {
    let seg = table.lookup(src.place, src.seg).unwrap_or_else(|| {
        panic!(
            "get: unregistered segment {:?} at place {}",
            src.seg, src.place
        )
    });
    seg.read(src.offset, dst);
    dst.len()
}

/// GUPS: atomically XOR the 64-bit word at word-index `word` of the remote
/// segment with `value`. Returns the previous value.
///
/// # Panics
/// Panics on unregistered segment or out-of-bounds word.
pub fn fetch_xor_u64(table: &SegmentTable, place: u32, seg: SegId, word: usize, value: u64) -> u64 {
    let s = table
        .lookup(place, seg)
        .unwrap_or_else(|| panic!("xor: unregistered segment {seg:?} at place {place}"));
    s.atomic_u64(word)
        .fetch_xor(value, std::sync::atomic::Ordering::Relaxed)
}

/// Remote atomic add on a 64-bit word (useful for counters/histograms).
///
/// # Panics
/// Panics on unregistered segment or out-of-bounds word.
pub fn fetch_add_u64(table: &SegmentTable, place: u32, seg: SegId, word: usize, value: u64) -> u64 {
    let s = table
        .lookup(place, seg)
        .unwrap_or_else(|| panic!("add: unregistered segment {seg:?} at place {place}"));
    s.atomic_u64(word)
        .fetch_add(value, std::sync::atomic::Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;
    use std::sync::Arc;

    fn table_with(place: u32, id: u64, bytes: usize) -> SegmentTable {
        let t = SegmentTable::new();
        t.register(place, SegId(id), Arc::new(Segment::alloc(bytes)));
        t
    }

    #[test]
    fn put_then_get_roundtrip() {
        let t = table_with(1, 0, 64);
        let addr = RemoteAddr::new(1, SegId(0), 16);
        assert_eq!(put(&t, addr, &[9, 8, 7]), 3);
        let mut out = [0u8; 3];
        assert_eq!(get(&t, addr, &mut out), 3);
        assert_eq!(out, [9, 8, 7]);
    }

    #[test]
    fn xor_is_atomic_and_returns_previous() {
        let t = table_with(0, 3, 32);
        assert_eq!(fetch_xor_u64(&t, 0, SegId(3), 1, 0xff), 0);
        assert_eq!(fetch_xor_u64(&t, 0, SegId(3), 1, 0x0f), 0xff);
        let mut b = [0u8; 8];
        get(&t, RemoteAddr::new(0, SegId(3), 8), &mut b);
        assert_eq!(u64::from_ne_bytes(b), 0xf0);
    }

    #[test]
    fn add_accumulates() {
        let t = table_with(0, 0, 8);
        fetch_add_u64(&t, 0, SegId(0), 0, 5);
        assert_eq!(fetch_add_u64(&t, 0, SegId(0), 0, 2), 5);
    }

    #[test]
    #[should_panic(expected = "unregistered segment")]
    fn put_to_unregistered_panics() {
        let t = SegmentTable::new();
        put(&t, RemoteAddr::new(0, SegId(0), 0), &[1]);
    }

    #[test]
    fn concurrent_xor_from_many_threads() {
        let t = Arc::new(table_with(0, 0, 8));
        let mut hs = vec![];
        for _ in 0..4 {
            let t = t.clone();
            hs.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    fetch_xor_u64(&t, 0, SegId(0), 0, 1 << (i % 64));
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        // 4000 xors of repeating masks: each bit toggled a multiple-of-4
        // number of times in total... 1000 iterations toggle bits 0..63 with
        // counts 16 (bits 0..39 get 16, bits 40..63 get 15)? Rather than
        // recompute, assert determinism by replaying sequentially.
        let mut expect = 0u64;
        for _ in 0..4 {
            for i in 0..1000u64 {
                expect ^= 1 << (i % 64);
            }
        }
        let mut b = [0u8; 8];
        get(&t, RemoteAddr::new(0, SegId(0), 0), &mut b);
        assert_eq!(u64::from_ne_bytes(b), expect);
    }
}
