//! TCP socket back-end: places in separate OS processes.
//!
//! The paper's X10RT ships a sockets back-end alongside PAMI and MPI; this
//! module is that back-end for this reproduction. Each *process* hosts a
//! contiguous range of places and holds one TCP connection per peer process.
//! Envelopes whose destination lives in another process are serialized with
//! the [`crate::codec`] wire format into length-prefixed frames (one frame
//! per envelope; a coalescer batch envelope maps to one frame carrying all
//! its messages — the batch stays the wire unit, exactly as it is
//! in-process) and written by a per-peer writer thread; a per-peer reader
//! thread decodes incoming frames and delivers the rebuilt envelopes into an
//! inner [`LocalTransport`], which provides the mailbox queues, wakers,
//! statistics and kill support. Intra-process traffic bypasses the sockets
//! and goes straight to the inner transport — the local fast path survives.
//!
//! # Connection establishment
//!
//! Every process binds a listener; process `i` dials every process `j > i`
//! (so the highest-numbered process only accepts, and process 0 only
//! dials). The dialer opens with a [`codec::Handshake`] carrying its
//! protocol version, process id, place range and total place count; the
//! accepter validates all four and replies with its own handshake — or with
//! a [`codec::encode_handshake_reject`] frame followed by a close, which the
//! dialer surfaces as [`TcpError::VersionMismatch`]. Dialing retries with
//! backoff until [`TcpConfig::connect_timeout`], covering peer-startup
//! races.
//!
//! # Self-loop mode
//!
//! [`TcpTransport::self_loop`] hosts *all* places in one process connected
//! to itself over a real loopback socket: every send is serialized, framed,
//! written to the kernel, read back and decoded. This is the configuration
//! the `--transport tcp` flag of the bench/chaos bins uses — single-process
//! determinism and fault injection compose unchanged, while the entire codec
//! and framing path is exercised for real. Non-serializable payload parts
//! (closure bodies in [`codec::WireMsg::inline`]) are parked in an
//! in-process *stash* keyed by a `u64` carried in the argument bytes
//! ([`codec::FLAG_STASH`]); that is legal only because sender and receiver
//! share an address space — a cross-process send of such a payload fails
//! with a typed [`codec::EncodeError::NotSerializable`].
//!
//! # Accounting
//!
//! Statistics are recorded at *delivery* (the inner transport's `send`), so
//! a process's ledgers describe the traffic its places actually saw. In
//! self-loop mode that means every message is counted exactly once, same as
//! `LocalTransport`; in multi-process mode each process counts the traffic
//! that entered it.

use crate::codec::{self, DecodeError, EncodeError, HandlerId, Handshake, WireMsg};
use crate::fault::FaultMarker;
use crate::message::{Envelope, Payload};
use crate::place::PlaceId;
use crate::stats::NetStats;
use crate::transport::{LocalTransport, SendError, Transport, Waker};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hard upper bound on an incoming frame's declared length — a corrupt or
/// adversarial length prefix fails decoding instead of attempting a
/// multi-gigabyte allocation (PROTOCOL.md §3).
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// One process of a multi-process launch: where to reach it and which
/// places it hosts.
#[derive(Clone, Debug)]
pub struct ProcSpec {
    /// `host:port` the process listens on. Only consulted for processes the
    /// local one dials (`index > me`); pass an empty string otherwise.
    pub addr: String,
    /// First place hosted by the process.
    pub place_start: u32,
    /// Number of places hosted by the process.
    pub place_count: u32,
}

/// Configuration of a [`TcpTransport`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// All processes of the launch, in process-id order. Place ranges must
    /// be contiguous, disjoint, and cover `0..total_places`.
    pub procs: Vec<ProcSpec>,
    /// Which entry of `procs` is this process.
    pub me: usize,
    /// Protocol version to declare in handshakes. Defaults to
    /// [`codec::PROTO_VERSION`]; tests override it to exercise the
    /// handshake-rejection path.
    pub version: u16,
    /// How long to keep re-dialing an unreachable peer before giving up.
    pub connect_timeout: Duration,
}

impl TcpConfig {
    /// A configuration for process `me` of `procs`, with defaults.
    pub fn new(procs: Vec<ProcSpec>, me: usize) -> Self {
        TcpConfig {
            procs,
            me,
            version: codec::PROTO_VERSION,
            connect_timeout: Duration::from_secs(15),
        }
    }

    /// Override the declared protocol version (builder style; test hook for
    /// the handshake-rejection path).
    pub fn version(mut self, v: u16) -> Self {
        self.version = v;
        self
    }

    fn total_places(&self) -> usize {
        self.procs.iter().map(|p| p.place_count as usize).sum()
    }
}

/// Typed failure establishing or operating a [`TcpTransport`].
#[derive(Debug)]
pub enum TcpError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The peer speaks a different protocol version (its handshake was
    /// rejected, or it rejected ours).
    VersionMismatch {
        /// The version this process declared.
        ours: u16,
        /// The version the peer declared.
        theirs: u16,
    },
    /// The peer's handshake bytes did not decode.
    BadHandshake(DecodeError),
    /// The peer's handshake decoded but contradicts the launch
    /// configuration (wrong total place count, unexpected place range or
    /// process id).
    PeerMismatch(String),
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "tcp transport i/o error: {e}"),
            TcpError::VersionMismatch { ours, theirs } => write!(
                f,
                "handshake rejected: protocol version mismatch (ours {ours}, peer {theirs})"
            ),
            TcpError::BadHandshake(e) => write!(f, "malformed handshake: {e}"),
            TcpError::PeerMismatch(s) => write!(f, "peer configuration mismatch: {s}"),
        }
    }
}

impl std::error::Error for TcpError {}

impl From<std::io::Error> for TcpError {
    fn from(e: std::io::Error) -> Self {
        TcpError::Io(e)
    }
}

/// Outgoing bytes for one peer connection: an unbounded frame queue drained
/// by a dedicated writer thread, so `Transport::send` never blocks on the
/// socket (the transport contract) — backpressure shows up as queue memory,
/// as it does for the in-process overflow side-queues.
struct OutQueue {
    frames: Mutex<VecDeque<Vec<u8>>>,
    ready: Condvar,
    closed: AtomicBool,
}

impl OutQueue {
    fn new() -> Arc<Self> {
        Arc::new(OutQueue {
            frames: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
        })
    }

    fn push(&self, frame: Vec<u8>) {
        let mut q = self.frames.lock();
        q.push_back(frame);
        self.ready.notify_one();
    }

    /// Block until a frame is available or the queue closes.
    fn pop(&self) -> Option<Vec<u8>> {
        let mut q = self.frames.lock();
        loop {
            if let Some(f) = q.pop_front() {
                return Some(f);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            self.ready.wait(&mut q);
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.ready.notify_all();
    }
}

/// Shared state of the transport, held by the transport object and every
/// connection thread.
struct Core {
    inner: LocalTransport,
    /// Place id → hosting process index.
    place_proc: Vec<usize>,
    me: usize,
    self_loop: bool,
    /// Writer queue per peer process (`None` for `me` unless self-loop).
    out: Vec<Option<Arc<OutQueue>>>,
    /// In-process stash for non-serializable payload parts (self-loop only).
    stash: Mutex<HashMap<u64, Payload>>,
    stash_next: AtomicU64,
    /// Set during teardown so connection threads exit quietly.
    closing: AtomicBool,
}

impl Core {
    // -- encoding ---------------------------------------------------------

    /// Park a payload in the stash, returning its key.
    fn stash_put(&self, payload: Payload) -> u64 {
        let key = self.stash_next.fetch_add(1, Ordering::Relaxed);
        self.stash.lock().insert(key, payload);
        key
    }

    fn stash_take(&self, key: u64) -> Option<Payload> {
        self.stash.lock().remove(&key)
    }

    /// Serialize one logical (non-batch) message into `out`.
    fn encode_one(&self, env: Envelope, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        let Envelope {
            class,
            bytes,
            causal,
            payload,
            ..
        } = env;
        let (handler, flags, args) = match payload.downcast::<WireMsg>() {
            Ok(w) => {
                let w = *w;
                match w.inline {
                    None => (w.handler, 0u8, w.args),
                    Some(inline) => {
                        if !self.self_loop {
                            return Err(EncodeError::NotSerializable { class });
                        }
                        let key = self.stash_put(inline);
                        let mut args = Vec::with_capacity(8 + w.args.len());
                        codec::put_u64(&mut args, key);
                        args.extend_from_slice(&w.args);
                        (w.handler, codec::FLAG_STASH, args)
                    }
                }
            }
            Err(payload) => match payload.downcast::<FaultMarker>() {
                Ok(marker) => {
                    let kind = match *marker {
                        FaultMarker::Duplicate => 0u8,
                        FaultMarker::Truncated => 1u8,
                    };
                    (codec::H_MARKER, 0u8, vec![kind])
                }
                Err(payload) => {
                    // An untyped in-process payload (CodecMode::Inline box):
                    // only the self-loop can carry it — whole-payload stash.
                    if !self.self_loop {
                        return Err(EncodeError::NotSerializable { class });
                    }
                    let key = self.stash_put(payload);
                    let mut args = Vec::with_capacity(8);
                    codec::put_u64(&mut args, key);
                    (HandlerId::INVALID, codec::FLAG_STASH, args)
                }
            },
        };
        codec::put_msg_header(
            out,
            &codec::MsgHeader {
                class,
                flags,
                handler,
                causal,
                modeled_bytes: bytes as u32,
                args_len: args.len() as u32,
            },
        );
        out.extend_from_slice(&args);
        Ok(())
    }

    /// Serialize a whole envelope (batch or single) into one length-prefixed
    /// frame.
    fn encode_frame(&self, env: Envelope) -> Result<Vec<u8>, EncodeError> {
        let mut out = Vec::with_capacity(4 + codec::FRAME_HEADER_BYTES + 64);
        out.extend_from_slice(&[0u8; 4]); // length prefix, patched below
        let (from, to) = (env.from.0, env.to.0);
        match env.unbatch_boxed() {
            Ok(batch) => {
                codec::put_frame_header(
                    &mut out,
                    &codec::FrameHeader {
                        flags: codec::FRAME_FLAG_BATCH,
                        from,
                        to,
                        count: batch.envs.len() as u32,
                    },
                );
                for e in batch.envs {
                    self.encode_one(e, &mut out)?;
                }
            }
            Err(env) => {
                codec::put_frame_header(
                    &mut out,
                    &codec::FrameHeader {
                        flags: 0,
                        from,
                        to,
                        count: 1,
                    },
                );
                self.encode_one(env, &mut out)?;
            }
        }
        let len = (out.len() - 4) as u32;
        out[..4].copy_from_slice(&len.to_le_bytes());
        Ok(out)
    }

    // -- decoding ---------------------------------------------------------

    /// Decode one logical message back into an envelope.
    fn decode_one(
        &self,
        cur: &mut codec::Cursor<'_>,
        from: PlaceId,
        to: PlaceId,
    ) -> Result<Envelope, DecodeError> {
        let h = codec::read_msg_header(cur)?;
        let args = cur.take(h.args_len as usize)?;
        let payload: Payload = if h.flags & codec::FLAG_STASH != 0 {
            let mut acur = codec::Cursor::new(args);
            let key = acur.u64()?;
            let stashed = self.stash_take(key).ok_or(DecodeError::BadTag {
                what: "stash key",
                tag: 0,
            })?;
            if h.handler == HandlerId::INVALID {
                stashed // whole payload was stashed
            } else {
                let rest = acur.take(acur.remaining())?;
                Box::new(WireMsg::with_inline(h.handler, rest.to_vec(), stashed))
            }
        } else if h.handler == codec::H_MARKER {
            let mut acur = codec::Cursor::new(args);
            let marker = match acur.u8()? {
                0 => FaultMarker::Duplicate,
                1 => FaultMarker::Truncated,
                t => {
                    return Err(DecodeError::BadTag {
                        what: "fault marker",
                        tag: t,
                    })
                }
            };
            Box::new(marker)
        } else {
            Box::new(WireMsg::new(h.handler, args.to_vec()))
        };
        Ok(Envelope {
            from,
            to,
            class: h.class,
            bytes: h.modeled_bytes as usize,
            causal: h.causal,
            payload,
        })
    }

    /// Decode a frame body (everything after the length prefix) and deliver
    /// its envelope(s) into the inner transport.
    fn deliver_frame(&self, buf: &[u8]) -> Result<(), DecodeError> {
        let mut cur = codec::Cursor::new(buf);
        let fh = codec::read_frame_header(&mut cur)?;
        let (from, to) = (PlaceId(fh.from), PlaceId(fh.to));
        if fh.flags & codec::FRAME_FLAG_BATCH != 0 {
            let mut envs = Vec::with_capacity(fh.count as usize);
            for _ in 0..fh.count {
                envs.push(self.decode_one(&mut cur, from, to)?);
            }
            cur.finish()?;
            // Sends to a dead place black-hole, exactly like LocalTransport.
            let _ = self.inner.send(Envelope::batch(from, to, envs));
        } else {
            for _ in 0..fh.count {
                let env = self.decode_one(&mut cur, from, to)?;
                let _ = self.inner.send(env);
            }
            cur.finish()?;
        }
        Ok(())
    }

    /// Reader loop for one peer connection: length-prefixed frames until EOF.
    fn reader_loop(&self, mut stream: TcpStream) {
        let mut len_buf = [0u8; 4];
        let mut frame = Vec::new();
        loop {
            if let Err(e) = stream.read_exact(&mut len_buf) {
                if !self.closing.load(Ordering::Acquire)
                    && e.kind() != std::io::ErrorKind::UnexpectedEof
                {
                    eprintln!("[x10rt::tcp] connection read failed: {e}");
                }
                return;
            }
            let len = u32::from_le_bytes(len_buf) as usize;
            if !(codec::FRAME_HEADER_BYTES..=MAX_FRAME_BYTES).contains(&len) {
                eprintln!("[x10rt::tcp] dropping connection: insane frame length {len}");
                return;
            }
            frame.clear();
            frame.resize(len, 0);
            if stream.read_exact(&mut frame).is_err() {
                return;
            }
            if let Err(e) = self.deliver_frame(&frame) {
                // A decode failure mid-stream means framing is lost for
                // good: drop the connection rather than deliver garbage.
                eprintln!("[x10rt::tcp] dropping connection: {e}");
                return;
            }
        }
    }

    /// Writer loop for one peer connection: drain the frame queue into the
    /// socket until the queue closes.
    fn writer_loop(&self, q: &OutQueue, mut stream: TcpStream) {
        while let Some(frame) = q.pop() {
            if let Err(e) = stream.write_all(&frame) {
                if !self.closing.load(Ordering::Acquire) {
                    eprintln!("[x10rt::tcp] connection write failed: {e}");
                }
                return;
            }
        }
        let _ = stream.flush();
    }
}

/// The TCP socket transport (see the [module docs](self)).
pub struct TcpTransport {
    core: Arc<Core>,
    /// Listener + connection threads, joined on drop.
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Connected streams (one per peer), shut down on drop to unblock the
    /// reader threads.
    streams: Mutex<Vec<TcpStream>>,
    /// The local listener's bound address (useful when bound to port 0).
    local_addr: std::net::SocketAddr,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.core.me)
            .field("self_loop", &self.core.self_loop)
            .field("places", &self.core.inner.num_places())
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl TcpTransport {
    /// All `places` in this one process, connected to itself through a real
    /// loopback socket: every send is framed, written to the kernel and read
    /// back. See the module docs for why this exists.
    pub fn self_loop(places: usize) -> Result<Arc<TcpTransport>, TcpError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let cfg = TcpConfig::new(
            vec![ProcSpec {
                addr: listener.local_addr()?.to_string(),
                place_start: 0,
                place_count: places as u32,
            }],
            0,
        );
        Self::connect_with_listener(cfg, listener)
    }

    /// Establish the transport for process `cfg.me`, binding a fresh
    /// listener on `cfg.procs[me].addr`. Blocks until every peer connection
    /// is up and handshaken.
    pub fn connect(cfg: TcpConfig) -> Result<Arc<TcpTransport>, TcpError> {
        let listener = TcpListener::bind(cfg.procs[cfg.me].addr.as_str())?;
        Self::connect_with_listener(cfg, listener)
    }

    /// [`TcpTransport::connect`] over a listener the caller already bound —
    /// the launcher pattern: bind port 0 first, advertise the real port,
    /// then connect.
    pub fn connect_with_listener(
        cfg: TcpConfig,
        listener: TcpListener,
    ) -> Result<Arc<TcpTransport>, TcpError> {
        let nprocs = cfg.procs.len();
        assert!(cfg.me < nprocs, "me out of range");
        let total = cfg.total_places();
        assert!(total > 0, "no places");
        let mut place_proc = vec![usize::MAX; total];
        let mut next = 0u32;
        for (i, p) in cfg.procs.iter().enumerate() {
            assert_eq!(
                p.place_start, next,
                "place ranges must be contiguous and in process order"
            );
            for pl in p.place_start..p.place_start + p.place_count {
                place_proc[pl as usize] = i;
            }
            next += p.place_count;
        }
        let local_addr = listener.local_addr()?;
        let self_loop = nprocs == 1;
        let core = Arc::new(Core {
            inner: LocalTransport::new(total),
            place_proc,
            me: cfg.me,
            self_loop,
            out: (0..nprocs).map(|_| None).collect(),
            stash: Mutex::new(HashMap::new()),
            stash_next: AtomicU64::new(1),
            closing: AtomicBool::new(false),
        });
        let mut conns: Vec<Option<(TcpStream, Handshake)>> = (0..nprocs).map(|_| None).collect();

        if self_loop {
            // Dial ourselves: both ends of the connection are ours, so the
            // handshake is performed synchronously on this thread.
            let client = TcpStream::connect(local_addr)?;
            let (server, _) = listener.accept()?;
            let hs = Handshake {
                version: cfg.version,
                proc_id: 0,
                place_start: 0,
                place_count: total as u32,
                total_places: total as u32,
            };
            let mut c = client;
            c.write_all(&codec::encode_handshake(&hs))?;
            let mut s = server;
            let mut buf = [0u8; codec::HANDSHAKE_BYTES];
            s.read_exact(&mut buf)?;
            codec::decode_handshake(&buf).map_err(TcpError::BadHandshake)?;
            s.write_all(&codec::encode_handshake(&hs))?;
            c.read_exact(&mut buf)?;
            codec::decode_handshake(&buf).map_err(TcpError::BadHandshake)?;
            // Writer end = the client stream; reader end = the server stream.
            conns[0] = Some((c, hs));
            let reader_stream = s;
            return Self::finish_setup(cfg, core, conns, Some(reader_stream), local_addr);
        }

        // Accept from every lower-numbered process.
        for _ in 0..cfg.me {
            let (mut stream, _) = listener.accept()?;
            let mut buf = [0u8; codec::HANDSHAKE_BYTES];
            stream.read_exact(&mut buf)?;
            let hs = match codec::decode_handshake(&buf) {
                Ok(hs) => hs,
                Err(e) => return Err(TcpError::BadHandshake(e)),
            };
            if hs.version != cfg.version {
                let _ = stream.write_all(&codec::encode_handshake_reject(cfg.version, hs.version));
                return Err(TcpError::VersionMismatch {
                    ours: cfg.version,
                    theirs: hs.version,
                });
            }
            validate_peer(&cfg, &hs, total as u32)?;
            let reply = Handshake {
                version: cfg.version,
                proc_id: cfg.me as u32,
                place_start: cfg.procs[cfg.me].place_start,
                place_count: cfg.procs[cfg.me].place_count,
                total_places: total as u32,
            };
            stream.write_all(&codec::encode_handshake(&reply))?;
            conns[hs.proc_id as usize] = Some((stream, hs));
        }

        // Dial every higher-numbered process (with startup-race retries).
        #[allow(clippy::needless_range_loop)] // `j` also indexes cfg.procs
        for j in cfg.me + 1..nprocs {
            let deadline = Instant::now() + cfg.connect_timeout;
            let stream = loop {
                match TcpStream::connect(cfg.procs[j].addr.as_str()) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(TcpError::Io(e));
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            };
            let mut stream = stream;
            let hs = Handshake {
                version: cfg.version,
                proc_id: cfg.me as u32,
                place_start: cfg.procs[cfg.me].place_start,
                place_count: cfg.procs[cfg.me].place_count,
                total_places: total as u32,
            };
            stream.write_all(&codec::encode_handshake(&hs))?;
            let mut buf = [0u8; codec::HANDSHAKE_BYTES];
            stream.read_exact(&mut buf)?;
            let peer = match codec::decode_handshake(&buf) {
                Ok(p) => p,
                Err(DecodeError::VersionMismatch { ours: _, theirs }) => {
                    return Err(TcpError::VersionMismatch {
                        ours: cfg.version,
                        theirs,
                    })
                }
                Err(e) => return Err(TcpError::BadHandshake(e)),
            };
            if peer.version != cfg.version {
                return Err(TcpError::VersionMismatch {
                    ours: cfg.version,
                    theirs: peer.version,
                });
            }
            validate_peer(&cfg, &peer, total as u32)?;
            conns[j] = Some((stream, peer));
        }

        Self::finish_setup(cfg, core, conns, None, local_addr)
    }

    /// Spawn the per-connection writer and reader threads.
    fn finish_setup(
        _cfg: TcpConfig,
        core: Arc<Core>,
        conns: Vec<Option<(TcpStream, Handshake)>>,
        self_loop_reader: Option<TcpStream>,
        local_addr: std::net::SocketAddr,
    ) -> Result<Arc<TcpTransport>, TcpError> {
        let mut core_mut = core;
        let mut threads = Vec::new();
        let mut streams = Vec::new();
        {
            let core_ref = Arc::get_mut(&mut core_mut).expect("core not yet shared");
            for (j, conn) in conns.iter().enumerate() {
                if conn.is_some() {
                    core_ref.out[j] = Some(OutQueue::new());
                }
            }
        }
        let core = core_mut;
        for (j, conn) in conns.into_iter().enumerate() {
            let Some((stream, _)) = conn else { continue };
            let q = core.out[j].as_ref().expect("queue built above").clone();
            let wstream = stream.try_clone()?;
            streams.push(stream.try_clone()?);
            let wc = core.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-writer-{j}"))
                    .spawn(move || wc.writer_loop(&q, wstream))
                    .expect("spawn tcp writer"),
            );
            // In self-loop mode the reader end is a *different* stream (the
            // accepted side of the self connection).
            let rstream = match &self_loop_reader {
                Some(r) if core.self_loop => r.try_clone()?,
                _ => stream,
            };
            streams.push(rstream.try_clone()?);
            let rc = core.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-reader-{j}"))
                    .spawn(move || rc.reader_loop(rstream))
                    .expect("spawn tcp reader"),
            );
        }
        Ok(Arc::new(TcpTransport {
            core,
            threads: Mutex::new(threads),
            streams: Mutex::new(streams),
            local_addr,
        }))
    }

    /// The local listener's bound address (the real port when bound to 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Is this a single-process self-loop transport?
    pub fn is_self_loop(&self) -> bool {
        self.core.self_loop
    }

    /// Route `env` to the socket path, panicking on a non-serializable
    /// cross-process payload (a configuration error: cross-process runs
    /// require `CodecMode::Bytes` and command-based spawns).
    fn send_socket(&self, proc: usize, env: Envelope) {
        let class = env.class;
        match self.core.encode_frame(env) {
            Ok(frame) => {
                if let Some(q) = &self.core.out[proc] {
                    q.push(frame);
                }
            }
            Err(e) => panic!(
                "TcpTransport cannot ship a `{}` envelope to process {proc}: {e}",
                class.label()
            ),
        }
    }
}

/// Validate a peer's handshake against the launch configuration.
fn validate_peer(cfg: &TcpConfig, hs: &Handshake, total: u32) -> Result<(), TcpError> {
    if hs.total_places != total {
        return Err(TcpError::PeerMismatch(format!(
            "peer proc {} declares {} total places, we have {total}",
            hs.proc_id, hs.total_places
        )));
    }
    let Some(spec) = cfg.procs.get(hs.proc_id as usize) else {
        return Err(TcpError::PeerMismatch(format!(
            "peer declares proc id {} but the launch has {} procs",
            hs.proc_id,
            cfg.procs.len()
        )));
    };
    if spec.place_start != hs.place_start || spec.place_count != hs.place_count {
        return Err(TcpError::PeerMismatch(format!(
            "peer proc {} declares places {}..{} but the launch assigns {}..{}",
            hs.proc_id,
            hs.place_start,
            hs.place_start + hs.place_count,
            spec.place_start,
            spec.place_start + spec.place_count
        )));
    }
    Ok(())
}

impl Transport for TcpTransport {
    fn send(&self, env: Envelope) -> Result<(), SendError> {
        let to = env.to;
        if self.core.inner.is_dead(to) {
            return Err(SendError::dead(to, 1));
        }
        let proc = self.core.place_proc[to.index()];
        if proc == self.core.me && !self.core.self_loop {
            return self.core.inner.send(env);
        }
        self.send_socket(proc, env);
        Ok(())
    }

    fn try_recv(&self, place: PlaceId) -> Option<Envelope> {
        self.core.inner.try_recv(place)
    }

    fn try_recv_batch(&self, place: PlaceId, max: usize, out: &mut Vec<Envelope>) -> usize {
        self.core.inner.try_recv_batch(place, max, out)
    }

    fn register_waker(&self, place: PlaceId, waker: Waker) {
        self.core.inner.register_waker(place, waker)
    }

    fn stats(&self) -> &NetStats {
        self.core.inner.stats()
    }

    fn num_places(&self) -> usize {
        self.core.inner.num_places()
    }

    fn queue_len(&self, place: PlaceId) -> usize {
        self.core.inner.queue_len(place)
    }

    fn kill_place(&self, place: PlaceId) {
        // Local effect only: the victim's mailbox black-holes in this
        // process. (The chaos tier's kill cells run self-loop mode, where
        // every place is local, so the fault model is complete there;
        // cross-process failure propagation is future work.)
        self.core.inner.kill_place(place)
    }

    fn is_dead(&self, place: PlaceId) -> bool {
        self.core.inner.is_dead(place)
    }

    fn dead_places(&self) -> Vec<PlaceId> {
        self.core.inner.dead_places()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.core.closing.store(true, Ordering::Release);
        for q in self.core.out.iter().flatten() {
            q.close();
        }
        for s in self.streams.lock().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgClass, HEADER_BYTES};

    fn wire_env(from: u32, to: u32, handler: u32, args: Vec<u8>) -> Envelope {
        Envelope::new(
            PlaceId(from),
            PlaceId(to),
            MsgClass::Task,
            args.len(),
            Box::new(WireMsg::new(HandlerId(handler), args)),
        )
    }

    fn recv_blocking(t: &TcpTransport, place: PlaceId) -> Envelope {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(e) = t.try_recv(place) {
                return e;
            }
            assert!(Instant::now() < deadline, "no delivery within 10s");
            std::thread::yield_now();
        }
    }

    #[test]
    fn self_loop_round_trips_wire_messages() {
        let t = TcpTransport::self_loop(4).expect("self loop");
        assert!(t.is_self_loop());
        t.send(wire_env(0, 2, 2000, vec![1, 2, 3])).unwrap();
        let got = recv_blocking(&t, PlaceId(2));
        assert_eq!(got.from, PlaceId(0));
        assert_eq!(got.class, MsgClass::Task);
        assert_eq!(got.bytes, 3 + HEADER_BYTES);
        let w = got.payload.downcast::<WireMsg>().unwrap();
        assert_eq!(w.handler, HandlerId(2000));
        assert_eq!(w.args, vec![1, 2, 3]);
        assert!(w.inline.is_none());
    }

    #[test]
    fn self_loop_preserves_causal_and_fifo() {
        let t = TcpTransport::self_loop(2).expect("self loop");
        for i in 0..100u64 {
            let env = Envelope::new(
                PlaceId(0),
                PlaceId(1),
                MsgClass::FinishCtl,
                8,
                Box::new(WireMsg::new(HandlerId(2), i.to_le_bytes().to_vec())),
            )
            .with_causal(crate::message::CausalId { root: 7, seq: i });
            t.send(env).unwrap();
        }
        for i in 0..100u64 {
            let got = recv_blocking(&t, PlaceId(1));
            assert_eq!(
                got.causal,
                Some(crate::message::CausalId { root: 7, seq: i })
            );
            let w = got.payload.downcast::<WireMsg>().unwrap();
            assert_eq!(w.args, i.to_le_bytes().to_vec());
        }
    }

    #[test]
    fn self_loop_stashes_inline_payloads() {
        let t = TcpTransport::self_loop(2).expect("self loop");
        let env = Envelope::new(
            PlaceId(0),
            PlaceId(1),
            MsgClass::Task,
            16,
            Box::new(WireMsg::with_inline(
                HandlerId(1),
                vec![9],
                Box::new(String::from("closure stand-in")),
            )),
        );
        t.send(env).unwrap();
        let got = recv_blocking(&t, PlaceId(1));
        let w = got.payload.downcast::<WireMsg>().unwrap();
        assert_eq!(w.args, vec![9]);
        let inline = w.inline.expect("stash restored");
        assert_eq!(
            *inline.downcast::<String>().unwrap(),
            "closure stand-in".to_string()
        );
    }

    #[test]
    fn self_loop_carries_batches_as_one_frame() {
        let t = TcpTransport::self_loop(2).expect("self loop");
        let inner: Vec<Envelope> = (0..5u8)
            .map(|i| wire_env(0, 1, 2000 + i as u32, vec![i]))
            .collect();
        let batch = Envelope::batch(PlaceId(0), PlaceId(1), inner);
        let batch_bytes = batch.bytes;
        t.send(batch).unwrap();
        let got = recv_blocking(&t, PlaceId(1));
        assert_eq!(got.class, MsgClass::Batch);
        assert_eq!(got.bytes, batch_bytes, "modeled batch size survives");
        let envs = got.unbatch().expect("still a batch");
        assert_eq!(envs.len(), 5);
        for (i, e) in envs.into_iter().enumerate() {
            let w = e.payload.downcast::<WireMsg>().unwrap();
            assert_eq!(w.handler, HandlerId(2000 + i as u32));
        }
    }

    #[test]
    fn two_process_loopback_delivery() {
        // Two real TcpTransports in one test process — distinct "processes"
        // as far as the transport is concerned (separate stashes, separate
        // inner transports), crossing real sockets.
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let procs = vec![
            ProcSpec {
                addr: l0.local_addr().unwrap().to_string(),
                place_start: 0,
                place_count: 2,
            },
            ProcSpec {
                addr: l1.local_addr().unwrap().to_string(),
                place_start: 2,
                place_count: 2,
            },
        ];
        let cfg0 = TcpConfig::new(procs.clone(), 0);
        let cfg1 = TcpConfig::new(procs, 1);
        let h1 = std::thread::spawn(move || TcpTransport::connect_with_listener(cfg1, l1));
        let t0 = TcpTransport::connect_with_listener(cfg0, l0).expect("proc 0 up");
        let t1 = h1.join().unwrap().expect("proc 1 up");

        // 0 → 2 crosses the socket; delivery appears at proc 1's inner
        // transport.
        t0.send(wire_env(0, 2, 4242, vec![7, 7])).unwrap();
        let got = recv_blocking(&t1, PlaceId(2));
        let w = got.payload.downcast::<WireMsg>().unwrap();
        assert_eq!(w.handler, HandlerId(4242));

        // 2 → 1 crosses back.
        t1.send(wire_env(2, 1, 77, vec![])).unwrap();
        let got = recv_blocking(&t0, PlaceId(1));
        assert_eq!(got.from, PlaceId(2));

        // 0 → 1 stays local to proc 0.
        t0.send(wire_env(0, 1, 5, vec![])).unwrap();
        let got = recv_blocking(&t0, PlaceId(1));
        assert_eq!(got.from, PlaceId(0));
    }

    #[test]
    fn version_mismatch_rejected_with_typed_error() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let procs = vec![
            ProcSpec {
                addr: l0.local_addr().unwrap().to_string(),
                place_start: 0,
                place_count: 1,
            },
            ProcSpec {
                addr: l1.local_addr().unwrap().to_string(),
                place_start: 1,
                place_count: 1,
            },
        ];
        // Proc 0 dials with a bogus version; proc 1 (the accepter, speaking
        // PROTO_VERSION) must reject, and *both* sides surface typed errors.
        let cfg0 = TcpConfig::new(procs.clone(), 0).version(99);
        let cfg1 = TcpConfig::new(procs, 1);
        let h1 = std::thread::spawn(move || TcpTransport::connect_with_listener(cfg1, l1));
        let r0 = TcpTransport::connect_with_listener(cfg0, l0);
        let r1 = h1.join().unwrap();
        match r0 {
            Err(TcpError::VersionMismatch { ours: 99, theirs }) => {
                assert_eq!(theirs, codec::PROTO_VERSION)
            }
            other => panic!("dialer: expected VersionMismatch, got {other:?}"),
        }
        match r1 {
            Err(TcpError::VersionMismatch { ours, theirs: 99 }) => {
                assert_eq!(ours, codec::PROTO_VERSION)
            }
            other => panic!("accepter: expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn cross_process_closure_payload_is_typed_encode_error() {
        // Direct encode check: a non-WireMsg payload addressed across a
        // process boundary must fail with NotSerializable, not panic deep in
        // a socket thread.
        let core = Core {
            inner: LocalTransport::new(2),
            place_proc: vec![0, 1],
            me: 0,
            self_loop: false,
            out: vec![None, None],
            stash: Mutex::new(HashMap::new()),
            stash_next: AtomicU64::new(1),
            closing: AtomicBool::new(false),
        };
        let env = Envelope::new(
            PlaceId(0),
            PlaceId(1),
            MsgClass::Task,
            8,
            Box::new(42u64), // an opaque in-process payload
        );
        match core.encode_frame(env) {
            Err(EncodeError::NotSerializable {
                class: MsgClass::Task,
            }) => {}
            other => panic!("expected NotSerializable, got {other:?}"),
        }
        // Same for a WireMsg that still carries an inline part.
        let env = Envelope::new(
            PlaceId(0),
            PlaceId(1),
            MsgClass::Task,
            8,
            Box::new(WireMsg::with_inline(HandlerId(1), vec![], Box::new(42u64))),
        );
        assert!(matches!(
            core.encode_frame(env),
            Err(EncodeError::NotSerializable { .. })
        ));
    }

    #[test]
    fn kill_place_black_holes_in_self_loop() {
        let t = TcpTransport::self_loop(3).expect("self loop");
        t.kill_place(PlaceId(2));
        assert!(t.is_dead(PlaceId(2)));
        let err = t.send(wire_env(0, 2, 9, vec![])).unwrap_err();
        assert_eq!(err.dropped, 1);
        assert_eq!(t.dead_places(), vec![PlaceId(2)]);
    }
}
