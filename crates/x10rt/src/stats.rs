//! Network statistics.
//!
//! The paper argues about protocol cost in terms of control-message counts,
//! who receives them (the root of a `finish` can be flooded), and communication
//! out-degree (the Power 775 stack "favors communication graphs with low
//! out-degree"; UTS bounds its victim list at 1,024 for this reason). These
//! counters make all three observable so tests and benches can assert e.g.
//! that `FINISH_SPMD` sends exactly `n` termination messages or that
//! `FINISH_DENSE` reduces the in-degree at the finish root.

use crate::message::MsgClass;
use std::sync::atomic::{AtomicU64, Ordering};

const NCLASS: usize = MsgClass::ALL.len();

/// A snapshot of one class's counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Messages sent.
    pub messages: u64,
    /// Modeled wire bytes sent (headers included).
    pub bytes: u64,
}

/// Shared counters, updated lock-free on every send.
pub struct NetStats {
    sent: [AtomicU64; NCLASS],
    bytes: [AtomicU64; NCLASS],
    /// Messages *received into* each place's queue (in-degree pressure).
    recv_per_place: Vec<AtomicU64>,
    /// Destination bitmap per sender (out-degree), lock-free: row `p` has
    /// `⌈places/64⌉` words.
    peer_bits: Vec<AtomicU64>,
    words_per_place: usize,
}

impl NetStats {
    /// Counters for a transport with `places` places.
    pub fn new(places: usize) -> Self {
        let words_per_place = places.div_ceil(64);
        NetStats {
            sent: Default::default(),
            bytes: Default::default(),
            recv_per_place: (0..places).map(|_| AtomicU64::new(0)).collect(),
            peer_bits: (0..places * words_per_place)
                .map(|_| AtomicU64::new(0))
                .collect(),
            words_per_place,
        }
    }

    /// Record one sent message. Called by the transport. Lock-free.
    #[inline]
    pub fn record_send(&self, from: u32, to: u32, class: MsgClass, nbytes: usize) {
        let i = class.index();
        self.sent[i].fetch_add(1, Ordering::Relaxed);
        self.bytes[i].fetch_add(nbytes as u64, Ordering::Relaxed);
        self.recv_per_place[to as usize].fetch_add(1, Ordering::Relaxed);
        let word = from as usize * self.words_per_place + (to as usize >> 6);
        let bit = 1u64 << (to & 63);
        // Skip the RMW when the bit is already set (the common case).
        if self.peer_bits[word].load(Ordering::Relaxed) & bit == 0 {
            self.peer_bits[word].fetch_or(bit, Ordering::Relaxed);
        }
    }

    /// Snapshot of one class.
    pub fn class(&self, class: MsgClass) -> ClassStats {
        let i = class.index();
        ClassStats {
            messages: self.sent[i].load(Ordering::Relaxed),
            bytes: self.bytes[i].load(Ordering::Relaxed),
        }
    }

    /// Total messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.sent.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total modeled wire bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Messages received (queued) at `place` so far — in-degree pressure.
    pub fn received_at(&self, place: usize) -> u64 {
        self.recv_per_place[place].load(Ordering::Relaxed)
    }

    /// The place with the highest in-degree pressure and its message count.
    pub fn hottest_receiver(&self) -> (usize, u64) {
        self.recv_per_place
            .iter()
            .enumerate()
            .map(|(p, c)| (p, c.load(Ordering::Relaxed)))
            .max_by_key(|&(_, c)| c)
            .unwrap_or((0, 0))
    }

    /// Number of distinct destinations `place` has sent to (out-degree).
    pub fn out_degree(&self, place: usize) -> usize {
        let base = place * self.words_per_place;
        self.peer_bits[base..base + self.words_per_place]
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Maximum out-degree over all places.
    pub fn max_out_degree(&self) -> usize {
        (0..self.recv_per_place.len())
            .map(|p| self.out_degree(p))
            .max()
            .unwrap_or(0)
    }

    /// Reset all counters (used between benchmark phases).
    pub fn reset(&self) {
        for c in &self.sent {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.bytes {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.recv_per_place {
            c.store(0, Ordering::Relaxed);
        }
        for w in &self.peer_bits {
            w.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let s = NetStats::new(4);
        s.record_send(0, 1, MsgClass::Task, 100);
        s.record_send(0, 2, MsgClass::Task, 50);
        s.record_send(3, 1, MsgClass::FinishCtl, 40);
        assert_eq!(s.class(MsgClass::Task).messages, 2);
        assert_eq!(s.class(MsgClass::Task).bytes, 150);
        assert_eq!(s.class(MsgClass::FinishCtl).messages, 1);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 190);
        assert_eq!(s.received_at(1), 2);
        assert_eq!(s.out_degree(0), 2);
        assert_eq!(s.max_out_degree(), 2);
        assert_eq!(s.hottest_receiver(), (1, 2));
    }

    #[test]
    fn reset_clears_everything() {
        let s = NetStats::new(2);
        s.record_send(0, 1, MsgClass::Team, 8);
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.received_at(1), 0);
        assert_eq!(s.out_degree(0), 0);
    }
}
