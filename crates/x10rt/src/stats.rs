//! Network statistics.
//!
//! The paper argues about protocol cost in terms of control-message counts,
//! who receives them (the root of a `finish` can be flooded), and communication
//! out-degree (the Power 775 stack "favors communication graphs with low
//! out-degree"; UTS bounds its victim list at 1,024 for this reason). These
//! counters make all three observable so tests and benches can assert e.g.
//! that `FINISH_SPMD` sends exactly `n` termination messages or that
//! `FINISH_DENSE` reduces the in-degree at the finish root.
//!
//! # Logical messages vs physical envelopes
//!
//! Transport aggregation (see [`crate::coalesce`]) packs several *logical*
//! messages into one *physical* envelope. The per-class counters here always
//! count logical messages — the protocol-cost arguments above are about
//! protocol messages, and they must not change when aggregation is toggled.
//! A separate envelope counter ([`NetStats::total_envelopes`] /
//! [`NetStats::envelope_bytes`]) counts what actually crosses the transport,
//! which is where aggregation's savings show up.
//!
//! # Sharding
//!
//! The hot counters are sharded per *sender*: every place's worker thread
//! updates its own cache-line-aligned shard (`#[repr(align(128))]`, two lines
//! on common hardware to defeat adjacent-line prefetching), so concurrent
//! senders never contend on a counter cache line. Readers aggregate across
//! shards — reads are rare (end of a bench phase or an assertion), writes are
//! per-message, so the read-side sum is the right trade. `recv_per_place` and
//! `peer_bits` are already indexed by place and mostly write-once
//! respectively, so they stay unsharded.

use crate::message::MsgClass;
use std::sync::atomic::{AtomicU64, Ordering};

const NCLASS: usize = MsgClass::ALL.len();

/// Cap on the number of counter shards; senders hash onto shards modulo this.
const MAX_SHARDS: usize = 32;

/// A snapshot of one class's counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Messages sent.
    pub messages: u64,
    /// Modeled wire bytes sent (headers included).
    pub bytes: u64,
}

/// One sender's slice of the hot counters. Aligned to 128 bytes so two
/// shards never share a cache line (128 covers adjacent-line prefetch pairs).
#[repr(align(128))]
#[derive(Default)]
struct Shard {
    /// Logical messages sent, per class.
    sent: [AtomicU64; NCLASS],
    /// Logical wire bytes sent, per class.
    bytes: [AtomicU64; NCLASS],
    /// Physical envelopes handed to the transport.
    envelopes: AtomicU64,
    /// Physical wire bytes handed to the transport.
    env_bytes: AtomicU64,
    /// Envelopes diverted to a mailbox lane's overflow side-queue.
    ring_overflows: AtomicU64,
}

/// Shared counters, updated lock-free on every send.
pub struct NetStats {
    /// Per-sender shards of the hot counters (`sender % shards.len()`).
    shards: Vec<Shard>,
    /// Messages *received into* each place's queue (in-degree pressure).
    recv_per_place: Vec<AtomicU64>,
    /// Destination bitmap per sender (out-degree), lock-free: row `p` has
    /// `⌈places/64⌉` words.
    peer_bits: Vec<AtomicU64>,
    words_per_place: usize,
}

impl NetStats {
    /// Counters for a transport with `places` places.
    pub fn new(places: usize) -> Self {
        let words_per_place = places.div_ceil(64);
        let nshards = places.clamp(1, MAX_SHARDS);
        NetStats {
            shards: (0..nshards).map(|_| Shard::default()).collect(),
            recv_per_place: (0..places).map(|_| AtomicU64::new(0)).collect(),
            peer_bits: (0..places * words_per_place)
                .map(|_| AtomicU64::new(0))
                .collect(),
            words_per_place,
        }
    }

    #[inline]
    fn shard(&self, from: u32) -> &Shard {
        &self.shards[from as usize % self.shards.len()]
    }

    /// Record one *logical* sent message. Lock-free; writes land in the
    /// sender's shard.
    #[inline]
    pub fn record_send(&self, from: u32, to: u32, class: MsgClass, nbytes: usize) {
        self.record_send_many(from, to, class, 1, nbytes as u64);
    }

    /// Record `count` logical sends of one class between one place pair in
    /// one call — the batch emit path's amortization of
    /// [`record_send`](Self::record_send):
    /// a 64-message batch costs ~4 atomic adds per class present instead
    /// of ~4 per message.
    #[inline]
    pub fn record_send_many(&self, from: u32, to: u32, class: MsgClass, count: u64, nbytes: u64) {
        if count == 0 {
            return;
        }
        let i = class.index();
        let shard = self.shard(from);
        shard.sent[i].fetch_add(count, Ordering::Relaxed);
        shard.bytes[i].fetch_add(nbytes, Ordering::Relaxed);
        self.recv_per_place[to as usize].fetch_add(count, Ordering::Relaxed);
        let word = from as usize * self.words_per_place + (to as usize >> 6);
        let bit = 1u64 << (to & 63);
        // Skip the RMW when the bit is already set (the common case).
        if self.peer_bits[word].load(Ordering::Relaxed) & bit == 0 {
            self.peer_bits[word].fetch_or(bit, Ordering::Relaxed);
        }
    }

    /// Record one *physical* envelope handed to the transport (a batch
    /// envelope counts once here however many messages it carries).
    #[inline]
    pub fn record_envelope(&self, from: u32, nbytes: usize) {
        let shard = self.shard(from);
        shard.envelopes.fetch_add(1, Ordering::Relaxed);
        shard.env_bytes.fetch_add(nbytes as u64, Ordering::Relaxed);
    }

    /// Record one envelope diverted to an overflow side-queue because its
    /// mailbox ring was full (or still draining a previous overflow).
    #[inline]
    pub fn record_ring_overflow(&self, from: u32) {
        self.shard(from)
            .ring_overflows
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of one class (aggregated over the sender shards).
    pub fn class(&self, class: MsgClass) -> ClassStats {
        let i = class.index();
        let mut snap = ClassStats::default();
        for s in &self.shards {
            snap.messages += s.sent[i].load(Ordering::Relaxed);
            snap.bytes += s.bytes[i].load(Ordering::Relaxed);
        }
        snap
    }

    /// Total logical messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| &s.sent)
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total modeled logical wire bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| &s.bytes)
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total physical envelopes handed to the transport. With aggregation on
    /// this is ≤ [`NetStats::total_messages`]; the gap is the saving.
    pub fn total_envelopes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.envelopes.load(Ordering::Relaxed))
            .sum()
    }

    /// Total physical wire bytes handed to the transport (batch envelopes
    /// amortize per-message headers, so this is ≤ the logical byte total).
    pub fn envelope_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.env_bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Total envelopes that took the overflow side-queue instead of their
    /// lane's ring. Zero in a well-sized configuration; growth means the
    /// bounded rings are too small for the traffic bursts.
    pub fn total_ring_overflows(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.ring_overflows.load(Ordering::Relaxed))
            .sum()
    }

    /// Messages received (queued) at `place` so far — in-degree pressure.
    pub fn received_at(&self, place: usize) -> u64 {
        self.recv_per_place[place].load(Ordering::Relaxed)
    }

    /// The place with the highest in-degree pressure and its message count.
    pub fn hottest_receiver(&self) -> (usize, u64) {
        self.recv_per_place
            .iter()
            .enumerate()
            .map(|(p, c)| (p, c.load(Ordering::Relaxed)))
            .max_by_key(|&(_, c)| c)
            .unwrap_or((0, 0))
    }

    /// Number of distinct destinations `place` has sent to (out-degree).
    pub fn out_degree(&self, place: usize) -> usize {
        let base = place * self.words_per_place;
        self.peer_bits[base..base + self.words_per_place]
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Maximum out-degree over all places.
    pub fn max_out_degree(&self) -> usize {
        (0..self.recv_per_place.len())
            .map(|p| self.out_degree(p))
            .max()
            .unwrap_or(0)
    }

    /// Reset all counters (used between benchmark phases).
    pub fn reset(&self) {
        for s in &self.shards {
            for c in &s.sent {
                c.store(0, Ordering::Relaxed);
            }
            for c in &s.bytes {
                c.store(0, Ordering::Relaxed);
            }
            s.envelopes.store(0, Ordering::Relaxed);
            s.env_bytes.store(0, Ordering::Relaxed);
            s.ring_overflows.store(0, Ordering::Relaxed);
        }
        for c in &self.recv_per_place {
            c.store(0, Ordering::Relaxed);
        }
        for w in &self.peer_bits {
            w.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let s = NetStats::new(4);
        s.record_send(0, 1, MsgClass::Task, 100);
        s.record_send(0, 2, MsgClass::Task, 50);
        s.record_send(3, 1, MsgClass::FinishCtl, 40);
        assert_eq!(s.class(MsgClass::Task).messages, 2);
        assert_eq!(s.class(MsgClass::Task).bytes, 150);
        assert_eq!(s.class(MsgClass::FinishCtl).messages, 1);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 190);
        assert_eq!(s.received_at(1), 2);
        assert_eq!(s.out_degree(0), 2);
        assert_eq!(s.max_out_degree(), 2);
        assert_eq!(s.hottest_receiver(), (1, 2));
    }

    #[test]
    fn reset_clears_everything() {
        let s = NetStats::new(2);
        s.record_send(0, 1, MsgClass::Team, 8);
        s.record_envelope(0, 8);
        s.record_ring_overflow(0);
        assert_eq!(s.total_ring_overflows(), 1);
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.total_envelopes(), 0);
        assert_eq!(s.envelope_bytes(), 0);
        assert_eq!(s.total_ring_overflows(), 0);
        assert_eq!(s.received_at(1), 0);
        assert_eq!(s.out_degree(0), 0);
    }

    #[test]
    fn shards_aggregate_across_senders() {
        // More senders than shards: counts must still sum correctly.
        let s = NetStats::new(100);
        for from in 0..100u32 {
            s.record_send(from, (from + 1) % 100, MsgClass::Task, 10);
            s.record_envelope(from, 10);
        }
        assert_eq!(s.class(MsgClass::Task).messages, 100);
        assert_eq!(s.total_messages(), 100);
        assert_eq!(s.total_bytes(), 1000);
        assert_eq!(s.total_envelopes(), 100);
        assert_eq!(s.envelope_bytes(), 1000);
    }

    #[test]
    fn envelope_counters_independent_of_logical() {
        let s = NetStats::new(2);
        // Three logical messages carried by one physical envelope.
        s.record_send(0, 1, MsgClass::Task, 40);
        s.record_send(0, 1, MsgClass::Task, 40);
        s.record_send(0, 1, MsgClass::FinishCtl, 40);
        s.record_envelope(0, 56);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_envelopes(), 1);
        assert_eq!(s.envelope_bytes(), 56);
    }

    #[test]
    fn shard_alignment_defeats_false_sharing() {
        assert_eq!(std::mem::align_of::<Shard>(), 128);
        assert!(std::mem::size_of::<Shard>().is_multiple_of(128));
    }
}
