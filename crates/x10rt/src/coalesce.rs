//! Sender-side message coalescing (transport aggregation).
//!
//! The paper's transport (PAMI on the Power 775) aggregates small active
//! messages headed for the same destination into larger injections,
//! amortizing per-message software and header overhead. [`Coalescer`] models
//! that layer: each sending worker owns one coalescer, routes every outgoing
//! message through [`Coalescer::send`], and the coalescer packs
//! same-destination runs into a single [`MsgClass::Batch`](crate::MsgClass)
//! envelope (see [`Envelope::batch`]).
//!
//! # Flush discipline
//!
//! A buffer drains when it reaches either threshold (`max_msgs` messages or
//! `max_bytes` modeled bytes), and *everything* drains on [`Coalescer::flush`].
//! The owner must call `flush` at every point where it stops producing sends
//! and other parties may wait on the buffered messages — in this codebase the
//! scheduler flushes at the end of each scheduling quantum, before parking,
//! and on worker exit, so no message ever stays buffered across a point where
//! its destination could be blocked on it. Liveness holds by construction:
//! buffered messages never survive a scheduling quantum.
//!
//! # Ordering
//!
//! Per-(sender, destination) FIFO is preserved: a sender's messages to one
//! destination all funnel through the same buffer in program order, and the
//! resulting envelopes (scalar or batch) travel the transport's FIFO path.
//! This only holds if *all* of a sender's traffic to a destination goes
//! through the coalescer — bypassing it for some messages lets them overtake
//! buffered ones.
//!
//! # Statistics
//!
//! Logical per-class message counts are recorded exactly once per message,
//! whichever path it takes: the transport counts scalar envelopes itself and
//! skips `Batch` envelopes, while the coalescer counts the inner messages of
//! a batch at pack time. Physical envelope counts always come from the
//! transport. Toggling aggregation therefore changes envelope counts but
//! never logical protocol counts.
//!
//! Every buffer drain is additionally attributed to a [`FlushReason`] —
//! threshold-tripped (by message count or by bytes) vs explicit — readable
//! via [`Coalescer::flush_counts`] and, when the coalescer is built
//! [`Coalescer::with_obs`], mirrored into the observability registry. The
//! split matters for tuning: a workload whose flushes are almost all
//! explicit gains nothing from larger buffers, while one dominated by
//! `ThresholdMsgs` drains may benefit from raising `max_msgs`.

//!
//! # Failure handling
//!
//! Sends can fail (see [`TransportError`]). Transient rejections — modeled
//! injection-FIFO backpressure — are retried here with exponential backoff,
//! bounded by the coalescer's `send_timeout`; the paper's transport does the
//! same inside PAMI. Terminal failures (dead destination) and exhausted
//! retry surface to the caller as a [`SendError`], with the affected
//! envelope counts, so the scheduler can account for the loss and the
//! protocol layers above can degrade instead of blocking.

use crate::arena::{ArenaCounts, EnvelopeArena};
use crate::message::{BatchPayload, Envelope, MsgClass};
use crate::place::PlaceId;
use crate::transport::{SendError, Transport, TransportError};
use obs::metrics::{Counter, MetricsRegistry};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Default flush threshold: messages buffered per destination.
pub const DEFAULT_MAX_MSGS: usize = 64;

/// Default flush threshold: modeled bytes buffered per destination.
pub const DEFAULT_MAX_BYTES: usize = 16 * 1024;

/// Default bound on retrying a transiently rejected send before giving up
/// with [`TransportError::Timeout`].
pub const DEFAULT_SEND_TIMEOUT: Duration = Duration::from_millis(5);

/// First backoff sleep after a transient rejection; doubles per retry.
const RETRY_BACKOFF_BASE: Duration = Duration::from_micros(5);

/// Backoff ceiling.
const RETRY_BACKOFF_CAP: Duration = Duration::from_micros(200);

/// One destination's aggregation buffer. The envelopes live directly inside
/// a boxed [`BatchPayload`], so a flush *swaps* the box out (replacing it
/// with a recycled one from the arena) and ships it as the batch envelope's
/// payload — no per-message copy, no per-flush allocation in steady state.
struct Buf {
    payload: Box<BatchPayload>,
    bytes: usize,
}

impl Buf {
    fn new() -> Self {
        Buf {
            payload: Box::new(BatchPayload { envs: Vec::new() }),
            bytes: 0,
        }
    }
}

/// Why a destination buffer was drained.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The buffer reached the `max_msgs` message-count threshold.
    ThresholdMsgs,
    /// The buffer reached the `max_bytes` byte threshold.
    ThresholdBytes,
    /// An explicit [`Coalescer::flush`] / [`Coalescer::flush_dest`] call —
    /// end of a scheduling quantum, before parking, on worker exit.
    Explicit,
}

/// Per-reason drain counts of one coalescer (one count per non-empty buffer
/// drained, not per message).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FlushCounts {
    /// Drains tripped by the message-count threshold.
    pub threshold_msgs: u64,
    /// Drains tripped by the byte threshold.
    pub threshold_bytes: u64,
    /// Drains from explicit flush calls.
    pub explicit: u64,
}

impl FlushCounts {
    /// Total drains, all reasons.
    pub fn total(&self) -> u64 {
        self.threshold_msgs + self.threshold_bytes + self.explicit
    }
}

/// Resolved observability counters mirroring [`FlushCounts`] (shared across
/// the runtime; this coalescer's shard is its owning place).
struct FlushHooks {
    threshold_msgs: Counter,
    threshold_bytes: Counter,
    explicit: Counter,
}

/// Per-sender aggregation buffers, one per destination place *actually
/// written to* — allocated lazily on first contact, so a sender in a
/// 4,096-place world pays for the handful of destinations it talks to, not
/// all 4,096 (one coalescer per place makes eager per-destination buffers
/// quadratic in the place count).
///
/// Not `Sync` — each sending thread owns its own coalescer, which is what
/// keeps the buffers lock-free.
pub struct Coalescer {
    from: PlaceId,
    max_msgs: usize,
    max_bytes: usize,
    enabled: bool,
    /// Destination index → its buffer. A flushed buffer stays in the map
    /// (emptied, its box refilled from the arena) so steady-state traffic
    /// never re-hashes or re-allocates.
    bufs: HashMap<usize, Buf>,
    /// Destinations with a non-empty buffer (so flush skips the rest).
    dirty: Vec<usize>,
    /// Per-reason drain counts (local tally, always maintained).
    counts: FlushCounts,
    /// Shared observability counters (mirrored on every drain when wired).
    hooks: Option<FlushHooks>,
    /// Bound on retrying transiently rejected sends.
    send_timeout: Duration,
    /// Freelist of batch boxes (flushes take from it, the receive path
    /// recycles into it via [`Coalescer::recycle_batch`]).
    arena: EnvelopeArena,
}

impl Coalescer {
    /// A coalescer for messages sent by `from` across `places` places.
    ///
    /// `max_msgs` / `max_bytes` are the per-destination flush thresholds
    /// (values < 1 are clamped to 1). With `enabled == false` every send
    /// passes straight through to the transport — the ablation baseline.
    /// Destination buffers are created on first contact, so `places` only
    /// documents the world size; it costs nothing here.
    pub fn new(
        from: PlaceId,
        places: usize,
        max_msgs: usize,
        max_bytes: usize,
        enabled: bool,
    ) -> Self {
        let _ = places;
        Coalescer {
            from,
            max_msgs: max_msgs.max(1),
            max_bytes: max_bytes.max(1),
            enabled,
            bufs: HashMap::new(),
            dirty: Vec::new(),
            counts: FlushCounts::default(),
            hooks: None,
            send_timeout: DEFAULT_SEND_TIMEOUT,
            arena: EnvelopeArena::new(from.0),
        }
    }

    /// Disable batch-box recycling (builder style) — the `arena_disable`
    /// ablation knob. Flushes then allocate a fresh box each time, exactly
    /// the pre-arena behaviour.
    pub fn with_arena_disabled(mut self) -> Self {
        self.arena.set_enabled(false);
        self
    }

    /// Override the bound on retrying transiently rejected sends (builder
    /// style). Retry sleeps exponentially from microseconds up; once
    /// `timeout` has elapsed the send fails with
    /// [`TransportError::Timeout`].
    pub fn with_send_timeout(mut self, timeout: Duration) -> Self {
        self.send_timeout = timeout;
        self
    }

    /// Mirror every drain into the shared metrics registry (builder style):
    /// resolves the three `coalescer.flush.*` counters once, so the hot
    /// path stays a relaxed increment on this place's shard.
    pub fn with_obs(mut self, metrics: &MetricsRegistry) -> Self {
        self.hooks = Some(FlushHooks {
            threshold_msgs: metrics.counter(obs::names::COALESCE_FLUSH_THRESHOLD_MSGS),
            threshold_bytes: metrics.counter(obs::names::COALESCE_FLUSH_THRESHOLD_BYTES),
            explicit: metrics.counter(obs::names::COALESCE_FLUSH_EXPLICIT),
        });
        self.arena.wire_obs(metrics);
        self
    }

    /// Is aggregation active (false = pass-through)?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Per-reason drain counts so far (threshold-tripped vs explicit).
    pub fn flush_counts(&self) -> FlushCounts {
        self.counts
    }

    /// Attribute one non-empty buffer drain to `reason`.
    fn record_drain(&mut self, reason: FlushReason) {
        let (tally, hook) = match reason {
            FlushReason::ThresholdMsgs => (
                &mut self.counts.threshold_msgs,
                self.hooks.as_ref().map(|h| &h.threshold_msgs),
            ),
            FlushReason::ThresholdBytes => (
                &mut self.counts.threshold_bytes,
                self.hooks.as_ref().map(|h| &h.threshold_bytes),
            ),
            FlushReason::Explicit => (
                &mut self.counts.explicit,
                self.hooks.as_ref().map(|h| &h.explicit),
            ),
        };
        *tally += 1;
        if let Some(c) = hook {
            c.inc(self.from.0);
        }
    }

    /// Route one outgoing message: buffer it (flushing its destination if a
    /// threshold trips) or pass it straight through when disabled. An error
    /// means the message (or, on a threshold flush, its destination's whole
    /// buffer) could not be delivered — see [`SendError`] for what was lost.
    pub fn send(&mut self, transport: &dyn Transport, env: Envelope) -> Result<(), SendError> {
        debug_assert_eq!(env.from, self.from, "coalescer owned by another place");
        if !self.enabled {
            return send_with_retry(transport, env, self.send_timeout);
        }
        let dest = env.to.index();
        let buf = self.bufs.entry(dest).or_insert_with(Buf::new);
        if buf.payload.envs.is_empty() {
            self.dirty.push(dest);
        }
        buf.bytes += env.bytes;
        buf.payload.envs.push(env);
        if buf.payload.envs.len() >= self.max_msgs {
            self.flush_dest_reason(transport, dest, FlushReason::ThresholdMsgs)
        } else if buf.bytes >= self.max_bytes {
            self.flush_dest_reason(transport, dest, FlushReason::ThresholdBytes)
        } else {
            Ok(())
        }
    }

    /// Drain one destination's buffer onto the transport (an explicit flush
    /// for the reason accounting).
    pub fn flush_dest(&mut self, transport: &dyn Transport, dest: usize) -> Result<(), SendError> {
        self.flush_dest_reason(transport, dest, FlushReason::Explicit)
    }

    fn flush_dest_reason(
        &mut self,
        transport: &dyn Transport,
        dest: usize,
        reason: FlushReason,
    ) -> Result<(), SendError> {
        match self.bufs.get(&dest) {
            None => return Ok(()),
            Some(b) if b.payload.envs.is_empty() => return Ok(()),
            Some(_) => {}
        }
        // Swap the buffer box out (refilling from the arena) instead of
        // copying its envelopes — the box itself becomes the batch payload.
        let fresh = self.arena.take();
        let buf = self.bufs.get_mut(&dest).expect("checked above");
        let payload = std::mem::replace(&mut buf.payload, fresh);
        buf.bytes = 0;
        if let Some(pos) = self.dirty.iter().position(|&d| d == dest) {
            self.dirty.swap_remove(pos);
        }
        self.record_drain(reason);
        self.emit(transport, PlaceId(dest as u32), payload)
    }

    /// Drain every non-empty buffer onto the transport. Must run at every
    /// point where the owner stops producing sends (end of a scheduling
    /// quantum, before parking, on exit) — see the module docs. Each
    /// destination drained counts as one [`FlushReason::Explicit`] drain.
    ///
    /// A failing destination does not block the others: every buffer is
    /// drained regardless, and the first error (with the combined loss
    /// accounting) is returned afterwards.
    pub fn flush(&mut self, transport: &dyn Transport) -> Result<(), SendError> {
        let mut first: Option<SendError> = None;
        while let Some(dest) = self.dirty.pop() {
            match self.bufs.get(&dest) {
                None => continue,
                Some(b) if b.payload.envs.is_empty() => continue,
                Some(_) => {}
            }
            let fresh = self.arena.take();
            let buf = self.bufs.get_mut(&dest).expect("checked above");
            let payload = std::mem::replace(&mut buf.payload, fresh);
            buf.bytes = 0;
            self.record_drain(FlushReason::Explicit);
            if let Err(e) = self.emit(transport, PlaceId(dest as u32), payload) {
                match &mut first {
                    Some(f) => {
                        f.dropped += e.dropped;
                        f.retry.extend(e.retry);
                    }
                    None => first = Some(e),
                }
            }
        }
        match first {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Hand a drained buffer to the transport: a single message goes out as
    /// itself (the transport records it, the emptied box is recycled);
    /// several ship as one batch envelope built *around* the buffer box,
    /// with the logical counts recorded here once the envelope is accepted
    /// (so messages lost to a dead destination never enter the ledgers).
    fn emit(
        &mut self,
        transport: &dyn Transport,
        dest: PlaceId,
        mut payload: Box<BatchPayload>,
    ) -> Result<(), SendError> {
        debug_assert!(!payload.envs.is_empty());
        if payload.envs.len() == 1 {
            let env = payload.envs.pop().expect("len checked");
            self.arena.recycle(payload);
            return send_with_retry(transport, env, self.send_timeout);
        }
        // Every message in a buffer shares (from, to) by construction, so
        // the logical-stats ledger collapses to per-class (count, bytes)
        // sums — a handful of atomic adds per batch instead of four per
        // message.
        let mut per_class = [(0u64, 0u64); MsgClass::ALL.len()];
        for e in &payload.envs {
            let slot = &mut per_class[e.class.index()];
            slot.0 += 1;
            slot.1 += e.bytes as u64;
        }
        send_with_retry(
            transport,
            Envelope::batch_boxed(self.from, dest, payload),
            self.send_timeout,
        )?;
        let stats = transport.stats();
        for (i, &(count, bytes)) in per_class.iter().enumerate() {
            stats.record_send_many(self.from.0, dest.0, MsgClass::ALL[i], count, bytes);
        }
        Ok(())
    }

    /// Return a received batch box to the freelist so the next flush can
    /// reuse it. Under symmetric traffic this is what keeps the arena fed —
    /// the scheduler calls it after dispatching a batch's inner messages.
    pub fn recycle_batch(&mut self, payload: Box<BatchPayload>) {
        self.arena.recycle(payload);
    }

    /// Arena traffic tally (hits/misses/recycled/discarded).
    pub fn arena_counts(&self) -> ArenaCounts {
        self.arena.counts()
    }

    /// Total messages currently buffered (diagnostics / tests).
    pub fn pending(&self) -> usize {
        self.dirty
            .iter()
            .map(|&d| self.bufs.get(&d).map_or(0, |b| b.payload.envs.len()))
            .sum()
    }

    /// Total modeled bytes currently buffered across all destinations
    /// (diagnostics / runtime introspection).
    pub fn pending_bytes(&self) -> usize {
        self.dirty
            .iter()
            .map(|&d| self.bufs.get(&d).map_or(0, |b| b.bytes))
            .sum()
    }

    /// Destination buffers materialized so far (diagnostics / tests): the
    /// number of places this sender has ever coalesced traffic for.
    pub fn bufs_allocated(&self) -> usize {
        self.bufs.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }
}

/// Submit one envelope, retrying transient rejections with exponential
/// backoff until `send_timeout` elapses. Terminal errors pass through;
/// exhausted retry fails with [`TransportError::Timeout`] and destroys the
/// envelope.
fn send_with_retry(
    transport: &dyn Transport,
    env: Envelope,
    send_timeout: Duration,
) -> Result<(), SendError> {
    let mut env = env;
    let mut backoff = RETRY_BACKOFF_BASE;
    let mut deadline: Option<Instant> = None;
    loop {
        match transport.send(env) {
            Ok(()) => return Ok(()),
            Err(mut e) => {
                if e.retry.is_empty() {
                    return Err(e); // terminal: nothing to resubmit
                }
                let now = Instant::now();
                if now >= *deadline.get_or_insert(now + send_timeout) {
                    return Err(SendError {
                        error: TransportError::Timeout { place: e.place() },
                        dropped: e.dropped + e.retry.len(),
                        retry: Vec::new(),
                    });
                }
                debug_assert_eq!(e.retry.len(), 1, "scalar send returns one envelope");
                env = e.retry.pop().expect("retryable send returns the envelope");
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(RETRY_BACKOFF_CAP);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgClass, HEADER_BYTES};
    use crate::transport::LocalTransport;

    fn env(to: u32, tag: u64) -> Envelope {
        Envelope::new(PlaceId(0), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
    }

    /// Drain place `p`, unpacking batches, returning tags in arrival order.
    fn drain_tags(t: &LocalTransport, p: u32) -> Vec<u64> {
        let mut tags = Vec::new();
        while let Some(e) = t.try_recv(PlaceId(p)) {
            match e.unbatch() {
                Ok(inner) => {
                    for e in inner {
                        tags.push(*e.payload.downcast::<u64>().unwrap());
                    }
                }
                Err(e) => tags.push(*e.payload.downcast::<u64>().unwrap()),
            }
        }
        tags
    }

    #[test]
    fn buffers_until_flush() {
        let t = LocalTransport::new(3);
        let mut c = Coalescer::new(PlaceId(0), 3, 64, 1 << 20, true);
        for i in 0..5u64 {
            c.send(&t, env(1, i)).unwrap();
        }
        assert_eq!(c.pending(), 5);
        assert_eq!(t.queue_len(PlaceId(1)), 0);
        c.flush(&t).unwrap();
        assert!(c.is_empty());
        assert_eq!(t.queue_len(PlaceId(1)), 1); // one batch envelope
        assert_eq!(drain_tags(&t, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn msg_threshold_trips_flush() {
        let t = LocalTransport::new(2);
        let mut c = Coalescer::new(PlaceId(0), 2, 4, 1 << 20, true);
        for i in 0..4u64 {
            c.send(&t, env(1, i)).unwrap();
        }
        // Fourth message hit max_msgs: the batch went out without flush().
        assert!(c.is_empty());
        assert_eq!(t.queue_len(PlaceId(1)), 1);
    }

    #[test]
    fn byte_threshold_trips_flush() {
        let t = LocalTransport::new(2);
        let per_msg = 8 + HEADER_BYTES;
        let mut c = Coalescer::new(PlaceId(0), 2, 1024, 3 * per_msg, true);
        c.send(&t, env(1, 0)).unwrap();
        c.send(&t, env(1, 1)).unwrap();
        assert_eq!(c.pending(), 2);
        c.send(&t, env(1, 2)).unwrap(); // crosses the byte threshold
        assert!(c.is_empty());
        assert_eq!(t.queue_len(PlaceId(1)), 1);
    }

    #[test]
    fn disabled_passes_through() {
        let t = LocalTransport::new(2);
        let mut c = Coalescer::new(PlaceId(0), 2, 64, 1 << 20, false);
        for i in 0..5u64 {
            c.send(&t, env(1, i)).unwrap();
        }
        assert!(c.is_empty());
        assert_eq!(t.queue_len(PlaceId(1)), 5);
        assert_eq!(t.stats().total_envelopes(), 5);
        assert_eq!(drain_tags(&t, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_message_flushes_as_scalar() {
        let t = LocalTransport::new(2);
        let mut c = Coalescer::new(PlaceId(0), 2, 64, 1 << 20, true);
        c.send(&t, env(1, 7)).unwrap();
        c.flush(&t).unwrap();
        let got = t.try_recv(PlaceId(1)).unwrap();
        assert_eq!(got.class, MsgClass::Task); // not wrapped in a batch
        assert_eq!(t.stats().total_messages(), 1);
        assert_eq!(t.stats().total_envelopes(), 1);
    }

    #[test]
    fn logical_counts_identical_both_modes() {
        let run = |enabled: bool| {
            let t = LocalTransport::new(3);
            let mut c = Coalescer::new(PlaceId(0), 3, 8, 1 << 20, enabled);
            for i in 0..20u64 {
                c.send(&t, env(1 + (i % 2) as u32, i)).unwrap();
            }
            c.flush(&t).unwrap();
            (
                t.stats().total_messages(),
                t.stats().class(MsgClass::Task).messages,
                t.stats().total_envelopes(),
            )
        };
        let (on_msgs, on_task, on_envs) = run(true);
        let (off_msgs, off_task, off_envs) = run(false);
        assert_eq!(on_msgs, off_msgs);
        assert_eq!(on_task, off_task);
        assert!(on_envs < off_envs, "{on_envs} !< {off_envs}");
    }

    #[test]
    fn aggregation_saves_header_bytes() {
        let t = LocalTransport::new(2);
        let mut c = Coalescer::new(PlaceId(0), 2, 64, 1 << 20, true);
        for i in 0..10u64 {
            c.send(&t, env(1, i)).unwrap();
        }
        c.flush(&t).unwrap();
        let logical = t.stats().total_bytes();
        let physical = t.stats().envelope_bytes();
        // 10 logical headers collapse into 1 physical header.
        assert_eq!(logical - physical, 9 * HEADER_BYTES as u64);
    }

    #[test]
    fn flush_reasons_attributed() {
        let t = LocalTransport::new(3);
        let mut c = Coalescer::new(PlaceId(0), 3, 4, 1 << 20, true);
        // Four messages to place 1: message-count threshold trips once.
        for i in 0..4u64 {
            c.send(&t, env(1, i)).unwrap();
        }
        // Two messages to place 2 left buffered: one explicit drain.
        c.send(&t, env(2, 4)).unwrap();
        c.send(&t, env(2, 5)).unwrap();
        c.flush(&t).unwrap();
        assert_eq!(
            c.flush_counts(),
            FlushCounts {
                threshold_msgs: 1,
                threshold_bytes: 0,
                explicit: 1,
            }
        );
        assert_eq!(c.flush_counts().total(), 2);
        // Byte threshold next (count threshold out of reach).
        let per_msg = 8 + HEADER_BYTES;
        let mut c = Coalescer::new(PlaceId(0), 3, 1024, 2 * per_msg, true);
        c.send(&t, env(1, 0)).unwrap();
        c.send(&t, env(1, 1)).unwrap();
        assert_eq!(c.flush_counts().threshold_bytes, 1);
        // Empty flushes attribute nothing.
        c.flush(&t).unwrap();
        c.flush_dest(&t, 1).unwrap();
        assert_eq!(c.flush_counts().total(), 1);
    }

    #[test]
    fn count_threshold_wins_reason_tie() {
        // A message that crosses both thresholds at once is attributed to
        // the message-count check (it is evaluated first).
        let t = LocalTransport::new(2);
        let per_msg = 8 + HEADER_BYTES;
        let mut c = Coalescer::new(PlaceId(0), 2, 2, 2 * per_msg, true);
        c.send(&t, env(1, 0)).unwrap();
        c.send(&t, env(1, 1)).unwrap();
        assert_eq!(
            c.flush_counts(),
            FlushCounts {
                threshold_msgs: 1,
                threshold_bytes: 0,
                explicit: 0,
            }
        );
    }

    #[test]
    fn obs_counters_mirror_flush_reasons() {
        let metrics = obs::MetricsRegistry::new(2);
        let t = LocalTransport::new(3);
        let mut c = Coalescer::new(PlaceId(1), 3, 2, 1 << 20, true).with_obs(&metrics);
        c.send(&t, env_from(1, 2, 0)).unwrap();
        c.send(&t, env_from(1, 2, 1)).unwrap(); // trips max_msgs
        c.send(&t, env_from(1, 2, 2)).unwrap();
        c.flush(&t).unwrap(); // explicit
        let snap = metrics.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get(obs::names::COALESCE_FLUSH_THRESHOLD_MSGS), 1);
        assert_eq!(get(obs::names::COALESCE_FLUSH_THRESHOLD_BYTES), 0);
        assert_eq!(get(obs::names::COALESCE_FLUSH_EXPLICIT), 1);
    }

    fn env_from(from: u32, to: u32, tag: u64) -> Envelope {
        Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
    }

    #[test]
    fn flush_to_dead_place_reports_loss_and_continues() {
        let t = LocalTransport::new(3);
        let mut c = Coalescer::new(PlaceId(0), 3, 64, 1 << 20, true);
        for i in 0..4u64 {
            c.send(&t, env(1, i)).unwrap();
            c.send(&t, env(2, 10 + i)).unwrap();
        }
        t.kill_place(PlaceId(1));
        let err = c.flush(&t).unwrap_err();
        assert!(c.is_empty());
        assert_eq!(err.place(), PlaceId(1));
        assert_eq!(err.dropped, 1); // one batch envelope destroyed
        assert!(err.retry.is_empty());
        // The live destination's buffer still went out, and the dead batch's
        // inner messages never entered the logical ledgers.
        assert_eq!(drain_tags(&t, 2), vec![10, 11, 12, 13]);
        assert_eq!(t.stats().total_messages(), 4);
    }

    #[test]
    fn transient_rejection_retried_until_accepted() {
        use crate::fault::{ClassFaults, FaultPlan, FaultTransport};
        use std::sync::Arc;
        let t = FaultTransport::new(
            Arc::new(LocalTransport::new(2)),
            FaultPlan::new(21).all_classes(ClassFaults::rejecting(0.7)),
        );
        let mut c = Coalescer::new(PlaceId(0), 2, 4, 1 << 20, true)
            .with_send_timeout(std::time::Duration::from_secs(2));
        for i in 0..40u64 {
            c.send(&t, env(1, i)).unwrap();
        }
        c.flush(&t).unwrap();
        assert!(
            t.fault_counts().rejected > 0,
            "p=0.7 over the flushes should reject at least once"
        );
        let mut tags = Vec::new();
        while let Some(e) = t.try_recv(PlaceId(1)) {
            match e.unbatch() {
                Ok(inner) => {
                    for e in inner {
                        tags.push(*e.payload.downcast::<u64>().unwrap());
                    }
                }
                Err(e) => tags.push(*e.payload.downcast::<u64>().unwrap()),
            }
        }
        assert_eq!(tags, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn exhausted_retry_times_out() {
        use crate::fault::{ClassFaults, FaultPlan, FaultTransport};
        use std::sync::Arc;
        let t = FaultTransport::new(
            Arc::new(LocalTransport::new(2)),
            FaultPlan::new(3).all_classes(ClassFaults::rejecting(1.0)),
        );
        let mut c = Coalescer::new(PlaceId(0), 2, 64, 1 << 20, false)
            .with_send_timeout(std::time::Duration::from_millis(1));
        let err = c.send(&t, env(1, 0)).unwrap_err();
        assert_eq!(
            err.error,
            crate::transport::TransportError::Timeout { place: PlaceId(1) }
        );
        assert_eq!(err.dropped, 1);
    }

    #[test]
    fn dest_buffers_materialize_lazily() {
        // A sender in a big world pays only for the destinations it talks
        // to — not a buffer per place.
        let t = LocalTransport::new(4096);
        let mut c = Coalescer::new(PlaceId(0), 4096, 64, 1 << 20, true);
        assert_eq!(c.bufs_allocated(), 0);
        for i in 0..10u64 {
            c.send(&t, env(1 + (i % 2) as u32, i)).unwrap();
        }
        assert_eq!(c.bufs_allocated(), 2);
        c.flush(&t).unwrap();
        // Flushed buffers stay cached for reuse; nothing new appears.
        assert_eq!(c.bufs_allocated(), 2);
        c.send(&t, env(1, 99)).unwrap();
        assert_eq!(c.bufs_allocated(), 2);
        c.flush(&t).unwrap();
        assert_eq!(drain_tags(&t, 1), vec![0, 2, 4, 6, 8, 99]);
        assert_eq!(drain_tags(&t, 2), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn per_dest_fifo_across_interleaved_sends_and_flushes() {
        let t = LocalTransport::new(3);
        let mut c = Coalescer::new(PlaceId(0), 3, 3, 1 << 20, true);
        for i in 0..17u64 {
            c.send(&t, env(1 + (i % 2) as u32, i)).unwrap();
            if i % 5 == 0 {
                c.flush(&t).unwrap();
            }
        }
        c.flush(&t).unwrap();
        assert_eq!(drain_tags(&t, 1), vec![0, 2, 4, 6, 8, 10, 12, 14, 16]);
        assert_eq!(drain_tags(&t, 2), vec![1, 3, 5, 7, 9, 11, 13, 15]);
    }
}
