//! Sender-side message coalescing (transport aggregation).
//!
//! The paper's transport (PAMI on the Power 775) aggregates small active
//! messages headed for the same destination into larger injections,
//! amortizing per-message software and header overhead. [`Coalescer`] models
//! that layer: each sending worker owns one coalescer, routes every outgoing
//! message through [`Coalescer::send`], and the coalescer packs
//! same-destination runs into a single [`MsgClass::Batch`](crate::MsgClass)
//! envelope (see [`Envelope::batch`]).
//!
//! # Flush discipline
//!
//! A buffer drains when it reaches either threshold (`max_msgs` messages or
//! `max_bytes` modeled bytes), and *everything* drains on [`Coalescer::flush`].
//! The owner must call `flush` at every point where it stops producing sends
//! and other parties may wait on the buffered messages — in this codebase the
//! scheduler flushes at the end of each scheduling quantum, before parking,
//! and on worker exit, so no message ever stays buffered across a point where
//! its destination could be blocked on it. Liveness holds by construction:
//! buffered messages never survive a scheduling quantum.
//!
//! # Ordering
//!
//! Per-(sender, destination) FIFO is preserved: a sender's messages to one
//! destination all funnel through the same buffer in program order, and the
//! resulting envelopes (scalar or batch) travel the transport's FIFO path.
//! This only holds if *all* of a sender's traffic to a destination goes
//! through the coalescer — bypassing it for some messages lets them overtake
//! buffered ones.
//!
//! # Statistics
//!
//! Logical per-class message counts are recorded exactly once per message,
//! whichever path it takes: the transport counts scalar envelopes itself and
//! skips `Batch` envelopes, while the coalescer counts the inner messages of
//! a batch at pack time. Physical envelope counts always come from the
//! transport. Toggling aggregation therefore changes envelope counts but
//! never logical protocol counts.
//!
//! Every buffer drain is additionally attributed to a [`FlushReason`] —
//! threshold-tripped (by message count or by bytes) vs explicit — readable
//! via [`Coalescer::flush_counts`] and, when the coalescer is built
//! [`Coalescer::with_obs`], mirrored into the observability registry. The
//! split matters for tuning: a workload whose flushes are almost all
//! explicit gains nothing from larger buffers, while one dominated by
//! `ThresholdMsgs` drains may benefit from raising `max_msgs`.

use crate::message::Envelope;
use crate::place::PlaceId;
use crate::transport::Transport;
use obs::metrics::{Counter, MetricsRegistry};

/// Default flush threshold: messages buffered per destination.
pub const DEFAULT_MAX_MSGS: usize = 64;

/// Default flush threshold: modeled bytes buffered per destination.
pub const DEFAULT_MAX_BYTES: usize = 16 * 1024;

#[derive(Default)]
struct Buf {
    envs: Vec<Envelope>,
    bytes: usize,
}

/// Why a destination buffer was drained.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The buffer reached the `max_msgs` message-count threshold.
    ThresholdMsgs,
    /// The buffer reached the `max_bytes` byte threshold.
    ThresholdBytes,
    /// An explicit [`Coalescer::flush`] / [`Coalescer::flush_dest`] call —
    /// end of a scheduling quantum, before parking, on worker exit.
    Explicit,
}

/// Per-reason drain counts of one coalescer (one count per non-empty buffer
/// drained, not per message).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FlushCounts {
    /// Drains tripped by the message-count threshold.
    pub threshold_msgs: u64,
    /// Drains tripped by the byte threshold.
    pub threshold_bytes: u64,
    /// Drains from explicit flush calls.
    pub explicit: u64,
}

impl FlushCounts {
    /// Total drains, all reasons.
    pub fn total(&self) -> u64 {
        self.threshold_msgs + self.threshold_bytes + self.explicit
    }
}

/// Resolved observability counters mirroring [`FlushCounts`] (shared across
/// the runtime; this coalescer's shard is its owning place).
struct FlushHooks {
    threshold_msgs: Counter,
    threshold_bytes: Counter,
    explicit: Counter,
}

/// Per-sender aggregation buffers, one per destination place.
///
/// Not `Sync` — each sending thread owns its own coalescer, which is what
/// keeps the buffers lock-free.
pub struct Coalescer {
    from: PlaceId,
    max_msgs: usize,
    max_bytes: usize,
    enabled: bool,
    bufs: Vec<Buf>,
    /// Destinations with a non-empty buffer (so flush skips the rest).
    dirty: Vec<usize>,
    /// Per-reason drain counts (local tally, always maintained).
    counts: FlushCounts,
    /// Shared observability counters (mirrored on every drain when wired).
    hooks: Option<FlushHooks>,
}

impl Coalescer {
    /// A coalescer for messages sent by `from` across `places` places.
    ///
    /// `max_msgs` / `max_bytes` are the per-destination flush thresholds
    /// (values < 1 are clamped to 1). With `enabled == false` every send
    /// passes straight through to the transport — the ablation baseline.
    pub fn new(
        from: PlaceId,
        places: usize,
        max_msgs: usize,
        max_bytes: usize,
        enabled: bool,
    ) -> Self {
        Coalescer {
            from,
            max_msgs: max_msgs.max(1),
            max_bytes: max_bytes.max(1),
            enabled,
            bufs: (0..places).map(|_| Buf::default()).collect(),
            dirty: Vec::new(),
            counts: FlushCounts::default(),
            hooks: None,
        }
    }

    /// Mirror every drain into the shared metrics registry (builder style):
    /// resolves the three `coalescer.flush.*` counters once, so the hot
    /// path stays a relaxed increment on this place's shard.
    pub fn with_obs(mut self, metrics: &MetricsRegistry) -> Self {
        self.hooks = Some(FlushHooks {
            threshold_msgs: metrics.counter(obs::names::COALESCE_FLUSH_THRESHOLD_MSGS),
            threshold_bytes: metrics.counter(obs::names::COALESCE_FLUSH_THRESHOLD_BYTES),
            explicit: metrics.counter(obs::names::COALESCE_FLUSH_EXPLICIT),
        });
        self
    }

    /// Is aggregation active (false = pass-through)?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Per-reason drain counts so far (threshold-tripped vs explicit).
    pub fn flush_counts(&self) -> FlushCounts {
        self.counts
    }

    /// Attribute one non-empty buffer drain to `reason`.
    fn record_drain(&mut self, reason: FlushReason) {
        let (tally, hook) = match reason {
            FlushReason::ThresholdMsgs => (
                &mut self.counts.threshold_msgs,
                self.hooks.as_ref().map(|h| &h.threshold_msgs),
            ),
            FlushReason::ThresholdBytes => (
                &mut self.counts.threshold_bytes,
                self.hooks.as_ref().map(|h| &h.threshold_bytes),
            ),
            FlushReason::Explicit => (
                &mut self.counts.explicit,
                self.hooks.as_ref().map(|h| &h.explicit),
            ),
        };
        *tally += 1;
        if let Some(c) = hook {
            c.inc(self.from.0);
        }
    }

    /// Route one outgoing message: buffer it (flushing its destination if a
    /// threshold trips) or pass it straight through when disabled.
    pub fn send(&mut self, transport: &dyn Transport, env: Envelope) {
        debug_assert_eq!(env.from, self.from, "coalescer owned by another place");
        if !self.enabled {
            transport.send(env);
            return;
        }
        let dest = env.to.index();
        let buf = &mut self.bufs[dest];
        if buf.envs.is_empty() {
            self.dirty.push(dest);
        }
        buf.bytes += env.bytes;
        buf.envs.push(env);
        if buf.envs.len() >= self.max_msgs {
            self.flush_dest_reason(transport, dest, FlushReason::ThresholdMsgs);
        } else if buf.bytes >= self.max_bytes {
            self.flush_dest_reason(transport, dest, FlushReason::ThresholdBytes);
        }
    }

    /// Drain one destination's buffer onto the transport (an explicit flush
    /// for the reason accounting).
    pub fn flush_dest(&mut self, transport: &dyn Transport, dest: usize) {
        self.flush_dest_reason(transport, dest, FlushReason::Explicit);
    }

    fn flush_dest_reason(&mut self, transport: &dyn Transport, dest: usize, reason: FlushReason) {
        let buf = &mut self.bufs[dest];
        if buf.envs.is_empty() {
            return;
        }
        let envs = std::mem::take(&mut buf.envs);
        buf.bytes = 0;
        if let Some(pos) = self.dirty.iter().position(|&d| d == dest) {
            self.dirty.swap_remove(pos);
        }
        self.record_drain(reason);
        emit(transport, self.from, PlaceId(dest as u32), envs);
    }

    /// Drain every non-empty buffer onto the transport. Must run at every
    /// point where the owner stops producing sends (end of a scheduling
    /// quantum, before parking, on exit) — see the module docs. Each
    /// destination drained counts as one [`FlushReason::Explicit`] drain.
    pub fn flush(&mut self, transport: &dyn Transport) {
        while let Some(dest) = self.dirty.pop() {
            let buf = &mut self.bufs[dest];
            let envs = std::mem::take(&mut buf.envs);
            buf.bytes = 0;
            if !envs.is_empty() {
                self.record_drain(FlushReason::Explicit);
                emit(transport, self.from, PlaceId(dest as u32), envs);
            }
        }
    }

    /// Total messages currently buffered (diagnostics / tests).
    pub fn pending(&self) -> usize {
        self.dirty.iter().map(|&d| self.bufs[d].envs.len()).sum()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }
}

/// Hand a drained buffer to the transport: a single message goes out as
/// itself (the transport records it); several are packed into one batch
/// envelope, with the logical counts recorded here at pack time.
fn emit(transport: &dyn Transport, from: PlaceId, dest: PlaceId, envs: Vec<Envelope>) {
    debug_assert!(!envs.is_empty());
    if envs.len() == 1 {
        transport.send(envs.into_iter().next().expect("len checked"));
        return;
    }
    let stats = transport.stats();
    for e in &envs {
        stats.record_send(e.from.0, e.to.0, e.class, e.bytes);
    }
    transport.send(Envelope::batch(from, dest, envs));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgClass, HEADER_BYTES};
    use crate::transport::LocalTransport;

    fn env(to: u32, tag: u64) -> Envelope {
        Envelope::new(PlaceId(0), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
    }

    /// Drain place `p`, unpacking batches, returning tags in arrival order.
    fn drain_tags(t: &LocalTransport, p: u32) -> Vec<u64> {
        let mut tags = Vec::new();
        while let Some(e) = t.try_recv(PlaceId(p)) {
            match e.unbatch() {
                Ok(inner) => {
                    for e in inner {
                        tags.push(*e.payload.downcast::<u64>().unwrap());
                    }
                }
                Err(e) => tags.push(*e.payload.downcast::<u64>().unwrap()),
            }
        }
        tags
    }

    #[test]
    fn buffers_until_flush() {
        let t = LocalTransport::new(3);
        let mut c = Coalescer::new(PlaceId(0), 3, 64, 1 << 20, true);
        for i in 0..5u64 {
            c.send(&t, env(1, i));
        }
        assert_eq!(c.pending(), 5);
        assert_eq!(t.queue_len(PlaceId(1)), 0);
        c.flush(&t);
        assert!(c.is_empty());
        assert_eq!(t.queue_len(PlaceId(1)), 1); // one batch envelope
        assert_eq!(drain_tags(&t, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn msg_threshold_trips_flush() {
        let t = LocalTransport::new(2);
        let mut c = Coalescer::new(PlaceId(0), 2, 4, 1 << 20, true);
        for i in 0..4u64 {
            c.send(&t, env(1, i));
        }
        // Fourth message hit max_msgs: the batch went out without flush().
        assert!(c.is_empty());
        assert_eq!(t.queue_len(PlaceId(1)), 1);
    }

    #[test]
    fn byte_threshold_trips_flush() {
        let t = LocalTransport::new(2);
        let per_msg = 8 + HEADER_BYTES;
        let mut c = Coalescer::new(PlaceId(0), 2, 1024, 3 * per_msg, true);
        c.send(&t, env(1, 0));
        c.send(&t, env(1, 1));
        assert_eq!(c.pending(), 2);
        c.send(&t, env(1, 2)); // crosses the byte threshold
        assert!(c.is_empty());
        assert_eq!(t.queue_len(PlaceId(1)), 1);
    }

    #[test]
    fn disabled_passes_through() {
        let t = LocalTransport::new(2);
        let mut c = Coalescer::new(PlaceId(0), 2, 64, 1 << 20, false);
        for i in 0..5u64 {
            c.send(&t, env(1, i));
        }
        assert!(c.is_empty());
        assert_eq!(t.queue_len(PlaceId(1)), 5);
        assert_eq!(t.stats().total_envelopes(), 5);
        assert_eq!(drain_tags(&t, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_message_flushes_as_scalar() {
        let t = LocalTransport::new(2);
        let mut c = Coalescer::new(PlaceId(0), 2, 64, 1 << 20, true);
        c.send(&t, env(1, 7));
        c.flush(&t);
        let got = t.try_recv(PlaceId(1)).unwrap();
        assert_eq!(got.class, MsgClass::Task); // not wrapped in a batch
        assert_eq!(t.stats().total_messages(), 1);
        assert_eq!(t.stats().total_envelopes(), 1);
    }

    #[test]
    fn logical_counts_identical_both_modes() {
        let run = |enabled: bool| {
            let t = LocalTransport::new(3);
            let mut c = Coalescer::new(PlaceId(0), 3, 8, 1 << 20, enabled);
            for i in 0..20u64 {
                c.send(&t, env(1 + (i % 2) as u32, i));
            }
            c.flush(&t);
            (
                t.stats().total_messages(),
                t.stats().class(MsgClass::Task).messages,
                t.stats().total_envelopes(),
            )
        };
        let (on_msgs, on_task, on_envs) = run(true);
        let (off_msgs, off_task, off_envs) = run(false);
        assert_eq!(on_msgs, off_msgs);
        assert_eq!(on_task, off_task);
        assert!(on_envs < off_envs, "{on_envs} !< {off_envs}");
    }

    #[test]
    fn aggregation_saves_header_bytes() {
        let t = LocalTransport::new(2);
        let mut c = Coalescer::new(PlaceId(0), 2, 64, 1 << 20, true);
        for i in 0..10u64 {
            c.send(&t, env(1, i));
        }
        c.flush(&t);
        let logical = t.stats().total_bytes();
        let physical = t.stats().envelope_bytes();
        // 10 logical headers collapse into 1 physical header.
        assert_eq!(logical - physical, 9 * HEADER_BYTES as u64);
    }

    #[test]
    fn flush_reasons_attributed() {
        let t = LocalTransport::new(3);
        let mut c = Coalescer::new(PlaceId(0), 3, 4, 1 << 20, true);
        // Four messages to place 1: message-count threshold trips once.
        for i in 0..4u64 {
            c.send(&t, env(1, i));
        }
        // Two messages to place 2 left buffered: one explicit drain.
        c.send(&t, env(2, 4));
        c.send(&t, env(2, 5));
        c.flush(&t);
        assert_eq!(
            c.flush_counts(),
            FlushCounts {
                threshold_msgs: 1,
                threshold_bytes: 0,
                explicit: 1,
            }
        );
        assert_eq!(c.flush_counts().total(), 2);
        // Byte threshold next (count threshold out of reach).
        let per_msg = 8 + HEADER_BYTES;
        let mut c = Coalescer::new(PlaceId(0), 3, 1024, 2 * per_msg, true);
        c.send(&t, env(1, 0));
        c.send(&t, env(1, 1));
        assert_eq!(c.flush_counts().threshold_bytes, 1);
        // Empty flushes attribute nothing.
        c.flush(&t);
        c.flush_dest(&t, 1);
        assert_eq!(c.flush_counts().total(), 1);
    }

    #[test]
    fn count_threshold_wins_reason_tie() {
        // A message that crosses both thresholds at once is attributed to
        // the message-count check (it is evaluated first).
        let t = LocalTransport::new(2);
        let per_msg = 8 + HEADER_BYTES;
        let mut c = Coalescer::new(PlaceId(0), 2, 2, 2 * per_msg, true);
        c.send(&t, env(1, 0));
        c.send(&t, env(1, 1));
        assert_eq!(
            c.flush_counts(),
            FlushCounts {
                threshold_msgs: 1,
                threshold_bytes: 0,
                explicit: 0,
            }
        );
    }

    #[test]
    fn obs_counters_mirror_flush_reasons() {
        let metrics = obs::MetricsRegistry::new(2);
        let t = LocalTransport::new(3);
        let mut c = Coalescer::new(PlaceId(1), 3, 2, 1 << 20, true).with_obs(&metrics);
        c.send(&t, env_from(1, 2, 0));
        c.send(&t, env_from(1, 2, 1)); // trips max_msgs
        c.send(&t, env_from(1, 2, 2));
        c.flush(&t); // explicit
        let snap = metrics.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get(obs::names::COALESCE_FLUSH_THRESHOLD_MSGS), 1);
        assert_eq!(get(obs::names::COALESCE_FLUSH_THRESHOLD_BYTES), 0);
        assert_eq!(get(obs::names::COALESCE_FLUSH_EXPLICIT), 1);
    }

    fn env_from(from: u32, to: u32, tag: u64) -> Envelope {
        Envelope::new(PlaceId(from), PlaceId(to), MsgClass::Task, 8, Box::new(tag))
    }

    #[test]
    fn per_dest_fifo_across_interleaved_sends_and_flushes() {
        let t = LocalTransport::new(3);
        let mut c = Coalescer::new(PlaceId(0), 3, 3, 1 << 20, true);
        for i in 0..17u64 {
            c.send(&t, env(1 + (i % 2) as u32, i));
            if i % 5 == 0 {
                c.flush(&t);
            }
        }
        c.flush(&t);
        assert_eq!(drain_tags(&t, 1), vec![0, 2, 4, 6, 8, 10, 12, 14, 16]);
        assert_eq!(drain_tags(&t, 2), vec![1, 3, 5, 7, 9, 11, 13, 15]);
    }
}
