//! Wire codec: the byte-level protocol for serialized messages.
//!
//! The paper's X10RT back-ends (PAMI, MPI, sockets) all move *bytes*; the
//! upper layer registers active-message handlers and sends (handler id,
//! serialized arguments) pairs. This module is that contract for this
//! reproduction: a fixed little-endian per-message header (version, class,
//! handler id, causal id, lengths) followed by opaque argument bytes, plus
//! the frame and handshake layouts the TCP back-end ([`crate::tcp`]) puts on
//! real sockets. The full byte-level specification lives in `PROTOCOL.md` at
//! the repository root; a doc-constants test pins that document to the
//! constants defined here.
//!
//! Two codec modes exist ([`CodecMode`]):
//!
//! * **`Inline`** — the historical in-process fast path: payloads stay typed
//!   boxes (`Box<FinishMsg>`, closures, …) and never touch bytes. This is
//!   the default; it is what the benchmark ratchet measures.
//! * **`Bytes`** — every protocol send is eagerly encoded into a
//!   [`WireMsg`] (handler id + argument bytes) and dispatch goes through the
//!   receiver's handler registry. Cross-process transports require this
//!   mode; in-process runs can opt in to pay (and measure) the codec cost.
//!
//! Payloads that are *not* serializable (spawned closures, `Box<dyn Any>`
//! team data) ride along as [`WireMsg::inline`] — legal in-process, a typed
//! [`EncodeError::NotSerializable`] across a real process boundary. This
//! mirrors X10 honestly: X10's compiler serializes closure environments;
//! Rust cannot, so cross-process work ships as registered *commands*
//! (handler id + bytes) instead.

use crate::message::{CausalId, MsgClass, Payload};

/// Protocol version carried in every message header and handshake. Bump on
/// any incompatible layout change; peers with different versions refuse to
/// connect (see `PROTOCOL.md` § versioning).
pub const PROTO_VERSION: u16 = 1;

/// Size of the fixed per-message header, in bytes. Deliberately equal to the
/// *modeled* [`crate::message::HEADER_BYTES`] charged by every envelope —
/// the byte ledgers and the real wire agree on header cost.
pub const MSG_HEADER_BYTES: usize = 32;

/// Size of the per-frame header (after the 4-byte length prefix), in bytes.
pub const FRAME_HEADER_BYTES: usize = 20;

/// Size of the connection handshake message, in bytes.
pub const HANDSHAKE_BYTES: usize = 24;

/// Magic bytes opening every frame header.
pub const FRAME_MAGIC: [u8; 4] = *b"X10F";

/// Magic bytes opening a handshake.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"X10H";

/// Magic bytes opening a handshake *rejection* (sent in place of the
/// handshake reply, then the connection closes).
pub const ERROR_MAGIC: [u8; 4] = *b"X10E";

/// Message-header flag: a causal id is present (root/seq fields are valid).
pub const FLAG_CAUSAL: u8 = 0x01;

/// Message-header flag: a non-serializable payload part was parked in the
/// sending transport's in-process stash; the first 8 argument bytes are the
/// stash key. Only legal when sender and receiver share an address space
/// (the TCP back-end's self-loop mode).
pub const FLAG_STASH: u8 = 0x02;

/// Message-header flag (reserved): the message belongs to a resilient
/// finish scope. Reserved in previously-must-be-zero flag space per the
/// PROTOCOL.md § 6 compatible-extension rule — no `PROTO_VERSION` bump.
/// Encoders do not set it yet: resilient-finish control traffic is fully
/// expressed in the `FinishMsg` tag space (PROTOCOL.md § 4), and the bit is
/// claimed now so a future fast-path router can classify resilient traffic
/// without decoding the payload.
pub const FLAG_RESILIENT: u8 = 0x04;

/// Identifies a registered message handler (an active-message id).
///
/// Numbering (see `PROTOCOL.md` § handler registry): `0` is invalid /
/// "payload is stash-only", `1..=1023` are reserved for the runtime, and
/// application handlers start at [`HandlerId::FIRST_APP`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct HandlerId(pub u32);

impl HandlerId {
    /// Reserved "no handler" id (a stash-only message).
    pub const INVALID: HandlerId = HandlerId(0);
    /// First id available to application handlers; everything below is
    /// reserved for the runtime.
    pub const FIRST_APP: HandlerId = HandlerId(1024);

    /// Is this a runtime-reserved id (`1..=1023`)?
    pub fn is_runtime(self) -> bool {
        self.0 >= 1 && self.0 < Self::FIRST_APP.0
    }

    /// Is this an application id (`>= 1024`)?
    pub fn is_app(self) -> bool {
        self.0 >= Self::FIRST_APP.0
    }
}

impl std::fmt::Display for HandlerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Runtime handler id: a spawned activity (attach + body).
pub const H_SPAWN: HandlerId = HandlerId(1);
/// Runtime handler id: finish termination-control traffic (`FinishMsg`).
pub const H_FINISH: HandlerId = HandlerId(2);
/// Runtime handler id: team collective fragments (`TeamWire`).
pub const H_TEAM: HandlerId = HandlerId(3);
/// Runtime handler id: clock barrier control (`ClockMsg`).
pub const H_CLOCK: HandlerId = HandlerId(4);
/// Runtime handler id: orderly shutdown of a serving process.
pub const H_SHUTDOWN: HandlerId = HandlerId(5);
/// Runtime handler id: a fault-injection marker envelope in transit (the
/// chaos layer's phantom duplicates and truncation husks must cross a real
/// wire too, so receive-edge filtering stays observable under TCP).
pub const H_MARKER: HandlerId = HandlerId(6);
/// Runtime handler id: observability-plane traffic (`ObsMsg`) — metrics
/// snapshot and causal-segment shipping to rank 0, and the live status
/// query/reply pair.
pub const H_OBS: HandlerId = HandlerId(7);

/// Which payload representation the runtime uses for protocol sends.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum CodecMode {
    /// Typed in-process boxes, no serialization (the fast path, default).
    #[default]
    Inline,
    /// Eagerly encode every protocol message into a [`WireMsg`]; dispatch
    /// through the handler registry. Required for cross-process transports.
    Bytes,
}

impl CodecMode {
    /// Command-line / display name.
    pub fn label(self) -> &'static str {
        match self {
            CodecMode::Inline => "inline",
            CodecMode::Bytes => "bytes",
        }
    }

    /// Parse a command-line name.
    pub fn parse(s: &str) -> Option<CodecMode> {
        match s {
            "inline" => Some(CodecMode::Inline),
            "bytes" => Some(CodecMode::Bytes),
            _ => None,
        }
    }
}

/// A serialized message: a registered handler id plus its argument bytes.
///
/// This is what `CodecMode::Bytes` puts inside every envelope in place of a
/// typed box. The transport layer can put `handler` + `args` on a real wire
/// verbatim; [`WireMsg::inline`] carries any non-serializable remainder (a
/// closure body, `Box<dyn Any>` team data) that can only travel in-process.
pub struct WireMsg {
    /// The registered handler that decodes and executes `args`.
    pub handler: HandlerId,
    /// Serialized arguments (layout is the handler's contract).
    pub args: Vec<u8>,
    /// Non-serializable payload part riding along in-process, if any.
    pub inline: Option<Payload>,
}

impl std::fmt::Debug for WireMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireMsg")
            .field("handler", &self.handler)
            .field("args_len", &self.args.len())
            .field("has_inline", &self.inline.is_some())
            .finish()
    }
}

impl WireMsg {
    /// A fully-serializable message (no inline part).
    pub fn new(handler: HandlerId, args: Vec<u8>) -> Self {
        WireMsg {
            handler,
            args,
            inline: None,
        }
    }

    /// A message with a non-serializable in-process part attached.
    pub fn with_inline(handler: HandlerId, args: Vec<u8>, inline: Payload) -> Self {
        WireMsg {
            handler,
            args,
            inline: Some(inline),
        }
    }
}

/// Typed decoding failure. Decoders return these for *any* malformed input
/// — truncation, garbage, bad versions — and never panic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Input ended before a fixed-size field or declared length.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes that were available.
        have: usize,
    },
    /// A magic prefix did not match.
    BadMagic {
        /// The magic the decoder expected.
        expected: [u8; 4],
        /// What arrived instead.
        got: [u8; 4],
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our [`PROTO_VERSION`].
        ours: u16,
        /// The version the peer declared.
        theirs: u16,
    },
    /// A class byte outside [`MsgClass::ALL`].
    BadClass(u8),
    /// A handler id with no registered handler. Carries the offending id.
    UnknownHandler(u32),
    /// A tagged union carried an unknown tag.
    BadTag {
        /// Which union (for the error message).
        what: &'static str,
        /// The unknown tag byte.
        tag: u8,
    },
    /// A declared length exceeds the bytes actually present (corrupt or
    /// adversarial length field).
    LengthOverflow {
        /// The declared length.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bytes remained after a complete decode (framing slip).
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { need, have } => {
                write!(f, "truncated input: needed {need} bytes, had {have}")
            }
            DecodeError::BadMagic { expected, got } => write!(
                f,
                "bad magic: expected {:?}, got {:?}",
                String::from_utf8_lossy(expected),
                got
            ),
            DecodeError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: ours {ours}, peer sent {theirs}"
            ),
            DecodeError::BadClass(b) => write!(f, "unknown message class byte {b}"),
            DecodeError::UnknownHandler(id) => write!(f, "unknown handler id #{id}"),
            DecodeError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            DecodeError::LengthOverflow {
                declared,
                available,
            } => write!(
                f,
                "declared length {declared} exceeds available {available} bytes"
            ),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Typed encoding failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// The payload has a non-serializable part (a closure, `Box<dyn Any>`
    /// data) and the transport has no in-process stash to park it in —
    /// i.e. the destination lives in another process. Cross-process work
    /// must ship as registered commands instead.
    NotSerializable {
        /// Message class of the offending envelope.
        class: MsgClass,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::NotSerializable { class } => write!(
                f,
                "payload of class `{}` is not serializable: closures and \
                 Box<dyn Any> data cannot cross a process boundary — register \
                 a command handler and send bytes instead",
                class.label()
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

// ---------------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------------

/// Append a `u16` little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` little-endian.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its little-endian IEEE-754 bits.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a `u32` length followed by the bytes.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Append a `u32` length followed by UTF-8 bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked little-endian reader over a byte slice. Every method
/// returns a typed [`DecodeError`] on underrun — decoders built on it never
/// panic on truncated or garbage input.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its little-endian IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(DecodeError::LengthOverflow {
                declared: n,
                available: self.remaining(),
            });
        }
        self.take(n)
    }

    /// Read a `u32`-length-prefixed UTF-8 string (lossily, for panic
    /// messages that must survive any corruption).
    pub fn string(&mut self) -> Result<String, DecodeError> {
        Ok(String::from_utf8_lossy(self.bytes()?).into_owned())
    }

    /// Fail with [`DecodeError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Per-message header
// ---------------------------------------------------------------------------

/// Decoded per-message header (see `PROTOCOL.md` § message header for the
/// byte layout; [`MSG_HEADER_BYTES`] long on the wire).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MsgHeader {
    /// Message class.
    pub class: MsgClass,
    /// Flag bits ([`FLAG_CAUSAL`], [`FLAG_STASH`]).
    pub flags: u8,
    /// Handler id.
    pub handler: HandlerId,
    /// Causal identity, when [`FLAG_CAUSAL`] is set.
    pub causal: Option<CausalId>,
    /// The envelope's *modeled* wire size (the byte ledgers' currency),
    /// carried so the receiving process reconstructs identical accounting.
    pub modeled_bytes: u32,
    /// Length of the argument bytes following the header.
    pub args_len: u32,
}

/// Append a message header (exactly [`MSG_HEADER_BYTES`] bytes).
pub fn put_msg_header(out: &mut Vec<u8>, h: &MsgHeader) {
    let start = out.len();
    put_u16(out, PROTO_VERSION);
    out.push(h.class.index() as u8);
    let mut flags = h.flags;
    if h.causal.is_some() {
        flags |= FLAG_CAUSAL;
    }
    out.push(flags);
    put_u32(out, h.handler.0);
    let c = h.causal.unwrap_or(CausalId { root: 0, seq: 0 });
    put_u64(out, c.root);
    put_u64(out, c.seq);
    put_u32(out, h.modeled_bytes);
    put_u32(out, h.args_len);
    debug_assert_eq!(out.len() - start, MSG_HEADER_BYTES);
}

/// Decode a message header, validating version and class.
pub fn read_msg_header(cur: &mut Cursor<'_>) -> Result<MsgHeader, DecodeError> {
    let version = cur.u16()?;
    if version != PROTO_VERSION {
        return Err(DecodeError::VersionMismatch {
            ours: PROTO_VERSION,
            theirs: version,
        });
    }
    let class_byte = cur.u8()?;
    let class = MsgClass::from_index(class_byte).ok_or(DecodeError::BadClass(class_byte))?;
    let flags = cur.u8()?;
    let handler = HandlerId(cur.u32()?);
    let root = cur.u64()?;
    let seq = cur.u64()?;
    let causal = if flags & FLAG_CAUSAL != 0 {
        Some(CausalId { root, seq })
    } else {
        None
    };
    let modeled_bytes = cur.u32()?;
    let args_len = cur.u32()?;
    if args_len as usize > cur.remaining() {
        return Err(DecodeError::LengthOverflow {
            declared: args_len as usize,
            available: cur.remaining(),
        });
    }
    Ok(MsgHeader {
        class,
        flags,
        handler,
        causal,
        modeled_bytes,
        args_len,
    })
}

// ---------------------------------------------------------------------------
// Frame header
// ---------------------------------------------------------------------------

/// Frame-header flag: the frame is a coalescer *batch* envelope — the
/// receiver re-packs its messages into one `MsgClass::Batch` envelope
/// instead of delivering them singly (a batch of one stays a batch).
pub const FRAME_FLAG_BATCH: u16 = 0x0001;

/// Decoded frame header (the [`FRAME_HEADER_BYTES`] bytes following the
/// 4-byte length prefix; see `PROTOCOL.md` § frames).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameHeader {
    /// Flag bits ([`FRAME_FLAG_BATCH`]).
    pub flags: u16,
    /// Sending place.
    pub from: u32,
    /// Destination place.
    pub to: u32,
    /// Number of messages in the frame (a coalescer batch maps to one frame
    /// with `count >= 1`; a lone envelope to `count == 1` without
    /// [`FRAME_FLAG_BATCH`]).
    pub count: u32,
}

/// Append a frame header (exactly [`FRAME_HEADER_BYTES`] bytes).
pub fn put_frame_header(out: &mut Vec<u8>, h: &FrameHeader) {
    let start = out.len();
    out.extend_from_slice(&FRAME_MAGIC);
    put_u16(out, PROTO_VERSION);
    put_u16(out, h.flags);
    put_u32(out, h.from);
    put_u32(out, h.to);
    put_u32(out, h.count);
    debug_assert_eq!(out.len() - start, FRAME_HEADER_BYTES);
}

/// Decode a frame header, validating magic and version.
pub fn read_frame_header(cur: &mut Cursor<'_>) -> Result<FrameHeader, DecodeError> {
    let magic: [u8; 4] = cur.take(4)?.try_into().unwrap();
    if magic != FRAME_MAGIC {
        return Err(DecodeError::BadMagic {
            expected: FRAME_MAGIC,
            got: magic,
        });
    }
    let version = cur.u16()?;
    if version != PROTO_VERSION {
        return Err(DecodeError::VersionMismatch {
            ours: PROTO_VERSION,
            theirs: version,
        });
    }
    let flags = cur.u16()?;
    let from = cur.u32()?;
    let to = cur.u32()?;
    let count = cur.u32()?;
    Ok(FrameHeader {
        flags,
        from,
        to,
        count,
    })
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Connection handshake: the first (and only) out-of-band message each side
/// sends on a fresh TCP connection (see `PROTOCOL.md` § handshake).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Handshake {
    /// Protocol version the sender speaks (normally [`PROTO_VERSION`]; a
    /// test override can force a mismatch).
    pub version: u16,
    /// The sender's process index in the launch configuration.
    pub proc_id: u32,
    /// First place hosted by the sending process.
    pub place_start: u32,
    /// Number of places hosted by the sending process.
    pub place_count: u32,
    /// Total places in the job (must agree on both sides).
    pub total_places: u32,
}

/// Encode a handshake (exactly [`HANDSHAKE_BYTES`] bytes).
pub fn encode_handshake(h: &Handshake) -> [u8; HANDSHAKE_BYTES] {
    let mut out = Vec::with_capacity(HANDSHAKE_BYTES);
    out.extend_from_slice(&HANDSHAKE_MAGIC);
    put_u16(&mut out, h.version);
    put_u16(&mut out, 0); // flags, reserved
    put_u32(&mut out, h.proc_id);
    put_u32(&mut out, h.place_start);
    put_u32(&mut out, h.place_count);
    put_u32(&mut out, h.total_places);
    out.try_into().expect("handshake is fixed-size")
}

/// Encode a handshake *rejection* (also [`HANDSHAKE_BYTES`] long, so the
/// peer's fixed-size read picks it up): [`ERROR_MAGIC`], the rejecter's
/// version, the version it rejected, zero padding.
pub fn encode_handshake_reject(ours: u16, theirs: u16) -> [u8; HANDSHAKE_BYTES] {
    let mut out = Vec::with_capacity(HANDSHAKE_BYTES);
    out.extend_from_slice(&ERROR_MAGIC);
    put_u16(&mut out, ours);
    put_u16(&mut out, theirs);
    out.resize(HANDSHAKE_BYTES, 0);
    out.try_into().expect("handshake reject is fixed-size")
}

/// Decode a handshake (or a rejection, surfaced as
/// [`DecodeError::VersionMismatch`]).
pub fn decode_handshake(buf: &[u8]) -> Result<Handshake, DecodeError> {
    let mut cur = Cursor::new(buf);
    let magic: [u8; 4] = cur.take(4)?.try_into().unwrap();
    if magic == ERROR_MAGIC {
        let theirs = cur.u16()?; // the rejecter's version
        let ours = cur.u16()?; // the version it rejected: ours
        return Err(DecodeError::VersionMismatch { ours, theirs });
    }
    if magic != HANDSHAKE_MAGIC {
        return Err(DecodeError::BadMagic {
            expected: HANDSHAKE_MAGIC,
            got: magic,
        });
    }
    let version = cur.u16()?;
    let _flags = cur.u16()?;
    Ok(Handshake {
        version,
        proc_id: cur.u32()?,
        place_start: cur.u32()?,
        place_count: cur.u32()?,
        total_places: cur.u32()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::HEADER_BYTES;

    #[test]
    fn msg_header_matches_modeled_header_size() {
        // The byte ledgers charge HEADER_BYTES per message; the real wire
        // header is the same size, so modeled and physical accounting agree.
        assert_eq!(MSG_HEADER_BYTES, HEADER_BYTES);
    }

    #[test]
    fn msg_header_round_trip() {
        for causal in [
            None,
            Some(CausalId {
                root: 77,
                seq: 123_456,
            }),
        ] {
            let h = MsgHeader {
                class: MsgClass::FinishCtl,
                flags: 0,
                handler: H_FINISH,
                causal,
                modeled_bytes: 96,
                args_len: 0,
            };
            let mut buf = Vec::new();
            put_msg_header(&mut buf, &h);
            assert_eq!(buf.len(), MSG_HEADER_BYTES);
            let mut cur = Cursor::new(&buf);
            let got = read_msg_header(&mut cur).expect("decodes");
            assert_eq!(got.class, h.class);
            assert_eq!(got.handler, h.handler);
            assert_eq!(got.causal, causal);
            assert_eq!(got.modeled_bytes, 96);
            assert_eq!(got.args_len, 0);
        }
    }

    #[test]
    fn msg_header_args_len_validated() {
        let h = MsgHeader {
            class: MsgClass::Task,
            flags: 0,
            handler: H_SPAWN,
            causal: None,
            modeled_bytes: 40,
            args_len: 1_000, // longer than what follows
        };
        let mut buf = Vec::new();
        put_msg_header(&mut buf, &h);
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            read_msg_header(&mut cur),
            Err(DecodeError::LengthOverflow {
                declared: 1_000,
                ..
            })
        ));
    }

    #[test]
    fn frame_header_round_trip() {
        let h = FrameHeader {
            flags: FRAME_FLAG_BATCH,
            from: 3,
            to: 9,
            count: 17,
        };
        let mut buf = Vec::new();
        put_frame_header(&mut buf, &h);
        assert_eq!(buf.len(), FRAME_HEADER_BYTES);
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame_header(&mut cur).expect("decodes"), h);
    }

    #[test]
    fn frame_bad_magic_is_typed() {
        let mut buf = Vec::new();
        put_frame_header(
            &mut buf,
            &FrameHeader {
                flags: 0,
                from: 0,
                to: 1,
                count: 1,
            },
        );
        buf[0] = b'Z';
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            read_frame_header(&mut cur),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn handshake_round_trip_and_reject() {
        let h = Handshake {
            version: PROTO_VERSION,
            proc_id: 1,
            place_start: 4,
            place_count: 4,
            total_places: 8,
        };
        let buf = encode_handshake(&h);
        assert_eq!(decode_handshake(&buf).expect("decodes"), h);

        let rej = encode_handshake_reject(PROTO_VERSION, 99);
        match decode_handshake(&rej) {
            Err(DecodeError::VersionMismatch { ours, theirs }) => {
                assert_eq!(theirs, PROTO_VERSION); // rejecter's version
                assert_eq!(ours, 99); // what it refused
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed_never_panics() {
        let h = MsgHeader {
            class: MsgClass::Clock,
            flags: 0,
            handler: H_CLOCK,
            causal: Some(CausalId { root: 1, seq: 2 }),
            modeled_bytes: 48,
            args_len: 0,
        };
        let mut buf = Vec::new();
        put_msg_header(&mut buf, &h);
        for cut in 0..buf.len() {
            let mut cur = Cursor::new(&buf[..cut]);
            assert!(
                read_msg_header(&mut cur).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn handler_id_numbering() {
        assert!(!HandlerId::INVALID.is_runtime());
        assert!(!HandlerId::INVALID.is_app());
        for h in [
            H_SPAWN, H_FINISH, H_TEAM, H_CLOCK, H_SHUTDOWN, H_MARKER, H_OBS,
        ] {
            assert!(h.is_runtime(), "{h} must be runtime-reserved");
        }
        assert!(HandlerId::FIRST_APP.is_app());
        assert_eq!(HandlerId::FIRST_APP.0, 1024);
    }

    #[test]
    fn cursor_primitives_round_trip() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, 2.5);
        put_str(&mut buf, "héllo");
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.u16().unwrap(), 0xBEEF);
        assert_eq!(cur.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(cur.u64().unwrap(), u64::MAX - 1);
        assert_eq!(cur.i64().unwrap(), -42);
        assert_eq!(cur.f64().unwrap(), 2.5);
        assert_eq!(cur.string().unwrap(), "héllo");
        cur.finish().unwrap();
    }

    #[test]
    fn bytes_length_overflow_is_typed() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 100); // declares 100 bytes, provides none
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            cur.bytes(),
            Err(DecodeError::LengthOverflow {
                declared: 100,
                available: 0
            })
        ));
    }
}
