//! Message envelopes carried by the transport.
//!
//! Payloads are opaque to the transport layer (the upper APGAS layer
//! downcasts them); the envelope carries the routing information and a
//! *modeled wire size*. A payload is either a typed in-process box (the
//! historical `CodecMode::Inline` fast path — closures and structs shipped
//! by pointer) or a serialized [`crate::codec::WireMsg`] (handler id +
//! argument bytes, the `CodecMode::Bytes` form every cross-process transport
//! requires; see `PROTOCOL.md`). Either way, every send charges a modeled
//! byte count (captured-state size + a fixed header) so that the network
//! counters and the Power 775 model see realistic traffic volumes even when
//! no bytes are physically produced.

use crate::place::PlaceId;
use std::any::Any;

pub use obs::causal::{CausalId, CAUSAL_HEADER_BYTES};

/// Wire-format header charged to every message, in bytes (source, destination,
/// class, length — roughly what PAMI's active-message header costs).
pub const HEADER_BYTES: usize = 32;

/// Class of a message, used for statistics and for routing decisions.
///
/// The classes mirror the traffic kinds the paper reasons about separately:
/// task spawns, `finish` termination-control messages, collective (Team)
/// traffic, clock barriers, RDMA completions, and work-stealing control.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MsgClass {
    /// A remote activity spawn (`at(p) async S`).
    Task,
    /// Termination-detection control traffic (the `finish` protocols).
    FinishCtl,
    /// Team collective traffic (barrier / bcast / reduce / all-to-all ...).
    Team,
    /// Clock (distributed barrier) control messages.
    Clock,
    /// RDMA completion notifications (the payload moved out-of-band).
    Rdma,
    /// Work-stealing requests/responses (GLB).
    Steal,
    /// Runtime-internal control (shutdown, registration).
    System,
    /// A coalesced envelope carrying several messages for one destination
    /// (PAMI-style transport aggregation). The logical messages inside keep
    /// their own classes for the statistics; `Batch` only appears in the
    /// physical envelope counters.
    Batch,
}

impl MsgClass {
    /// All classes, in counter order.
    pub const ALL: [MsgClass; 8] = [
        MsgClass::Task,
        MsgClass::FinishCtl,
        MsgClass::Team,
        MsgClass::Clock,
        MsgClass::Rdma,
        MsgClass::Steal,
        MsgClass::System,
        MsgClass::Batch,
    ];

    /// Dense index for counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MsgClass::Task => 0,
            MsgClass::FinishCtl => 1,
            MsgClass::Team => 2,
            MsgClass::Clock => 3,
            MsgClass::Rdma => 4,
            MsgClass::Steal => 5,
            MsgClass::System => 6,
            MsgClass::Batch => 7,
        }
    }

    /// Inverse of [`MsgClass::index`]: decode a wire class byte (`None` for
    /// bytes outside the table — decoders turn that into a typed error).
    #[inline]
    pub fn from_index(b: u8) -> Option<MsgClass> {
        MsgClass::ALL.get(b as usize).copied()
    }

    /// Human-readable label (for harness output).
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Task => "task",
            MsgClass::FinishCtl => "finish-ctl",
            MsgClass::Team => "team",
            MsgClass::Clock => "clock",
            MsgClass::Rdma => "rdma",
            MsgClass::Steal => "steal",
            MsgClass::System => "system",
            MsgClass::Batch => "batch",
        }
    }
}

/// Opaque payload: the APGAS layer downcasts it back to its concrete type.
pub type Payload = Box<dyn Any + Send>;

/// A routed message.
pub struct Envelope {
    /// Sending place.
    pub from: PlaceId,
    /// Destination place.
    pub to: PlaceId,
    /// Traffic class (statistics / routing).
    pub class: MsgClass,
    /// Modeled wire size in bytes (including [`HEADER_BYTES`], and
    /// [`CAUSAL_HEADER_BYTES`] when stamped).
    pub bytes: usize,
    /// Causal identity for cross-place tracing (`None` when causal tracing
    /// is off). Stamped per logical message, so it survives batching — a
    /// [`MsgClass::Batch`] envelope carries its inner envelopes verbatim —
    /// and rides through transport decorators like `FaultTransport`
    /// untouched.
    pub causal: Option<CausalId>,
    /// The opaque payload.
    pub payload: Payload,
}

/// Payload of a [`MsgClass::Batch`] envelope: the coalesced messages, in
/// their original send order, all addressed to the same destination.
pub struct BatchPayload {
    /// The logical messages this envelope carries.
    pub envs: Vec<Envelope>,
}

impl Envelope {
    /// Build an envelope, charging `body_bytes + HEADER_BYTES` to the wire.
    pub fn new(
        from: PlaceId,
        to: PlaceId,
        class: MsgClass,
        body_bytes: usize,
        payload: Payload,
    ) -> Self {
        Envelope {
            from,
            to,
            class,
            bytes: body_bytes + HEADER_BYTES,
            causal: None,
            payload,
        }
    }

    /// Stamp a causal identity onto this envelope, charging
    /// [`CAUSAL_HEADER_BYTES`] to the modeled wire size — causal tracing's
    /// cost shows up honestly in the byte ledgers. Unstamped envelopes
    /// (causal tracing off) keep their exact pre-causal sizes.
    pub fn with_causal(mut self, id: CausalId) -> Self {
        debug_assert!(self.causal.is_none(), "envelope stamped twice");
        self.causal = Some(id);
        self.bytes += CAUSAL_HEADER_BYTES;
        self
    }

    /// Pack several same-destination messages into one batch envelope.
    ///
    /// The batch is charged one [`HEADER_BYTES`] header plus the inner
    /// *body* bytes — aggregation amortizes the per-message header, which is
    /// exactly the saving PAMI-level aggregation buys on the wire.
    pub fn batch(from: PlaceId, to: PlaceId, envs: Vec<Envelope>) -> Self {
        Self::batch_boxed(from, to, Box::new(BatchPayload { envs }))
    }

    /// [`Envelope::batch`] over an already-boxed payload, so callers that
    /// recycle batch boxes (see [`crate::arena::EnvelopeArena`]) can pack
    /// without allocating.
    pub fn batch_boxed(from: PlaceId, to: PlaceId, payload: Box<BatchPayload>) -> Self {
        debug_assert!(!payload.envs.is_empty(), "empty batch");
        debug_assert!(
            payload.envs.iter().all(|e| e.to == to),
            "batch mixes destinations"
        );
        let body: usize = payload
            .envs
            .iter()
            .map(|e| e.bytes.saturating_sub(HEADER_BYTES))
            .sum();
        Envelope {
            from,
            to,
            class: MsgClass::Batch,
            bytes: body + HEADER_BYTES,
            // The physical envelope carries no causal identity of its own;
            // the inner envelopes keep their per-message stamps (and their
            // causal header bytes stay in `body` above).
            causal: None,
            payload,
        }
    }

    /// Unpack a batch envelope into its logical messages; a non-batch
    /// envelope comes back unchanged as the `Err` variant.
    pub fn unbatch(self) -> Result<Vec<Envelope>, Envelope> {
        self.unbatch_boxed().map(|b| b.envs)
    }

    /// [`Envelope::unbatch`], but keeping the payload box intact so the
    /// receiver can hand it back to an [`crate::arena::EnvelopeArena`] for
    /// reuse after dispatching the inner messages.
    pub fn unbatch_boxed(self) -> Result<Box<BatchPayload>, Envelope> {
        if self.class != MsgClass::Batch {
            return Err(self);
        }
        match self.payload.downcast::<BatchPayload>() {
            Ok(b) => Ok(b),
            Err(payload) => {
                debug_assert!(false, "Batch-class envelope without BatchPayload");
                Err(Envelope { payload, ..self })
            }
        }
    }
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("class", &self.class)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_dense_and_distinct() {
        let mut seen = [false; MsgClass::ALL.len()];
        for c in MsgClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {:?}", c);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn envelope_charges_header() {
        let e = Envelope::new(PlaceId(0), PlaceId(1), MsgClass::Task, 100, Box::new(()));
        assert_eq!(e.bytes, 100 + HEADER_BYTES);
        assert!(e.causal.is_none());
    }

    #[test]
    fn causal_stamp_charges_extra_header_bytes() {
        let id = CausalId { root: 5, seq: 9 };
        let e = Envelope::new(PlaceId(0), PlaceId(1), MsgClass::Task, 100, Box::new(()))
            .with_causal(id);
        assert_eq!(e.bytes, 100 + HEADER_BYTES + CAUSAL_HEADER_BYTES);
        assert_eq!(e.causal, Some(id));
    }

    #[test]
    fn causal_stamps_survive_batching_per_message() {
        let id0 = CausalId { root: 1, seq: 10 };
        let id1 = CausalId { root: 1, seq: 11 };
        let envs = vec![
            Envelope::new(PlaceId(0), PlaceId(2), MsgClass::Task, 50, Box::new(()))
                .with_causal(id0),
            Envelope::new(PlaceId(0), PlaceId(2), MsgClass::FinishCtl, 8, Box::new(())),
            Envelope::new(PlaceId(0), PlaceId(2), MsgClass::Steal, 16, Box::new(()))
                .with_causal(id1),
        ];
        let inner_bytes: usize = envs.iter().map(|e| e.bytes).sum();
        let batch = Envelope::batch(PlaceId(0), PlaceId(2), envs);
        // The physical envelope is unstamped; aggregation saves the two
        // extra message headers but keeps the per-message causal bytes.
        assert!(batch.causal.is_none());
        assert_eq!(batch.bytes, inner_bytes - 2 * HEADER_BYTES);
        let inner = batch.unbatch().expect("batch unpacks");
        assert_eq!(
            inner.iter().map(|e| e.causal).collect::<Vec<_>>(),
            vec![Some(id0), None, Some(id1)]
        );
    }

    #[test]
    fn causal_class_labels_match_msgclass() {
        // obs::causal duplicates the label table (it sits below x10rt in the
        // crate graph); this pins the two copies together.
        for c in MsgClass::ALL {
            assert_eq!(
                obs::causal::class_label(c.index() as u8),
                c.label(),
                "label drift at index {}",
                c.index()
            );
        }
        assert_eq!(obs::causal::CLASS_LABELS.len(), MsgClass::ALL.len());
    }
}
