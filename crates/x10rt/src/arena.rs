//! Freelist recycling of coalescer batch buffers.
//!
//! Every coalesced flush used to allocate a fresh `Box<BatchPayload>` (and
//! grow its inner `Vec<Envelope>` from empty), and every receive freed one —
//! two allocator round trips per batch, right on the message hot path.
//! [`EnvelopeArena`] closes the loop: drained batch boxes come back via
//! [`EnvelopeArena::recycle`] with their `Vec` capacity intact, and the next
//! flush takes one off the freelist instead of allocating. In steady state —
//! once buffers have grown to the workload's batch size — the send path
//! performs **zero heap allocations per message**: envelopes live inline in
//! recycled buffers, and the flush swap (see
//! [`Coalescer::flush`](crate::Coalescer)) moves a pointer instead of
//! copying messages.
//!
//! The arena is deliberately *not* a shared pool: each worker owns one
//! (inside its coalescer), so `take`/`recycle` are plain vector ops with no
//! synchronization. Under symmetric traffic the loop balances naturally —
//! each worker receives roughly as many batches as it sends, so recycling
//! received boxes into the local arena keeps the freelist fed. Asymmetric
//! traffic degrades gracefully: a pure sender misses (allocates) and a pure
//! receiver discards once its freelist is full, which is exactly what the
//! `arena.recycle.*` counters make visible.

use crate::message::BatchPayload;
use obs::metrics::{Counter, MetricsRegistry};

/// Freelist depth cap: boxes recycled beyond this are dropped instead of
/// retained, bounding idle memory at roughly `retain × batch-size` envelopes
/// per worker.
pub const DEFAULT_ARENA_RETAIN: usize = 64;

/// Local tally of arena traffic (per worker; see [`EnvelopeArena::counts`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ArenaCounts {
    /// `take` calls served from the freelist (no allocation).
    pub hits: u64,
    /// `take` calls that had to allocate a fresh box.
    pub misses: u64,
    /// Boxes returned to the freelist.
    pub recycled: u64,
    /// Boxes dropped on return (arena disabled or freelist full).
    pub discarded: u64,
}

impl ArenaCounts {
    /// Fraction of takes served without allocating, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Resolved observability counters mirroring the take outcomes.
struct ArenaHooks {
    hits: Counter,
    misses: Counter,
}

/// A per-worker freelist of batch-payload boxes (see the module docs).
///
/// Not `Sync` — ownership is the whole point: one worker, one arena, no
/// synchronization on the hot path.
pub struct EnvelopeArena {
    // The box itself is the recycled resource: envelopes carry
    // `Box<BatchPayload>`, so parking the box (not the payload) is what
    // makes `take` allocation-free. Un-boxing here would force a fresh
    // heap allocation on every flush.
    #[allow(clippy::vec_box)]
    free: Vec<Box<BatchPayload>>,
    retain: usize,
    enabled: bool,
    counts: ArenaCounts,
    hooks: Option<ArenaHooks>,
    /// Metrics shard (the owning place) for the obs mirror.
    shard: u32,
}

impl EnvelopeArena {
    /// An enabled arena owned by place `shard`, retaining up to
    /// [`DEFAULT_ARENA_RETAIN`] boxes.
    pub fn new(shard: u32) -> Self {
        EnvelopeArena {
            free: Vec::new(),
            retain: DEFAULT_ARENA_RETAIN,
            enabled: true,
            counts: ArenaCounts::default(),
            hooks: None,
            shard,
        }
    }

    /// Enable or disable recycling (`arena_disable` ablation knob). Disabled,
    /// every `take` allocates and every `recycle` discards — the pre-arena
    /// behaviour, kept runnable so the ablation stays honest.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.free.clear();
        }
    }

    /// Is recycling active?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Override the freelist depth cap.
    pub fn set_retain(&mut self, retain: usize) {
        self.retain = retain;
        self.free.truncate(self.retain);
    }

    /// Mirror take outcomes into the shared metrics registry (the
    /// `arena.recycle.hits` / `arena.recycle.misses` counters), resolving
    /// them once so the hot path stays a relaxed increment.
    pub fn wire_obs(&mut self, metrics: &MetricsRegistry) {
        self.hooks = Some(ArenaHooks {
            hits: metrics.counter(obs::names::ARENA_RECYCLE_HITS),
            misses: metrics.counter(obs::names::ARENA_RECYCLE_MISSES),
        });
    }

    /// Traffic tally so far.
    pub fn counts(&self) -> ArenaCounts {
        self.counts
    }

    /// Boxes currently parked on the freelist.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// An empty batch payload: recycled when possible, freshly allocated
    /// otherwise. Recycled boxes keep their grown `Vec` capacity, which is
    /// what makes steady-state packing allocation-free.
    pub fn take(&mut self) -> Box<BatchPayload> {
        match self.free.pop() {
            Some(b) => {
                debug_assert!(b.envs.is_empty(), "recycled box not cleared");
                self.counts.hits += 1;
                if let Some(h) = &self.hooks {
                    h.hits.inc(self.shard);
                }
                b
            }
            None => {
                self.counts.misses += 1;
                if let Some(h) = &self.hooks {
                    h.misses.inc(self.shard);
                }
                Box::new(BatchPayload { envs: Vec::new() })
            }
        }
    }

    /// Return a drained box for reuse. Clears the envelopes (dropping any
    /// the caller left behind) but keeps the capacity; drops the box instead
    /// when recycling is disabled or the freelist is at its cap.
    pub fn recycle(&mut self, mut payload: Box<BatchPayload>) {
        payload.envs.clear();
        if self.enabled && self.free.len() < self.retain {
            self.counts.recycled += 1;
            self.free.push(payload);
        } else {
            self.counts.discarded += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Envelope, MsgClass};
    use crate::place::PlaceId;

    #[test]
    fn take_recycle_round_trip_preserves_capacity() {
        let mut a = EnvelopeArena::new(0);
        let mut b = a.take();
        assert_eq!(a.counts().misses, 1);
        for i in 0..10u64 {
            b.envs.push(Envelope::new(
                PlaceId(0),
                PlaceId(1),
                MsgClass::Task,
                8,
                Box::new(i),
            ));
        }
        let cap = b.envs.capacity();
        a.recycle(b);
        assert_eq!(a.counts().recycled, 1);
        let b = a.take();
        assert_eq!(a.counts().hits, 1);
        assert!(b.envs.is_empty());
        assert_eq!(b.envs.capacity(), cap, "capacity lost in recycling");
    }

    #[test]
    fn disabled_arena_always_allocates_and_discards() {
        let mut a = EnvelopeArena::new(0);
        a.set_enabled(false);
        let b = a.take();
        a.recycle(b);
        assert_eq!(a.counts().discarded, 1);
        assert_eq!(a.free_len(), 0);
        let _ = a.take();
        assert_eq!(a.counts().misses, 2);
        assert_eq!(a.counts().hits, 0);
        assert_eq!(a.counts().hit_rate(), 0.0);
    }

    #[test]
    fn retain_caps_the_freelist() {
        let mut a = EnvelopeArena::new(0);
        a.set_retain(2);
        let boxes: Vec<_> = (0..4).map(|_| a.take()).collect();
        for b in boxes {
            a.recycle(b);
        }
        assert_eq!(a.free_len(), 2);
        assert_eq!(a.counts().recycled, 2);
        assert_eq!(a.counts().discarded, 2);
    }

    #[test]
    fn disabling_clears_parked_boxes() {
        let mut a = EnvelopeArena::new(0);
        let b = a.take();
        a.recycle(b);
        assert_eq!(a.free_len(), 1);
        a.set_enabled(false);
        assert_eq!(a.free_len(), 0);
    }
}
