//! End-to-end tests of the lifeline balancer on the APGAS runtime.

use apgas::{Config, Runtime};
use glb::{run, GlbConfig, TaskBag};

/// A bag of synthetic work items; each "unit" is just a counter bump, so
/// results are exact and imbalance is fully controllable.
#[derive(Default)]
struct Pile {
    items: Vec<u64>,
    sum: u64,
    processed: u64,
}

impl Pile {
    fn with(items: Vec<u64>) -> Self {
        Pile {
            items,
            sum: 0,
            processed: 0,
        }
    }
}

impl TaskBag for Pile {
    type Result = (u64, u64); // (sum, processed)

    fn process(&mut self, n: usize) -> usize {
        let take = n.min(self.items.len());
        for _ in 0..take {
            self.sum += self.items.pop().unwrap();
            self.processed += 1;
        }
        take
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn split(&mut self) -> Option<Self> {
        if self.items.len() < 2 {
            return None;
        }
        let half = self.items.split_off(self.items.len() / 2);
        Some(Pile::with(half))
    }

    fn merge(&mut self, other: Self) {
        self.items.extend(other.items);
        self.sum += other.sum;
        self.processed += other.processed;
    }

    fn take_result(&mut self) -> (u64, u64) {
        (self.sum, self.processed)
    }
}

fn cfg_small() -> GlbConfig {
    GlbConfig {
        chunk: 16,
        ..GlbConfig::default()
    }
}

#[test]
fn single_place_processes_everything() {
    let rt = Runtime::new(Config::new(1));
    let out = rt.run(|ctx| {
        run(
            ctx,
            cfg_small(),
            Pile::with((1..=500).collect()),
            Pile::default,
        )
    });
    let total: u64 = out.results.iter().map(|r| r.0).sum();
    assert_eq!(total, (1..=500).sum());
    assert_eq!(out.total_stats().random_attempts, 0);
}

#[test]
fn all_work_done_exactly_once_across_places() {
    let rt = Runtime::new(Config::new(8).places_per_host(4));
    let out = rt.run(|ctx| {
        run(
            ctx,
            cfg_small(),
            Pile::with((1..=2000).collect()),
            Pile::default,
        )
    });
    let sum: u64 = out.results.iter().map(|r| r.0).sum();
    let processed: u64 = out.results.iter().map(|r| r.1).sum();
    assert_eq!(sum, (1..=2000u64).sum::<u64>(), "every item exactly once");
    assert_eq!(processed, 2000);
}

#[test]
fn stealing_spreads_heavily_imbalanced_work() {
    // All work starts at place 0 as one big pile (wave splits it); expect
    // several places to end up with non-trivial shares.
    let places = 6;
    let rt = Runtime::new(Config::new(places));
    let out = rt.run(|ctx| {
        run(
            ctx,
            GlbConfig {
                chunk: 8,
                ..GlbConfig::default()
            },
            Pile::with((1..=3000).collect()),
            Pile::default,
        )
    });
    let busy = out.results.iter().filter(|r| r.1 > 0).count();
    assert!(
        busy >= places / 2,
        "work should spread: per-place processed = {:?}",
        out.results.iter().map(|r| r.1).collect::<Vec<_>>()
    );
    let total: u64 = out.results.iter().map(|r| r.0).sum();
    assert_eq!(total, (1..=3000u64).sum::<u64>());
}

#[test]
fn lifeline_resuscitation_happens_for_late_work() {
    // Tiny chunk + small pile: places starve, die, and must be revived by
    // lifeline gifts when the root place's splits reach them.
    let rt = Runtime::new(Config::new(4));
    let out = rt.run(|ctx| {
        run(
            ctx,
            GlbConfig {
                chunk: 4,
                random_attempts: 1,
                ..GlbConfig::default()
            },
            Pile::with((1..=800).collect()),
            Pile::default,
        )
    });
    let total: u64 = out.results.iter().map(|r| r.0).sum();
    assert_eq!(total, (1..=800u64).sum::<u64>());
    let stats = out.total_stats();
    assert!(stats.deaths > 0, "someone must have starved: {stats:?}");
}

#[test]
fn empty_root_bag_terminates() {
    let rt = Runtime::new(Config::new(3));
    let out = rt.run(|ctx| run(ctx, cfg_small(), Pile::default(), Pile::default));
    assert!(out.results.iter().all(|r| r.0 == 0));
}

#[test]
fn repeated_runs_on_same_runtime() {
    let rt = Runtime::new(Config::new(4));
    for round in 1..=3u64 {
        let out = rt.run(move |ctx| {
            run(
                ctx,
                cfg_small(),
                Pile::with((1..=100 * round).collect()),
                Pile::default,
            )
        });
        let total: u64 = out.results.iter().map(|r| r.0).sum();
        assert_eq!(total, (1..=100 * round).sum::<u64>());
    }
}

#[test]
fn victim_bound_respected_in_config() {
    // With max_victims = 1, each place can only ever steal from one victim.
    let rt = Runtime::new(Config::new(4));
    let out = rt.run(|ctx| {
        run(
            ctx,
            GlbConfig {
                chunk: 8,
                max_victims: 1,
                ..GlbConfig::default()
            },
            Pile::with((1..=600).collect()),
            Pile::default,
        )
    });
    let total: u64 = out.results.iter().map(|r| r.0).sum();
    assert_eq!(total, (1..=600u64).sum::<u64>());
}
