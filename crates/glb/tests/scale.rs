//! Scale tier (ignored by default — run with `--ignored` in release):
//! lifeline-graph load balancing at thousands of places in one process on
//! the M:N multiplexed scheduler. The workload is synthetic (counter
//! bumps), so the result is exact at any scale and any interleaving.

use apgas::{Config, Runtime};
use glb::{run, GlbConfig, TaskBag};

/// Synthetic work: each item is a counter bump (see `balancing.rs`).
#[derive(Default)]
struct Pile {
    items: Vec<u64>,
    sum: u64,
}

impl Pile {
    fn with(items: Vec<u64>) -> Self {
        Pile { items, sum: 0 }
    }
}

impl TaskBag for Pile {
    type Result = u64;

    fn process(&mut self, n: usize) -> usize {
        let take = n.min(self.items.len());
        for _ in 0..take {
            self.sum += self.items.pop().unwrap();
        }
        take
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn split(&mut self) -> Option<Self> {
        if self.items.len() < 2 {
            return None;
        }
        let half = self.items.split_off(self.items.len() / 2);
        Some(Pile::with(half))
    }

    fn merge(&mut self, other: Self) {
        self.items.extend(other.items);
        self.sum += other.sum;
    }

    fn take_result(&mut self) -> u64 {
        self.sum
    }
}

fn threads() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get().max(2))
}

fn run_glb_at(places: usize, items: u64) -> u64 {
    let rt = Runtime::new(
        Config::new(places)
            .places_per_host(32)
            .executor_threads(threads()),
    );
    let out = rt.run(move |ctx| {
        run(
            ctx,
            GlbConfig {
                chunk: 64,
                ..GlbConfig::default()
            },
            Pile::with((1..=items).collect()),
            Pile::default,
        )
    });
    out.results.iter().sum()
}

#[test]
#[ignore = "scale tier: minutes in debug — run release via `cargo test --release -- --ignored`"]
fn glb_1024_places_exact_sum() {
    let items = 200_000u64;
    assert_eq!(run_glb_at(1024, items), items * (items + 1) / 2);
}

#[test]
#[ignore = "scale tier: minutes in debug — run release via `cargo test --release -- --ignored`"]
fn glb_4096_places_exact_sum() {
    let items = 200_000u64;
    assert_eq!(run_glb_at(4096, items), items * (items + 1) / 2);
}
