//! Victim selection and the lifeline graph.
//!
//! "Lifeline edges are organized in graphs with both low diameters and low
//! degree such as hyper-cubes to co-minimize the distance between any two
//! workers and the number of lifeline requests in flight." (§6.1)
//!
//! The paper additionally bounds each place's set of potential *random*
//! victims at 1,024 "to bound the out-degree of the communication graph";
//! without the bound they "observe a severe degradation of the network
//! performance at scale".

/// A tiny deterministic PRNG (xorshift64*), good enough for victim picking
/// and reproducible across runs.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded generator (seed 0 is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `0..bound`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

/// The bounded random-victim list of place `me` among `places` places: a
/// seeded shuffle of all other places truncated to `max_victims`.
pub fn victim_list(me: u32, places: usize, max_victims: usize, seed: u64) -> Vec<u32> {
    let mut v: Vec<u32> = (0..places as u32).filter(|&p| p != me).collect();
    let mut rng = XorShift64::new(seed ^ (0x5851_f42d_4c95_7f2d ^ u64::from(me)).rotate_left(17));
    // Fisher–Yates
    for i in (1..v.len()).rev() {
        let j = rng.below(i + 1);
        v.swap(i, j);
    }
    v.truncate(max_victims);
    v
}

/// Hypercube lifeline neighbours of `me`: `me ^ 2^k` for every dimension
/// that lands inside `0..places`, capped at `max_lifelines`.
pub fn hypercube_lifelines(me: u32, places: usize, max_lifelines: usize) -> Vec<u32> {
    let mut out = Vec::new();
    let mut k = 0u32;
    while (1usize << k) < places.next_power_of_two().max(2) {
        let n = me ^ (1 << k);
        if (n as usize) < places && n != me {
            out.push(n);
            if out.len() >= max_lifelines {
                break;
            }
        }
        k += 1;
        if k >= 63 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, 0);
        }
    }

    #[test]
    fn xorshift_below_in_range() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn victims_exclude_self_and_are_bounded() {
        let v = victim_list(5, 100, 10, 19);
        assert_eq!(v.len(), 10);
        assert!(!v.contains(&5));
        let all: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(all.len(), 10, "no duplicates");
    }

    #[test]
    fn victims_cover_everyone_when_unbounded() {
        let mut v = victim_list(3, 8, 1024, 19);
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 4, 5, 6, 7]);
    }

    #[test]
    fn victim_lists_differ_across_places() {
        assert_ne!(victim_list(0, 64, 8, 19), victim_list(1, 64, 8, 19));
    }

    #[test]
    fn hypercube_exact_power_of_two() {
        let mut l = hypercube_lifelines(5, 8, 64);
        l.sort_unstable();
        // 5 = 0b101 → neighbours 0b100=4, 0b111=7, 0b001=1
        assert_eq!(l, vec![1, 4, 7]);
    }

    #[test]
    fn hypercube_truncated_for_non_power_of_two() {
        // 6 places: neighbours of 5 are 4 (bit0), 7 (bit1, out), 1 (bit2)
        let mut l = hypercube_lifelines(5, 6, 64);
        l.sort_unstable();
        assert_eq!(l, vec![1, 4]);
    }

    #[test]
    fn hypercube_degree_is_logarithmic() {
        for places in [2usize, 16, 100, 1024] {
            for me in 0..places.min(32) as u32 {
                let l = hypercube_lifelines(me, places, 64);
                assert!(
                    l.len() <= places.next_power_of_two().trailing_zeros() as usize,
                    "degree too high"
                );
                assert!(l.iter().all(|&n| (n as usize) < places && n != me));
            }
        }
    }

    #[test]
    fn single_place_has_no_peers() {
        assert!(victim_list(0, 1, 1024, 19).is_empty());
        assert!(hypercube_lifelines(0, 1, 64).is_empty());
    }

    #[test]
    fn lifeline_graph_is_connected() {
        // Union of lifeline edges must connect all places (work can reach
        // everyone): check with a simple flood fill for several sizes.
        for places in [2usize, 3, 5, 8, 13, 32, 50] {
            let mut adj = vec![vec![]; places];
            for me in 0..places as u32 {
                for n in hypercube_lifelines(me, places, 64) {
                    adj[me as usize].push(n as usize);
                    adj[n as usize].push(me as usize); // gifts flow victim→thief
                }
            }
            let mut seen = vec![false; places];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(p) = stack.pop() {
                for &q in &adj[p] {
                    if !seen[q] {
                        seen[q] = true;
                        stack.push(q);
                    }
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "lifeline graph disconnected for {places} places"
            );
        }
    }
}
