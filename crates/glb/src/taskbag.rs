//! The work-bag abstraction the balancer schedules.

/// A splittable, mergeable bag of tasks plus the partial result their
/// processing accumulates.
///
/// Contract:
/// * [`TaskBag::process`] performs up to `n` units of work and may *grow*
///   the bag (UTS node expansion does);
/// * [`TaskBag::split`] extracts roughly half of the *work* for a thief —
///   returning `None` when the bag is too small to be worth splitting (the
///   thief's steal then fails);
/// * [`TaskBag::merge`] absorbs stolen loot (and its partial results);
/// * [`TaskBag::take_result`] yields this bag's accumulated partial result
///   after the computation terminates.
pub trait TaskBag: Send + Sized + 'static {
    /// The partial result accumulated by processing.
    type Result: Send + 'static;

    /// Perform up to `n` units of work; return how many were done.
    fn process(&mut self, n: usize) -> usize;

    /// No pending work?
    fn is_empty(&self) -> bool;

    /// Extract about half the pending work, or `None` if not worth it.
    fn split(&mut self) -> Option<Self>;

    /// Absorb stolen work (and any results it already carries).
    fn merge(&mut self, other: Self);

    /// Extract the final partial result.
    fn take_result(&mut self) -> Self::Result;
}
