//! The balancer itself: worker loop, random steals, lifelines, gifts, and
//! the root-finish harness.

use crate::lifeline::{hypercube_lifelines, victim_list, XorShift64};
use crate::stats::{GlbPlaceStats, GlbStatsSummary};
use crate::taskbag::TaskBag;
use apgas::{Ctx, FinishKind, MsgClass, PlaceGroup, PlaceId, PlaceLocalHandle};
use obs::metrics::Counter;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Balancer tuning knobs.
#[derive(Clone, Debug)]
pub struct GlbConfig {
    /// Work units processed between network probes (the paper's `n`).
    pub chunk: usize,
    /// Random steal attempts before falling back to lifelines (`w`).
    pub random_attempts: usize,
    /// Bound on the precomputed random-victim list (the paper uses 1,024).
    pub max_victims: usize,
    /// Bound on the number of lifeline (hypercube) edges (`z`).
    pub max_lifelines: usize,
    /// PRNG seed for victim shuffling.
    pub seed: u64,
    /// Abandon a random-steal handshake after this long without a response
    /// and treat it as a failed steal. Fault tolerance only: the handshake
    /// is an uncounted round trip, so a dropped request or response would
    /// otherwise stall the thief forever. `None` (the default) waits
    /// forever — correct whenever the transport is lossless.
    pub steal_timeout: Option<std::time::Duration>,
}

impl Default for GlbConfig {
    fn default() -> Self {
        GlbConfig {
            chunk: 512,
            random_attempts: 2,
            max_victims: 1024,
            max_lifelines: 64,
            seed: 19,
            steal_timeout: None,
        }
    }
}

/// What a balanced run returns.
pub struct GlbOutcome<R> {
    /// Per-place partial results, indexed by place.
    pub results: Vec<R>,
    /// Per-place balancer statistics, indexed by place.
    pub place_stats: Vec<GlbStatsSummary>,
}

impl<R> GlbOutcome<R> {
    /// Sum of the per-place statistics.
    pub fn total_stats(&self) -> GlbStatsSummary {
        let mut t = GlbStatsSummary::default();
        for s in &self.place_stats {
            t.add(s);
        }
        t
    }
}

/// Per-place balancer state, shared between the worker activity, steal
/// handlers and gift deliveries at that place.
pub struct GlbPlace<B: TaskBag> {
    cfg: GlbConfig,
    factory: Arc<dyn Fn() -> B + Send + Sync>,
    bag: Mutex<B>,
    alive: AtomicBool,
    /// Lifeline thieves registered with us ("lifelines have memory").
    thieves: Mutex<Vec<u32>>,
    victims: Vec<u32>,
    lifelines: Vec<u32>,
    rng: Mutex<XorShift64>,
    stats: GlbPlaceStats,
    /// Shared runtime metric counters mirroring the hot `stats` fields
    /// (`None` when the runtime has observability disabled).
    hooks: Option<GlbHooks>,
}

/// Resolved handles to the balancer's runtime-wide metric counters (see the
/// `glb.*` entries in `obs::names`).
struct GlbHooks {
    steal_attempts: Counter,
    steal_hits: Counter,
    lifeline_arms: Counter,
    lifeline_gifts: Counter,
    resuscitations: Counter,
    deaths: Counter,
    steal_dead_victim: Counter,
    steal_timeouts: Counter,
    lifeline_reroutes: Counter,
}

impl<B: TaskBag> GlbPlace<B> {
    fn new(cfg: GlbConfig, factory: Arc<dyn Fn() -> B + Send + Sync>, c: &Ctx) -> Self {
        let me = c.here().0;
        let places = c.num_places();
        let hooks = c.obs().map(|o| GlbHooks {
            steal_attempts: o.metrics.counter(obs::names::GLB_STEAL_ATTEMPTS),
            steal_hits: o.metrics.counter(obs::names::GLB_STEAL_HITS),
            lifeline_arms: o.metrics.counter(obs::names::GLB_LIFELINE_ARMS),
            lifeline_gifts: o.metrics.counter(obs::names::GLB_LIFELINE_GIFTS),
            resuscitations: o.metrics.counter(obs::names::GLB_RESUSCITATIONS),
            deaths: o.metrics.counter(obs::names::GLB_DEATHS),
            steal_dead_victim: o.metrics.counter(obs::names::GLB_STEAL_DEAD_VICTIM),
            steal_timeouts: o.metrics.counter(obs::names::GLB_STEAL_TIMEOUTS),
            lifeline_reroutes: o.metrics.counter(obs::names::GLB_LIFELINE_REROUTES),
        });
        GlbPlace {
            victims: victim_list(me, places, cfg.max_victims, cfg.seed),
            lifelines: hypercube_lifelines(me, places, cfg.max_lifelines),
            rng: Mutex::new(XorShift64::new(cfg.seed.wrapping_add(me as u64 * 0x9e37))),
            cfg,
            bag: Mutex::new(factory()),
            factory,
            alive: AtomicBool::new(false),
            thieves: Mutex::new(Vec::new()),
            stats: GlbPlaceStats::default(),
            hooks,
        }
    }
}

/// Run `root_bag` to global completion, dynamically balanced across all
/// places. Blocks until every task (and every in-flight gift) is done —
/// termination is detected by a single root FINISH_DENSE, as in the paper.
/// Returns per-place results and balancer statistics.
pub fn run<B: TaskBag>(
    ctx: &Ctx,
    cfg: GlbConfig,
    root_bag: B,
    make_empty: impl Fn() -> B + Send + Sync + 'static,
) -> GlbOutcome<B::Result> {
    let n = ctx.num_places();
    let cfg2 = cfg.clone();
    let factory: Arc<dyn Fn() -> B + Send + Sync> = Arc::new(make_empty);
    let handle = PlaceLocalHandle::init(ctx, &PlaceGroup::world(ctx), move |c| {
        GlbPlace::<B>::new(cfg2.clone(), factory.clone(), c)
    });
    // Tree wave starts wherever run() was called; rotate the place list so
    // the caller is rank 0 of the wave.
    let start = ctx.here().0 as usize;
    let order: Arc<Vec<PlaceId>> =
        Arc::new((0..n).map(|i| PlaceId(((start + i) % n) as u32)).collect());
    ctx.finish_pragma(FinishKind::Dense, |c| {
        let order = order.clone();
        c.spawn(move |cc| wave(cc, handle, root_bag, 0, n, order));
    });
    // Global termination reached: collect results and stats.
    let mut results = Vec::with_capacity(n);
    let mut place_stats = Vec::with_capacity(n);
    for p in ctx.places() {
        let (r, s) = ctx.at(p, move |c| {
            let st = handle.get(c);
            debug_assert!(
                !st.alive.load(Ordering::SeqCst),
                "worker alive after finish"
            );
            let result = st.bag.lock().take_result();
            let stats = st.stats.snapshot();
            (result, stats)
        });
        results.push(r);
        place_stats.push(s);
    }
    PlaceGroup::world(ctx).broadcast(ctx, move |c| handle.free_local(c));
    GlbOutcome {
        results,
        place_stats,
    }
}

/// Initial tree-shaped distribution wave: split the bag along a binary tree
/// over `order[lo..hi)`, installing a share and starting a worker at each
/// place.
fn wave<B: TaskBag>(
    ctx: &Ctx,
    handle: PlaceLocalHandle<GlbPlace<B>>,
    mut bag: B,
    lo: usize,
    mut hi: usize,
    order: Arc<Vec<PlaceId>>,
) {
    debug_assert_eq!(ctx.here(), order[lo]);
    while hi - lo > 1 {
        let mid = lo + (hi - lo).div_ceil(2); // keep [lo,mid), ship [mid,hi)
        let loot = bag.split().unwrap_or_else(|| (handle.get(ctx).factory)());
        let (h2, o2) = (handle, order.clone());
        let target = order[mid];
        ctx.at_async_class(target, MsgClass::Steal, move |c| {
            wave(c, h2, loot, mid, hi, o2)
        });
        hi = mid;
    }
    let st = handle.get(ctx);
    st.bag.lock().merge(bag);
    st.alive.store(true, Ordering::SeqCst);
    main_loop(ctx, handle);
}

/// The per-place worker: process → distribute to lifeline thieves → probe;
/// when empty: random steals, then lifelines, then death.
fn main_loop<B: TaskBag>(ctx: &Ctx, handle: PlaceLocalHandle<GlbPlace<B>>) {
    let st = handle.get(ctx);
    debug_assert!(st.alive.load(Ordering::SeqCst));
    'outer: loop {
        // -------- local processing --------
        loop {
            let did = st.bag.lock().process(st.cfg.chunk);
            st.stats.processed.fetch_add(did as u64, Ordering::Relaxed);
            distribute(ctx, &st, handle);
            ctx.probe();
            if st.bag.lock().is_empty() {
                break;
            }
        }
        // -------- random steals --------
        let me = ctx.here().0;
        if !st.victims.is_empty() {
            for _ in 0..st.cfg.random_attempts {
                let victim = {
                    let mut rng = st.rng.lock();
                    st.victims[rng.below(st.victims.len())]
                };
                st.stats.random_attempts.fetch_add(1, Ordering::Relaxed);
                if let Some(h) = &st.hooks {
                    h.steal_attempts.inc(me);
                }
                let span = ctx.trace().and_then(|t| t.span_start());
                let hit = random_steal(ctx, handle, &st, PlaceId(victim));
                if let Some(t) = ctx.trace() {
                    t.span_end(span, "glb", "steal", victim as u64);
                }
                if hit {
                    st.stats.random_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(h) = &st.hooks {
                        h.steal_hits.inc(me);
                    }
                    continue 'outer;
                }
                // A gift may have landed while we waited for the refusal.
                if !st.bag.lock().is_empty() {
                    continue 'outer;
                }
            }
        }
        // -------- lifelines, then die --------
        for &l in &st.lifelines {
            // A lifeline to a dead place would never deliver a gift;
            // re-route it to the first alive peer so this worker stays
            // resuscitable as long as anyone is.
            let target = if ctx.place_dead(PlaceId(l)) {
                let alive = st
                    .lifelines
                    .iter()
                    .chain(st.victims.iter())
                    .find(|&&v| v != me && !ctx.place_dead(PlaceId(v)));
                match alive {
                    Some(&v) => {
                        st.stats.lifeline_reroutes.fetch_add(1, Ordering::Relaxed);
                        if let Some(h) = &st.hooks {
                            h.lifeline_reroutes.inc(me);
                        }
                        if let Some(t) = ctx.trace() {
                            t.instant("glb", "lifeline-reroute", v as u64);
                        }
                        v
                    }
                    None => continue, // no alive peer left to hang a lifeline on
                }
            } else {
                l
            };
            if let Some(h) = &st.hooks {
                h.lifeline_arms.inc(me);
            }
            if let Some(t) = ctx.trace() {
                t.instant("glb", "lifeline-arm", target as u64);
            }
            ctx.uncounted_async(PlaceId(target), MsgClass::Steal, move |vc| {
                let vst = handle.get(vc);
                let mut thieves = vst.thieves.lock();
                if !thieves.contains(&me) {
                    thieves.push(me);
                }
            });
        }
        // Die — unless a gift slipped in. The bag lock orders this decision
        // against concurrent gift deliveries.
        let bag = st.bag.lock();
        if bag.is_empty() {
            st.alive.store(false, Ordering::SeqCst);
            st.stats.deaths.fetch_add(1, Ordering::Relaxed);
            if let Some(h) = &st.hooks {
                h.deaths.inc(me);
            }
            if let Some(t) = ctx.trace() {
                t.instant("glb", "death", 0);
            }
            return;
        }
    }
}

/// Serve waiting lifeline thieves from a non-empty bag. Unserved thieves
/// stay registered (lifelines have memory).
fn distribute<B: TaskBag>(ctx: &Ctx, st: &GlbPlace<B>, handle: PlaceLocalHandle<GlbPlace<B>>) {
    loop {
        let thief = {
            let mut t = st.thieves.lock();
            match t.pop() {
                Some(t) => t,
                None => return,
            }
        };
        // Check the thief is still reachable BEFORE splitting the bag: a
        // gift to a dead place would be destroyed in flight, losing work.
        if ctx.place_dead(PlaceId(thief)) {
            st.stats.dead_skips.fetch_add(1, Ordering::Relaxed);
            if let Some(h) = &st.hooks {
                h.steal_dead_victim.inc(ctx.here().0);
            }
            if let Some(t) = ctx.trace() {
                t.instant("glb", "dead-thief", thief as u64);
            }
            continue;
        }
        let loot = st.bag.lock().split();
        match loot {
            Some(loot) => {
                st.stats.lifeline_gifts.fetch_add(1, Ordering::Relaxed);
                if let Some(h) = &st.hooks {
                    h.lifeline_gifts.inc(ctx.here().0);
                }
                if let Some(t) = ctx.trace() {
                    t.instant("glb", "gift", thief as u64);
                }
                // Counted under the root finish: redistribution along
                // lifelines is exactly what the root finish accounts for.
                ctx.at_async_class(PlaceId(thief), MsgClass::Steal, move |tc| {
                    deliver(tc, handle, loot)
                });
            }
            None => {
                st.thieves.lock().push(thief);
                return;
            }
        }
    }
}

/// A lifeline gift arriving at a thief: merge the loot; if the thief's
/// worker is dead, this very activity becomes the new worker
/// ("resuscitation is also one async task").
fn deliver<B: TaskBag>(ctx: &Ctx, handle: PlaceLocalHandle<GlbPlace<B>>, loot: B) {
    let st = handle.get(ctx);
    let was_alive = {
        let mut bag = st.bag.lock();
        bag.merge(loot);
        st.alive.swap(true, Ordering::SeqCst)
    };
    // Correlate the trace view with the causal DAG: the current cause here
    // IS the gift message's node (this activity arrived over the wire), so
    // the instant's arg lets a trace reader jump to the matching flow arrow.
    if let (Some(t), Some(c)) = (ctx.trace(), ctx.causal_current()) {
        t.instant("glb", "gift-chain", c.seq);
    }
    if !was_alive {
        st.stats.resuscitations.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &st.hooks {
            h.resuscitations.inc(ctx.here().0);
        }
        if let Some(t) = ctx.trace() {
            t.instant("glb", "resuscitate", 0);
        }
        main_loop(ctx, handle);
    }
}

/// One synchronous random steal attempt: an uncounted request/response pair
/// (invisible to the root finish), the thief help-waits for the answer.
///
/// Degrades instead of hanging under faults: a victim the transport reports
/// dead is skipped outright (and the wait aborts if the victim dies
/// mid-handshake), and an optional [`GlbConfig::steal_timeout`] abandons the
/// handshake when the transport may lose the request or response. Both
/// outcomes count as a failed steal, pushing the worker toward its
/// lifelines.
fn random_steal<B: TaskBag>(
    ctx: &Ctx,
    handle: PlaceLocalHandle<GlbPlace<B>>,
    st: &GlbPlace<B>,
    victim: PlaceId,
) -> bool {
    let me = ctx.here();
    if ctx.place_dead(victim) {
        st.stats.dead_skips.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &st.hooks {
            h.steal_dead_victim.inc(me.0);
        }
        if let Some(t) = ctx.trace() {
            t.instant("glb", "dead-victim", victim.0 as u64);
        }
        return false;
    }
    let slot: Arc<Mutex<Option<B>>> = Arc::new(Mutex::new(None));
    let flag = Arc::new(AtomicBool::new(false));
    let (slot2, flag2) = (slot.clone(), flag.clone());
    ctx.uncounted_async(victim, MsgClass::Steal, move |vc| {
        let vst = handle.get(vc);
        // Causal↔trace correlation: this closure's cause is the steal
        // request's DAG node, and the response send below chains to it, so
        // the whole handshake reads as one path in the causal export.
        if let (Some(t), Some(c)) = (vc.trace(), vc.causal_current()) {
            t.instant("glb", "steal-chain", c.seq);
        }
        let loot = vst.bag.lock().split();
        if loot.is_some() {
            vst.stats.steals_served.fetch_add(1, Ordering::Relaxed);
        }
        vc.uncounted_async(me, MsgClass::Steal, move |_| {
            *slot2.lock() = loot;
            flag2.store(true, Ordering::Release);
        });
    });
    let deadline = st.cfg.steal_timeout.map(|t| std::time::Instant::now() + t);
    ctx.wait_until(|| {
        flag.load(Ordering::Acquire)
            || ctx.place_dead(victim)
            || deadline.is_some_and(|d| std::time::Instant::now() >= d)
    });
    if !flag.load(Ordering::Acquire) {
        // Escaped without an answer: the victim died mid-handshake, or the
        // timeout expired. Either way, a failed steal.
        if ctx.place_dead(victim) {
            st.stats.dead_skips.fetch_add(1, Ordering::Relaxed);
            if let Some(h) = &st.hooks {
                h.steal_dead_victim.inc(me.0);
            }
        } else {
            st.stats.steal_timeouts.fetch_add(1, Ordering::Relaxed);
            if let Some(h) = &st.hooks {
                h.steal_timeouts.inc(me.0);
            }
        }
        if let Some(t) = ctx.trace() {
            t.instant("glb", "steal-abandoned", victim.0 as u64);
        }
        return false;
    }
    let loot = slot.lock().take();
    match loot {
        Some(loot) => {
            st.bag.lock().merge(loot);
            true
        }
        None => false,
    }
}
