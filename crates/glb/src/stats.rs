//! Per-place balancer counters and their run-level summary.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of one place's balancer.
#[derive(Default)]
pub struct GlbPlaceStats {
    /// Work units processed.
    pub processed: AtomicU64,
    /// Random steal attempts issued.
    pub random_attempts: AtomicU64,
    /// Random steal attempts that returned loot.
    pub random_hits: AtomicU64,
    /// Steal requests served with loot (as a victim).
    pub steals_served: AtomicU64,
    /// Lifeline gifts shipped (as a victim).
    pub lifeline_gifts: AtomicU64,
    /// Times this place's dead worker was resuscitated by a gift.
    pub resuscitations: AtomicU64,
    /// Times the worker died (went idle after failed steals).
    pub deaths: AtomicU64,
    /// Steal victims or lifeline thieves skipped because the transport
    /// reported their place dead (fault injection).
    pub dead_skips: AtomicU64,
    /// Random-steal handshakes abandoned on `steal_timeout`.
    pub steal_timeouts: AtomicU64,
    /// Lifelines re-routed away from a dead place to an alive peer.
    pub lifeline_reroutes: AtomicU64,
}

impl GlbPlaceStats {
    /// Snapshot into a plain summary row.
    pub fn snapshot(&self) -> GlbStatsSummary {
        GlbStatsSummary {
            processed: self.processed.load(Ordering::Relaxed),
            random_attempts: self.random_attempts.load(Ordering::Relaxed),
            random_hits: self.random_hits.load(Ordering::Relaxed),
            steals_served: self.steals_served.load(Ordering::Relaxed),
            lifeline_gifts: self.lifeline_gifts.load(Ordering::Relaxed),
            resuscitations: self.resuscitations.load(Ordering::Relaxed),
            deaths: self.deaths.load(Ordering::Relaxed),
            dead_skips: self.dead_skips.load(Ordering::Relaxed),
            steal_timeouts: self.steal_timeouts.load(Ordering::Relaxed),
            lifeline_reroutes: self.lifeline_reroutes.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data counters (one place's snapshot, or the sum over places).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GlbStatsSummary {
    /// Work units processed.
    pub processed: u64,
    /// Random steal attempts issued.
    pub random_attempts: u64,
    /// Random steal attempts that returned loot.
    pub random_hits: u64,
    /// Steal requests served with loot.
    pub steals_served: u64,
    /// Lifeline gifts shipped.
    pub lifeline_gifts: u64,
    /// Worker resuscitations.
    pub resuscitations: u64,
    /// Worker deaths.
    pub deaths: u64,
    /// Dead steal victims / lifeline thieves skipped.
    pub dead_skips: u64,
    /// Random-steal handshakes abandoned on timeout.
    pub steal_timeouts: u64,
    /// Lifelines re-routed away from dead places.
    pub lifeline_reroutes: u64,
}

impl GlbStatsSummary {
    /// Accumulate another summary (summing over places).
    pub fn add(&mut self, o: &GlbStatsSummary) {
        self.processed += o.processed;
        self.random_attempts += o.random_attempts;
        self.random_hits += o.random_hits;
        self.steals_served += o.steals_served;
        self.lifeline_gifts += o.lifeline_gifts;
        self.resuscitations += o.resuscitations;
        self.deaths += o.deaths;
        self.dead_skips += o.dead_skips;
        self.steal_timeouts += o.steal_timeouts;
        self.lifeline_reroutes += o.lifeline_reroutes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_add() {
        let s = GlbPlaceStats::default();
        s.processed.store(10, Ordering::Relaxed);
        s.random_hits.store(2, Ordering::Relaxed);
        let mut sum = s.snapshot();
        sum.add(&GlbStatsSummary {
            processed: 5,
            deaths: 1,
            ..Default::default()
        });
        assert_eq!(sum.processed, 15);
        assert_eq!(sum.random_hits, 2);
        assert_eq!(sum.deaths, 1);
    }
}
