//! `glb` — lifeline-based global load balancing.
//!
//! The paper's UTS chapter (§3.4, §6) revises the lifeline work-stealing
//! scheduler of Saraswat et al. (PPoPP'11) to reach petascale. This crate
//! is that scheduler, generic over a [`TaskBag`] (the GLB library of \[43\]):
//!
//! * every place runs **one worker activity** processing its local bag in
//!   chunks, probing the network between chunks;
//! * an idle worker first makes `w` **random steal attempts** — synchronous
//!   handshakes implemented with *uncounted* activities so rebalancing
//!   traffic is invisible to the root finish;
//! * if all fail, it signals its **lifelines** (hypercube neighbours) and
//!   *dies*. Lifelines have memory: a victim that later obtains work splits
//!   its bag and ships *gifts* that resuscitate dead thieves;
//! * gifts and the initial tree-shaped distribution wave are ordinary
//!   counted activities under one root finish, so global termination is
//!   detected by the `finish` itself — the paper uses FINISH_DENSE for this
//!   root finish and so do we;
//! * the victim list is precomputed and **bounded** (≤1,024 by default):
//!   the paper observed severe network degradation at scale without the
//!   bound.
//!
//! ```
//! use apgas::{Config, Runtime};
//! use glb::{run, GlbConfig, TaskBag};
//!
//! // A trivial bag: a pile of numbers to sum.
//! #[derive(Default)]
//! struct Pile { items: Vec<u64>, sum: u64 }
//! impl TaskBag for Pile {
//!     type Result = u64;
//!     fn process(&mut self, n: usize) -> usize {
//!         let take = n.min(self.items.len());
//!         for _ in 0..take { self.sum += self.items.pop().unwrap(); }
//!         take
//!     }
//!     fn is_empty(&self) -> bool { self.items.is_empty() }
//!     fn split(&mut self) -> Option<Self> {
//!         if self.items.len() < 2 { return None; }
//!         let half = self.items.split_off(self.items.len() / 2);
//!         Some(Pile { items: half, sum: 0 })
//!     }
//!     fn merge(&mut self, other: Self) {
//!         self.items.extend(other.items);
//!         self.sum += other.sum;
//!     }
//!     fn take_result(&mut self) -> u64 { self.sum }
//! }
//!
//! let rt = Runtime::new(Config::new(4));
//! let out = rt.run(|ctx| {
//!     let root = Pile { items: (1..=100).collect(), sum: 0 };
//!     run(ctx, GlbConfig::default(), root, Pile::default)
//! });
//! assert_eq!(out.results.iter().sum::<u64>(), (1..=100).sum());
//! ```

pub mod lifeline;
pub mod stats;
pub mod taskbag;
pub mod worker;

pub use lifeline::{hypercube_lifelines, victim_list, XorShift64};
pub use stats::{GlbPlaceStats, GlbStatsSummary};
pub use taskbag::TaskBag;
pub use worker::{run, GlbConfig, GlbOutcome};
