//! Criterion comparison of the finish termination-detection protocols —
//! the §3.1 contribution. Each benchmark runs the same fan-out workload
//! (one remote activity per place) under a different protocol on a shared
//! runtime, so differences are pure protocol cost.

use apgas::{Config, FinishKind, Runtime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn fan_out(rt: &Runtime, kind: FinishKind) {
    rt.run(move |ctx| {
        ctx.finish_pragma(kind, |c| {
            for p in c.places().skip(1) {
                c.at_async(p, |_| {});
            }
        });
    });
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("finish_fanout_16_places");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let rt = Runtime::new(Config::new(16).places_per_host(4));
    for kind in [FinishKind::Default, FinishKind::Spmd, FinishKind::Dense] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    fan_out(&rt, kind);
                    black_box(())
                })
            },
        );
    }
    g.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("finish_round_trip");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let rt = Runtime::new(Config::new(2));
    for kind in [FinishKind::Default, FinishKind::Here] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    rt.run(move |ctx| {
                        ctx.finish_pragma(kind, |cc| {
                            let home = cc.here();
                            cc.at_async(apgas::PlaceId(1), move |rc| {
                                rc.at_async(home, |_| {});
                            });
                        });
                    });
                    black_box(())
                })
            },
        );
    }
    g.finish();
}

fn bench_local_counter(c: &mut Criterion) {
    let mut g = c.benchmark_group("finish_local_spawns");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let rt = Runtime::new(Config::new(1));
    for kind in [FinishKind::Default, FinishKind::Local] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    rt.run(move |ctx| {
                        ctx.finish_pragma(kind, |cc| {
                            for _ in 0..64 {
                                cc.spawn(|_| {});
                            }
                        });
                    });
                    black_box(())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    finish,
    bench_protocols,
    bench_round_trip,
    bench_local_counter
);
criterion_main!(finish);
