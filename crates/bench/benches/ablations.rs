//! Criterion ablations: GLB steal policy on UTS, and broadcast tree vs
//! flat (the design choices DESIGN.md calls out).

use apgas::{Config, PlaceGroup, Runtime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glb::GlbConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_glb_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("uts_glb_policy_4_places");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let tree = uts::GeoTree::paper(9);
    let rt = Runtime::new(Config::new(4));
    let configs: Vec<(&str, GlbConfig)> = vec![
        ("lifelines+random", GlbConfig::default()),
        (
            "lifelines-only",
            GlbConfig {
                random_attempts: 0,
                ..GlbConfig::default()
            },
        ),
        (
            "aggressive-random",
            GlbConfig {
                random_attempts: 8,
                ..GlbConfig::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let cfg = cfg.clone();
                let r = rt.run(move |ctx| uts::run_distributed(ctx, tree, cfg));
                black_box(r.stats.nodes)
            })
        });
    }
    g.finish();
}

fn bench_bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("place_group_broadcast_32");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let rt = Runtime::new(Config::new(32).places_per_host(8));
    g.bench_function("tree", |b| {
        b.iter(|| {
            rt.run(|ctx| PlaceGroup::world(ctx).broadcast(ctx, |_| {}));
            black_box(())
        })
    });
    g.bench_function("flat", |b| {
        b.iter(|| {
            rt.run(|ctx| PlaceGroup::world(ctx).broadcast_flat(ctx, |_| {}));
            black_box(())
        })
    });
    g.finish();
}

fn bench_interval_steal(c: &mut Criterion) {
    // Fragment-of-every-interval vs naive stealing is a *policy inside the
    // bag*; benchmark the split operation itself on a realistic worklist.
    let mut g = c.benchmark_group("uts_split_policy");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("fragment_every_interval", |b| {
        let tree = uts::GeoTree::paper(10);
        b.iter(|| {
            use glb::TaskBag;
            let mut bag = uts::UtsBag::root(tree);
            bag.process(2000);
            black_box(bag.split().map(|l| l.intervals().len()))
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    bench_glb_policies,
    bench_bcast,
    bench_interval_steal
);
criterion_main!(ablations);
