//! Criterion microbenchmarks of the eight kernels' compute cores — the
//! measured base rates feeding the Figure-1 projections (one group per
//! Figure-1 panel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn cfg(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_hpl(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1_hpl_local_lu");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [64usize, 128] {
        g.throughput(Throughput::Elements(n as u64 * n as u64 * n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let a = kernels::linalg::Mat::from_fn(n, n, |i, j| kernels::util::element(1, i, j));
            b.iter(|| {
                let mut lu = a.clone();
                let mut piv = vec![0usize; n];
                kernels::linalg::getrf_recursive(&mut lu, &mut piv);
                black_box(lu.data[0])
            });
        });
    }
    g.finish();
}

fn bench_dgemm(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1_hpl_dgemm");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [64usize, 128] {
        g.throughput(Throughput::Elements(2 * (n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let a = kernels::linalg::Mat::from_fn(n, n, |i, j| kernels::util::element(2, i, j));
            let bm = kernels::linalg::Mat::from_fn(n, n, |i, j| kernels::util::element(3, i, j));
            let mut cm = kernels::linalg::Mat::zeros(n, n);
            b.iter(|| {
                kernels::linalg::dgemm_sub(n, n, n, &a.data, n, &bm.data, n, &mut cm.data, n);
                black_box(cm.data[0])
            });
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1_fft_local");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [1024usize, 16_384] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let x: Vec<_> = (0..n).map(|j| kernels::fft::input_element(j, 19)).collect();
            b.iter(|| black_box(kernels::fft::fft_six_step(&x)));
        });
    }
    g.finish();
}

fn bench_ra(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1_randomaccess_local");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for log2 in [12u32, 16] {
        let updates = (1u64 << log2) * 2;
        g.throughput(Throughput::Elements(updates));
        g.bench_with_input(BenchmarkId::from_parameter(log2), &log2, |b, &log2| {
            b.iter(|| black_box(kernels::ra::ra_sequential(log2, 1)));
        });
    }
    g.finish();
}

fn bench_stream(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1_stream_triad");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [100_000usize, 1_000_000] {
        g.throughput(Throughput::Bytes(24 * n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let bb: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let cc: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
            let mut aa = vec![0.0; n];
            b.iter(|| {
                kernels::stream::triad(&mut aa, &bb, &cc);
                black_box(aa[0])
            });
        });
    }
    g.finish();
}

fn bench_uts(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1_uts_traversal");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for depth in [8u32, 10] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            let tree = uts::GeoTree::paper(d);
            b.iter(|| black_box(uts::traverse(&tree)));
        });
    }
    g.finish();
}

fn bench_sha1(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1_uts_sha1");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.throughput(Throughput::Elements(1));
    g.bench_function("spawn", |b| {
        let s = uts::rng::init(19);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(uts::rng::spawn(&s, i))
        });
    });
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1_kmeans_iteration");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let p = kernels::kmeans::KMeansParams::scaled(2000, 32);
    let pts = kernels::kmeans::generate_points(&p, 0);
    let cen = kernels::kmeans::initial_centroids(&p);
    g.throughput(Throughput::Elements(p.points_per_place as u64));
    g.bench_function("assign", |b| {
        b.iter(|| {
            let mut sums = vec![0.0; p.k * p.dim];
            let mut counts = vec![0.0; p.k];
            black_box(kernels::kmeans::assign_and_accumulate(
                &pts,
                &cen,
                p.dim,
                p.k,
                &mut sums,
                &mut counts,
            ))
        });
    });
    g.finish();
}

fn bench_sw(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1_sw_cells");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let q = kernels::sw::generate_query(200, 19);
    let t = kernels::sw::generate_dna(5_000, 19, &q, 2_500);
    g.throughput(Throughput::Elements((q.len() * t.len()) as u64));
    g.bench_function("200x5000", |b| {
        b.iter(|| {
            black_box(kernels::sw::sw_score(
                &q,
                &t,
                kernels::sw::Scoring::default(),
            ))
        });
    });
    g.finish();
}

fn bench_bc(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1_bc_brandes");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for scale in [8u32, 10] {
        g.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            let graph = kernels::bc::rmat::generate(&kernels::bc::rmat::RmatParams::paper(s));
            b.iter(|| black_box(kernels::bc::bc_sequential(&graph).edges_traversed));
        });
    }
    g.finish();
}

criterion_group!(
    figure1,
    bench_hpl,
    bench_dgemm,
    bench_fft,
    bench_ra,
    bench_stream,
    bench_uts,
    bench_sha1,
    bench_kmeans,
    bench_sw,
    bench_bc
);
criterion_main!(figure1);
