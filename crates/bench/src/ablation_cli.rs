//! Shared command-line surface for the overhead-ablation binaries
//! (`obs_overhead`, `causal_overhead`): one flag vocabulary, one parser, so
//! the ablations stay comparable and scripts can drive both uniformly.

/// Parsed ablation flags.
#[derive(Clone, Debug)]
pub struct AblationCli {
    /// `--quick`: smaller tree, fewer reps — CI mode.
    pub quick: bool,
    /// `--places N`: place count of every measured runtime.
    pub places: usize,
    /// `--depth D`: UTS tree depth (defaults depend on `--quick`).
    pub depth: u32,
    /// `--reps R`: interleaved repetitions per mode, keeping the minimum.
    pub reps: usize,
    /// `--trace-capacity N`: per-worker ring capacity (trace and causal),
    /// in events.
    pub trace_capacity: usize,
    /// `--out PATH`: the JSON results file.
    pub out: String,
    /// `--trace-out PATH`: the chrome-trace artifact of the best traced run.
    pub trace_out: String,
}

impl AblationCli {
    /// Parse `std::env::args`, with binary-specific default output paths.
    ///
    /// Panics with a usage message on a malformed value — these are
    /// operator-facing benchmark binaries, not long-running services.
    pub fn parse(default_out: &str, default_trace_out: &str) -> AblationCli {
        let args: Vec<String> = std::env::args().collect();
        Self::parse_from(&args, default_out, default_trace_out)
    }

    /// Testable core of [`AblationCli::parse`].
    pub fn parse_from(args: &[String], default_out: &str, default_trace_out: &str) -> AblationCli {
        let quick = args.iter().any(|a| a == "--quick");
        let parse_num = |flag: &str| {
            flag_value(args, flag).map(|v| {
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("{flag} takes a number, got {v:?}"))
            })
        };
        let places = parse_num("--places").unwrap_or(8);
        let depth = parse_num("--depth").unwrap_or(if quick { 8 } else { 10 }) as u32;
        let reps = parse_num("--reps").unwrap_or(if quick { 3 } else { 5 });
        let trace_capacity = parse_num("--trace-capacity")
            .unwrap_or_else(|| apgas::Config::new(1).trace_buffer_events);
        assert!(places > 0, "--places must be positive");
        assert!(reps > 0, "--reps must be positive");
        assert!(trace_capacity > 0, "--trace-capacity must be positive");
        AblationCli {
            quick,
            places,
            depth,
            reps,
            trace_capacity,
            out: flag_value(args, "--out").unwrap_or(default_out).to_string(),
            trace_out: flag_value(args, "--trace-out")
                .unwrap_or(default_trace_out)
                .to_string(),
        }
    }
}

/// The value following `flag`, if present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        std::iter::once("bin")
            .chain(s.iter().copied())
            .map(String::from)
            .collect()
    }

    #[test]
    fn defaults_full_run() {
        let c = AblationCli::parse_from(&argv(&[]), "o.json", "t.json");
        assert!(!c.quick);
        assert_eq!((c.places, c.depth, c.reps), (8, 10, 5));
        assert_eq!(c.trace_capacity, apgas::Config::new(1).trace_buffer_events);
        assert_eq!(c.out, "o.json");
        assert_eq!(c.trace_out, "t.json");
    }

    #[test]
    fn quick_shrinks_depth_and_reps() {
        let c = AblationCli::parse_from(&argv(&["--quick"]), "o", "t");
        assert!(c.quick);
        assert_eq!((c.depth, c.reps), (8, 3));
    }

    #[test]
    fn explicit_flags_override_quick_defaults() {
        let c = AblationCli::parse_from(
            &argv(&[
                "--quick",
                "--places",
                "4",
                "--depth",
                "9",
                "--reps",
                "2",
                "--trace-capacity",
                "512",
                "--out",
                "x.json",
                "--trace-out",
                "y.json",
            ]),
            "o",
            "t",
        );
        assert_eq!((c.places, c.depth, c.reps), (4, 9, 2));
        assert_eq!(c.trace_capacity, 512);
        assert_eq!((c.out.as_str(), c.trace_out.as_str()), ("x.json", "y.json"));
    }

    #[test]
    #[should_panic(expected = "--places takes a number")]
    fn malformed_number_panics() {
        AblationCli::parse_from(&argv(&["--places", "many"]), "o", "t");
    }
}
