//! Shared harness utilities: measured base rates for every kernel and the
//! table/series printing the Figure-1 and Table-1/2 binaries use.
//!
//! The experiment methodology (see EXPERIMENTS.md): each kernel's *rates*
//! are measured for real on this machine — sequential base rate plus
//! in-process multi-place runs that exercise the full protocol stack — and
//! the paper's *scale axis* comes from `p775::model`, whose shape constants
//! are calibrated against the paper's anchors. A figure is "reproduced"
//! when the measured code plus the machine model yields the paper's curve
//! shape.

use apgas::{Config, Runtime};
use kernels::util::timed;

pub mod ablation_cli;

/// A measured or projected series: (cores, aggregate, per-core) rows.
pub struct Series {
    /// Kernel/figure name.
    pub title: String,
    /// Unit of the aggregate column.
    pub agg_unit: &'static str,
    /// Unit of the per-core column.
    pub per_unit: &'static str,
    /// `(cores, aggregate, per_core)` rows.
    pub rows: Vec<(usize, f64, f64)>,
}

impl Series {
    /// Pretty-print the series like a Figure-1 panel's data table.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        println!(
            "{:>10}  {:>16}  {:>16}",
            "cores", self.agg_unit, self.per_unit
        );
        for &(c, agg, per) in &self.rows {
            println!("{c:>10}  {agg:>16.3}  {per:>16.4}");
        }
    }
}

/// The paper's Figure-1 x-axis sample points.
pub const PAPER_CORES: [usize; 7] = [1, 32, 1024, 8192, 16_384, 32_768, 55_680];

/// Build a runtime with `places` places (32 per modeled host).
pub fn runtime(places: usize) -> Runtime {
    Runtime::new(Config::new(places))
}

/// Print a two-column comparison table (paper vs reproduction).
pub fn print_comparison(title: &str, rows: &[(String, f64, f64)]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "benchmark", "paper", "ours", "ratio"
    );
    for (name, paper, ours) in rows {
        let ratio = if *paper != 0.0 { ours / paper } else { 0.0 };
        println!("{name:<28} {paper:>12.3} {ours:>12.3} {ratio:>8.2}");
    }
}

/// Measure UTS single-place traversal rate (nodes/s) at tree depth `d`.
pub fn measure_uts_rate(depth: u32) -> f64 {
    let tree = uts::GeoTree::paper(depth);
    let (stats, secs) = timed(|| uts::traverse(&tree));
    stats.nodes as f64 / secs
}

/// Measure local Stream Triad bandwidth (bytes/s).
pub fn measure_stream_rate(n: usize) -> f64 {
    kernels::stream::stream_local(n, 5).bytes_per_sec
}

/// Measure sequential HPL rate (flop/s) at order `n`.
pub fn measure_hpl_rate(n: usize) -> f64 {
    let r = kernels::hpl::hpl_sequential(kernels::hpl::HplParams {
        n,
        nb: 32.min(n),
        seed: 42,
    });
    assert!(r.residual < 16.0, "HPL verification failed");
    kernels::hpl::flops(n) / r.seconds
}

/// Measure local FFT rate (flop/s, HPCC accounting) at size `n`.
pub fn measure_fft_rate(n: usize) -> f64 {
    let x: Vec<_> = (0..n).map(|j| kernels::fft::input_element(j, 19)).collect();
    let (_, secs) = timed(|| kernels::fft::fft_six_step(&x));
    5.0 * n as f64 * (n as f64).log2() / secs
}

/// Measure sequential RandomAccess rate (updates/s).
pub fn measure_ra_rate(log2_table: u32) -> f64 {
    let (errors, rate) = kernels::ra::ra_sequential(log2_table, 2);
    assert_eq!(errors, 0);
    rate
}

/// Measure sequential BC rate (edges/s) at R-MAT scale `s`.
pub fn measure_bc_rate(scale: u32) -> f64 {
    let g = kernels::bc::rmat::generate(&kernels::bc::rmat::RmatParams::paper(scale));
    let r = kernels::bc::bc_sequential(&g);
    r.edges_traversed as f64 / r.seconds
}

/// Measure K-Means sequential time (seconds) for the scaled workload.
pub fn measure_kmeans_seconds(points: usize, k: usize) -> f64 {
    let p = kernels::kmeans::KMeansParams::scaled(points, k);
    let (_, secs) = timed(|| kernels::kmeans::kmeans_sequential(&p, 1));
    secs
}

/// Measure Smith-Waterman sequential time (seconds).
pub fn measure_sw_seconds(qlen: usize, tlen: usize) -> f64 {
    let q = kernels::sw::generate_query(qlen, 19);
    let t = kernels::sw::generate_dna(tlen, 19, &q, tlen / 2);
    let (_, secs) = timed(|| kernels::sw::sw_sequential(&q, &t, kernels::sw::Scoring::default()));
    secs
}
