//! Causal-tracing overhead ablation: UTS under the lifeline GLB with the
//! observability layer fully off (the pre-observability baseline), with the
//! default configuration (metrics on, causal tracing compiled in but OFF),
//! and with causal cross-place tracing ON — verifying that the dormant
//! causal machinery costs ≤ 2% wall time and that no mode perturbs the
//! traversal (identical node counts everywhere).
//!
//! Writes `BENCH_causal_overhead.json` (including the critical-path summary
//! of the causal run) and the causal run's chrome trace — flow arrows
//! included — loadable in Perfetto.
//!
//! Usage: `cargo run --release -p bench --bin causal_overhead [--quick]
//!   [--places N] [--depth D] [--reps R] [--trace-capacity N]
//!   [--out PATH] [--trace-out PATH]`

use apgas::{Config, Runtime};
use bench::ablation_cli::AblationCli;
use kernels::util::timed;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// No observability state at all — the baseline.
    Off,
    /// The default runtime: metrics on, causal tracing off. This is the
    /// mode the ≤ 2% budget applies to — the price every user pays.
    CausalOff,
    /// Causal cross-place tracing on (trace rings sized by
    /// `--trace-capacity`).
    Causal,
}

const MODES: [Mode; 3] = [Mode::Off, Mode::CausalOff, Mode::Causal];
const NAMES: [&str; 3] = ["off", "causal-off", "causal"];

impl Mode {
    fn config(self, cli: &AblationCli) -> Config {
        match self {
            Mode::Off => Config::new(cli.places).obs_disable(true),
            Mode::CausalOff => Config::new(cli.places),
            Mode::Causal => Config::new(cli.places)
                .causal_enable(true)
                .trace_buffer_events(cli.trace_capacity),
        }
    }
}

struct Run {
    wall_seconds: f64,
    nodes: u64,
    critical_path_json: Option<String>,
    chrome_trace: Option<String>,
}

fn main() {
    let cli = AblationCli::parse("BENCH_causal_overhead.json", "TRACE_causal_uts.json");

    // Same estimator as obs_overhead: interleave the modes so they see the
    // same load drift, keep the minimum per mode.
    let mut best: [Option<Run>; 3] = [None, None, None];
    for _ in 0..cli.reps {
        for (slot, mode) in MODES.into_iter().enumerate() {
            let r = bench_uts(&cli, mode);
            if best[slot]
                .as_ref()
                .is_none_or(|b| r.wall_seconds < b.wall_seconds)
            {
                best[slot] = Some(r);
            }
        }
    }
    let [off, causal_off, causal] = best.map(|r| r.expect("every mode measured"));
    assert_eq!(
        off.nodes, causal_off.nodes,
        "UTS node count must not vary across modes"
    );
    assert_eq!(
        off.nodes, causal.nodes,
        "UTS node count must not vary across modes"
    );

    let pct = |r: &Run| (r.wall_seconds / off.wall_seconds - 1.0) * 100.0;
    let (off_pct, on_pct) = (pct(&causal_off), pct(&causal));
    println!(
        "{:>12} {:>10} {:>12} {:>10}",
        "mode", "ms", "nodes", "overhead"
    );
    let rows = [(&off, 0.0), (&causal_off, off_pct), (&causal, on_pct)];
    for ((r, p), name) in rows.iter().zip(NAMES) {
        println!(
            "{:>12} {:>10.2} {:>12} {:>9.2}%",
            name,
            r.wall_seconds * 1e3,
            r.nodes,
            p
        );
    }

    let cp = causal
        .critical_path_json
        .as_deref()
        .expect("causal run exports critical paths");
    let roots = serde_json::from_str(cp)
        .expect("critical-path JSON parses")
        .get("roots")
        .and_then(|r| r.as_array().map(Vec::len))
        .unwrap_or(0);
    println!("causal run reconstructed {roots} finish critical path(s)");

    let chrome = causal.chrome_trace.as_deref().expect("causal run exports");
    std::fs::write(&cli.trace_out, chrome)
        .unwrap_or_else(|e| panic!("write {}: {e}", cli.trace_out));
    let json = to_json(&cli, &rows, roots, cp);
    std::fs::write(&cli.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", cli.out));
    println!("\nwrote {} and {}", cli.out, cli.trace_out);
}

fn bench_uts(cli: &AblationCli, mode: Mode) -> Run {
    let rt = Runtime::new(mode.config(cli));
    let tree = uts::GeoTree::paper(cli.depth);
    let (nodes, secs) = rt.run(move |ctx| {
        let (run, secs) = timed(|| uts::run_distributed(ctx, tree, glb::GlbConfig::default()));
        (run.stats.nodes, secs)
    });
    Run {
        wall_seconds: secs,
        nodes,
        critical_path_json: if mode == Mode::Causal {
            rt.critical_path_json()
        } else {
            None
        },
        chrome_trace: if mode == Mode::Causal {
            rt.chrome_trace_json()
        } else {
            None
        },
    }
}

fn to_json(cli: &AblationCli, rows: &[(&Run, f64)], roots: usize, critical_paths: &str) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"causal tracing overhead ablation\",\n");
    s.push_str(&format!("  \"quick\": {},\n", cli.quick));
    s.push_str(&format!(
        "  \"workload\": {{\"kernel\": \"uts\", \"places\": {}, \
         \"depth\": {}, \"reps\": {}}},\n",
        cli.places, cli.depth, cli.reps
    ));
    s.push_str("  \"results\": [\n");
    for (i, ((r, pct), name)) in rows.iter().zip(NAMES).enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"wall_seconds\": {:.6}, \"nodes\": {}, \
             \"overhead_pct\": {:.4}}}{}\n",
            name,
            r.wall_seconds,
            r.nodes,
            pct,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let (off_pct, on_pct) = (rows[1].1, rows[2].1);
    s.push_str(&format!("  \"overhead_causal_off_pct\": {off_pct:.4},\n"));
    s.push_str(&format!("  \"overhead_causal_on_pct\": {on_pct:.4},\n"));
    s.push_str(&format!("  \"within_budget\": {},\n", off_pct <= 2.0));
    s.push_str(&format!("  \"critical_path_roots\": {roots},\n"));
    // The causal run's critical-path report, verbatim (already JSON).
    s.push_str("  \"critical_paths\": ");
    s.push_str(critical_paths.trim_end());
    s.push_str("\n}\n");
    s
}
