//! Small-message throughput ceiling: a GUPS-style all-to-all storm of tiny
//! active messages plus a two-place ping-pong latency probe, with sender-side
//! coalescing on vs off, writing `BENCH_msg_rate.json`.
//!
//! This is the messages-per-second gate for the lock-free SPSC mailbox
//! rings and the envelope arena: the storm's figure of merit is a
//! deterministic message count, so `msgs_per_sec` rows are directly
//! comparable across runs and `bench_check` enforces they only go up
//! (one-sided `*_per_sec` rule).
//!
//! Workloads:
//!
//! * **storm** — every place ships `K` tiny XOR-update messages round-robin
//!   across every *other* place under one finish (the software GUPS update
//!   path of `aggregation.rs`, stripped to pure message pumping);
//! * **pingpong** — place 0 performs `K` blocking `at` round trips to
//!   place 1, measuring per-hop latency on an otherwise idle runtime.
//!
//! Usage: `cargo run --release -p bench --bin msg_rate [--quick]
//!   [--aggregation on|off|both] [--transport local|tcp] [--out PATH]`
//!
//! With `--transport tcp` every run serializes its envelopes per
//! PROTOCOL.md and carries them over a loopback socket
//! ([`x10rt::TcpTransport`] in self-loop mode, `CodecMode::Bytes`); the
//! default `local` keeps the in-process mailbox rings. TCP numbers go to a
//! separate output file (pass `--out`), never the gated golden.

use apgas::{CodecMode, Config, Ctx, PlaceGroup, PlaceLocalHandle, Runtime};
use bench::ablation_cli::flag_value;
use kernels::util::timed;
use std::sync::atomic::{AtomicU64, Ordering};

/// One measured cell.
struct Row {
    mode: &'static str,
    places: usize,
    aggregation: bool,
    /// Deterministic payload message count (the figure of merit).
    payload_msgs: u64,
    /// Physical envelopes handed to the transport (includes protocol).
    envelopes: u64,
    /// Total logical messages (payload + finish/steal protocol).
    messages: u64,
    wall_seconds: f64,
    /// `payload_msgs / wall_seconds` — the gated throughput.
    msgs_per_sec: f64,
    /// Ping-pong only: one blocking round trip, in microseconds.
    round_trip_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mode = flag_value(&args, "--aggregation").unwrap_or("both");
    let out = flag_value(&args, "--out").unwrap_or("BENCH_msg_rate.json");
    let transport = flag_value(&args, "--transport").unwrap_or("local");
    let tcp = match transport {
        "local" => false,
        "tcp" => true,
        other => panic!("--transport must be local|tcp, got {other}"),
    };
    let run_on = mode == "both" || mode == "on";
    let run_off = mode == "both" || mode == "off";
    assert!(
        run_on || run_off,
        "--aggregation must be one of on|off|both, got {mode}"
    );

    let storm_per_place = if quick { 4_000 } else { 20_000 };
    let pingpong_trips = if quick { 500 } else { 2_000 };
    let reps = if quick { 2 } else { 5 };

    let mut rows = Vec::new();
    for &places in &[8usize, 32] {
        rows.extend(paired(reps, run_on, run_off, |agg| {
            bench_storm(places, agg, storm_per_place, tcp)
        }));
    }
    rows.extend(paired(reps, run_on, run_off, |agg| {
        bench_pingpong(agg, pingpong_trips, tcp)
    }));

    print_table(&rows);
    let json = to_json(&rows, quick, storm_per_place, pingpong_trips, transport);
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
}

/// Interleaved min-of-`reps` per mode (same estimator as `aggregation.rs`):
/// alternate on/off so both see the same machine-load drift, keep the
/// highest-throughput run of each.
fn paired(reps: usize, run_on: bool, run_off: bool, f: impl Fn(bool) -> Row) -> Vec<Row> {
    let mut best: [Option<Row>; 2] = [None, None];
    for rep in 0..reps {
        let order = if rep % 2 == 0 {
            [(0, true), (1, false)]
        } else {
            [(1, false), (0, true)]
        };
        for (slot, agg) in order {
            if (agg && !run_on) || (!agg && !run_off) {
                continue;
            }
            let r = f(agg);
            if best[slot]
                .as_ref()
                .is_none_or(|b| r.wall_seconds < b.wall_seconds)
            {
                best[slot] = Some(r);
            }
        }
    }
    best.into_iter().flatten().collect()
}

fn config(places: usize, aggregation: bool, tcp: bool) -> Config {
    Config::new(places)
        .batch_disable(!aggregation)
        .codec(if tcp {
            CodecMode::Bytes
        } else {
            CodecMode::Inline
        })
}

/// Build the benchmark runtime on the selected back-end.
fn runtime(places: usize, aggregation: bool, tcp: bool) -> Runtime {
    let cfg = config(places, aggregation, tcp);
    if tcp {
        let t = x10rt::TcpTransport::self_loop(places).expect("tcp self-loop transport");
        Runtime::with_transport(cfg, t)
    } else {
        Runtime::new(cfg)
    }
}

/// All-to-all storm: place `p` sends `per_place` XOR updates, destination
/// round-robin over the other `places - 1` places, all under one finish.
fn bench_storm(places: usize, aggregation: bool, per_place: usize, tcp: bool) -> Row {
    let rt = runtime(places, aggregation, tcp);
    let row = rt.run(move |ctx| {
        let sink = PlaceLocalHandle::init(ctx, &PlaceGroup::world(ctx), |_| AtomicU64::new(0));
        ctx.net_stats().reset();
        let (_, secs) = timed(|| storm(ctx, sink, per_place));
        collect(ctx, "storm", secs, (per_place * ctx.num_places()) as u64)
    });
    Row {
        places,
        aggregation,
        ..row
    }
}

fn storm(ctx: &Ctx, sink: PlaceLocalHandle<AtomicU64>, per_place: usize) {
    let places = ctx.num_places();
    ctx.finish(|c| {
        for p in c.places() {
            c.at_async(p, move |cc| {
                let me = cc.here().index();
                // xorshift64* stream, seeded per place, for the payload.
                let mut x = 0x9e3779b97f4a7c15u64 ^ ((me as u64 + 1) << 17);
                for i in 0..per_place {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let dest = (me + 1 + i % (places - 1)) % places;
                    cc.at_async(apgas::PlaceId(dest as u32), move |rc| {
                        sink.get(rc).fetch_xor(x, Ordering::Relaxed);
                    });
                }
            });
        }
    });
}

/// Two places, `trips` blocking round trips from place 0 to place 1.
fn bench_pingpong(aggregation: bool, trips: usize, tcp: bool) -> Row {
    let rt = runtime(2, aggregation, tcp);
    let row = rt.run(move |ctx| {
        // One warm-up trip pays the lazy-init costs outside the timer.
        ctx.at(apgas::PlaceId(1), |_| ());
        ctx.net_stats().reset();
        let (_, secs) = timed(|| {
            for _ in 0..trips {
                ctx.at(apgas::PlaceId(1), |_| ());
            }
        });
        // Each `at` is one request + one response message.
        collect(ctx, "pingpong", secs, 2 * trips as u64)
    });
    Row {
        places: 2,
        aggregation,
        round_trip_us: row.wall_seconds / trips as f64 * 1e6,
        ..row
    }
}

fn collect(ctx: &Ctx, mode: &'static str, secs: f64, payload_msgs: u64) -> Row {
    let s = ctx.net_stats();
    Row {
        mode,
        places: 0,
        aggregation: false,
        payload_msgs,
        envelopes: s.total_envelopes(),
        messages: s.total_messages(),
        wall_seconds: secs,
        msgs_per_sec: payload_msgs as f64 / secs.max(1e-9),
        round_trip_us: 0.0,
    }
}

fn print_table(rows: &[Row]) {
    println!(
        "{:>9} {:>7} {:>5} {:>12} {:>12} {:>12} {:>10} {:>14} {:>10}",
        "mode", "places", "agg", "payload", "messages", "envelopes", "ms", "msgs/s", "rtt us"
    );
    for r in rows {
        println!(
            "{:>9} {:>7} {:>5} {:>12} {:>12} {:>12} {:>10.2} {:>14.0} {:>10.2}",
            r.mode,
            r.places,
            if r.aggregation { "on" } else { "off" },
            r.payload_msgs,
            r.messages,
            r.envelopes,
            r.wall_seconds * 1e3,
            r.msgs_per_sec,
            r.round_trip_us
        );
    }
}

fn to_json(
    rows: &[Row],
    quick: bool,
    storm_per_place: usize,
    pingpong_trips: usize,
    transport: &str,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"small-message throughput ceiling\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"transport\": \"{transport}\",\n"));
    s.push_str(&format!(
        "  \"workloads\": {{\"storm_per_place\": {storm_per_place}, \
         \"pingpong_trips\": {pingpong_trips}}},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"places\": {}, \"aggregation\": \"{}\", \
             \"figure_of_merit\": {}, \"messages\": {}, \"envelopes\": {}, \
             \"wall_seconds\": {:.6}, \"msgs_per_sec\": {:.1}, \"round_trip_us\": {:.2}}}{}\n",
            r.mode,
            r.places,
            if r.aggregation { "on" } else { "off" },
            r.payload_msgs,
            r.messages,
            r.envelopes,
            r.wall_seconds,
            r.msgs_per_sec,
            r.round_trip_us,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"summary\": [\n");
    let pairs: Vec<(&Row, &Row)> = rows
        .iter()
        .filter(|r| r.aggregation)
        .filter_map(|on| {
            rows.iter()
                .find(|off| !off.aggregation && off.mode == on.mode && off.places == on.places)
                .map(|off| (on, off))
        })
        .collect();
    for (i, (on, off)) in pairs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"places\": {}, \
             \"msgs_per_sec_on\": {:.1}, \"msgs_per_sec_off\": {:.1}, \
             \"speedup\": {:.4}}}{}\n",
            on.mode,
            on.places,
            on.msgs_per_sec,
            off.msgs_per_sec,
            on.msgs_per_sec / off.msgs_per_sec.max(1e-9),
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
