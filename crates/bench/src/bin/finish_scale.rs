//! Finish-protocol scaling study (§3.1, §6 narrative).
//!
//! Part 1 — **real runs**: an SPMD fan-out/fan-in over up to 128 in-process
//! places under each protocol; we report control-message counts, bytes,
//! root in-degree pressure and max out-degree. This shows FINISH_SPMD's
//! exactly-n messages, FINISH_DENSE's root-relief, and the default
//! protocol's O(n²)-state / root-flood behaviour.
//!
//! Part 2 — **network simulation**: the same control-traffic patterns
//! replayed through the Power 775 discrete-event model at 32,768 places,
//! where the paper observed that runs "do not terminate (in any reasonable
//! amount of time) without the optimization".
//!
//! Usage: `cargo run --release -p bench --bin finish_scale [--quick]`

use apgas::{Config, FinishKind, MsgClass, Runtime};
use p775::{finish_ctl_pattern, CtlPattern, Machine, NetSim};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick { &[16, 64] } else { &[16, 64, 128] };

    println!("== real runs: SPMD fan-out/fan-in, one remote child per place ==");
    println!(
        "{:>7} {:>14} {:>12} {:>12} {:>14} {:>12}",
        "places", "protocol", "ctl msgs", "ctl bytes", "root in-deg", "max out-deg"
    );
    for &places in sizes {
        for kind in [FinishKind::Default, FinishKind::Spmd, FinishKind::Dense] {
            let rt = Runtime::new(Config::new(places).places_per_host(8));
            rt.run(move |ctx| {
                ctx.net_stats().reset();
                ctx.finish_pragma(kind, |c| {
                    for p in c.places().skip(1) {
                        c.at_async(p, |cc| {
                            // every place spawns one more local child
                            cc.spawn(|_| {});
                        });
                    }
                });
                let ctl = ctx.net_stats().class(MsgClass::FinishCtl);
                let root_in = ctx.net_stats().received_at(0);
                let deg = ctx.net_stats().max_out_degree();
                println!(
                    "{places:>7} {:>14} {:>12} {:>12} {root_in:>14} {deg:>12}",
                    kind.label(),
                    ctl.messages,
                    ctl.bytes
                );
            });
        }
    }

    println!("\n== netsim: finish-ctl delivery at 32,768 places (1,024 octants) ==");
    // Both traffic shapes come from the shared generator in `p775::patterns`
    // — the same shapes the crossval test validates against counted runtime
    // traffic, so the 32,768-place projection rests on measured behaviour.
    let machine = Machine::hurcules();
    let places = 32_768usize;
    let mut sim = NetSim::new(machine);
    let s1 = sim.run(finish_ctl_pattern(CtlPattern::DirectToRoot, places, 32));
    sim.reset();
    let s2 = sim.run(finish_ctl_pattern(CtlPattern::DenseViaMasters, places, 32));
    println!(
        "default (all→root):   {:>8} msgs, makespan {:>10.3} ms, max latency {:>10.3} ms",
        s1.messages,
        s1.makespan * 1e3,
        s1.max_latency * 1e3
    );
    println!(
        "dense (via masters):  {:>8} msgs, makespan {:>10.3} ms, max latency {:>10.3} ms",
        s2.messages,
        s2.makespan * 1e3,
        s2.max_latency * 1e3
    );
    println!(
        "root-serialization relief: {:.1}× faster termination detection",
        s1.makespan / s2.makespan
    );
}
