//! Transport-aggregation ablation: the same workloads with sender-side
//! message coalescing on vs off (`Config::batch_disable`), reporting logical
//! messages, physical envelopes, modeled bytes and wall time, and writing
//! the numbers to `BENCH_aggregation.json`.
//!
//! Workloads:
//!
//! * **UTS** — distributed unbalanced-tree search under the lifeline GLB:
//!   spawns, steal control traffic and finish deltas, all small messages;
//! * **RandomAccess (message path)** — GUPS updates shipped as active
//!   messages instead of RDMA atomics (the software-update path a machine
//!   without Torrent-style remote atomics uses; the paper's aggregation
//!   layer exists precisely to make this path viable). Each place scatters
//!   tiny XOR-update messages across all places under one finish.
//!
//! Usage: `cargo run --release -p bench --bin aggregation [--quick]
//!   [--aggregation on|off|both] [--kernel uts|ra|both]
//!   [--batch-msgs N] [--batch-bytes N] [--out PATH]`

use apgas::{Config, Ctx, PlaceGroup, PlaceLocalHandle, Runtime};
use kernels::util::timed;
use std::sync::atomic::{AtomicU64, Ordering};

/// One measured cell of the ablation.
struct Row {
    kernel: &'static str,
    places: usize,
    aggregation: bool,
    /// Logical messages (protocol cost — must not depend on aggregation).
    messages: u64,
    /// Physical envelopes handed to the transport.
    envelopes: u64,
    /// Modeled logical wire bytes.
    logical_bytes: u64,
    /// Modeled physical wire bytes (batch headers amortized).
    wire_bytes: u64,
    /// Wall-clock seconds of the measured phase.
    wall_seconds: f64,
    /// Kernel figure of merit (UTS nodes / RA updates).
    fom: u64,
    /// Times any worker slept over the runtime's whole life (diagnostic).
    parks: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mode = flag_value(&args, "--aggregation").unwrap_or("both");
    let out = flag_value(&args, "--out").unwrap_or("BENCH_aggregation.json");
    let run_on = mode == "both" || mode == "on";
    let run_off = mode == "both" || mode == "off";
    assert!(
        run_on || run_off,
        "--aggregation must be one of on|off|both, got {mode}"
    );
    let batch_msgs = flag_value(&args, "--batch-msgs")
        .map(|v| v.parse().expect("--batch-msgs takes a count"))
        .unwrap_or(x10rt::coalesce::DEFAULT_MAX_MSGS);
    let batch_bytes = flag_value(&args, "--batch-bytes")
        .map(|v| v.parse().expect("--batch-bytes takes a byte count"))
        .unwrap_or(x10rt::coalesce::DEFAULT_MAX_BYTES);
    KNOBS.set((batch_msgs, batch_bytes)).unwrap();
    let kernel = flag_value(&args, "--kernel").unwrap_or("both");

    let uts_depth = if quick { 8 } else { 10 };
    let ra_log2_local = if quick { 8 } else { 10 };
    // Min-of-N over interleaved pairs: the on/off delta is a few percent
    // while oversubscribed-scheduler noise is larger, so the full run takes
    // more samples than CI's quick mode to stabilize the minimum.
    let reps = if quick { 2 } else { 9 };

    let mut rows = Vec::new();
    for &places in &[8usize, 32] {
        if kernel != "ra" {
            rows.extend(paired(reps, run_on, run_off, |agg| {
                bench_uts(places, agg, uts_depth)
            }));
        }
        if kernel != "uts" {
            rows.extend(paired(reps, run_on, run_off, |agg| {
                bench_ra_msgs(places, agg, ra_log2_local)
            }));
        }
    }

    print_table(&rows);
    let json = to_json(&rows, quick, uts_depth, ra_log2_local);
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Measure one cell's on/off pair `reps` times each, interleaved (on, off,
/// on, off, …) so both modes see the same machine-load drift, and report the
/// minimum-time run per mode (min is the standard estimator for scheduling
/// noise). Each measurement runs on a fresh runtime.
fn paired(reps: usize, run_on: bool, run_off: bool, f: impl Fn(bool) -> Row) -> Vec<Row> {
    let mut best: [Option<Row>; 2] = [None, None];
    for rep in 0..reps {
        // Alternate which mode goes first so neither systematically pays
        // for the other's teardown (cache state, lagging threads).
        let order = if rep % 2 == 0 {
            [(0, true), (1, false)]
        } else {
            [(1, false), (0, true)]
        };
        for (slot, agg) in order {
            if (agg && !run_on) || (!agg && !run_off) {
                continue;
            }
            let r = f(agg);
            if best[slot]
                .as_ref()
                .is_none_or(|b| r.wall_seconds < b.wall_seconds)
            {
                best[slot] = Some(r);
            }
        }
    }
    best.into_iter().flatten().collect()
}

/// Coalescing thresholds shared by every runtime the bench builds.
static KNOBS: std::sync::OnceLock<(usize, usize)> = std::sync::OnceLock::new();

/// Metric values of the most recent measured run (each run uses a fresh
/// runtime, so these are per-run, not cumulative) — embedded as the
/// `metrics` section of the output JSON.
static LAST_METRICS: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);

fn config(places: usize, aggregation: bool) -> Config {
    let &(msgs, bytes) = KNOBS.get().expect("knobs set in main");
    Config::new(places)
        .batch_max_msgs(msgs)
        .batch_max_bytes(bytes)
        .batch_disable(!aggregation)
}

fn bench_uts(places: usize, aggregation: bool, depth: u32) -> Row {
    let rt = Runtime::new(config(places, aggregation));
    let tree = uts::GeoTree::paper(depth);
    let row = rt.run(move |ctx| {
        ctx.net_stats().reset();
        let (run, secs) = timed(|| uts::run_distributed(ctx, tree, glb::GlbConfig::default()));
        collect(ctx, "uts", secs, run.stats.nodes)
    });
    *LAST_METRICS.lock().unwrap() = rt.metrics_json();
    Row {
        places,
        aggregation,
        parks: rt.total_parks(),
        ..row
    }
}

fn bench_ra_msgs(places: usize, aggregation: bool, log2_local: u32) -> Row {
    let rt = Runtime::new(config(places, aggregation));
    let local_n = 1usize << log2_local;
    let updates_per_place = 2 * local_n;
    let row = rt.run(move |ctx| {
        // The global table, one slice per place (set up before timing).
        let table = PlaceLocalHandle::init(ctx, &PlaceGroup::world(ctx), move |_| {
            (0..local_n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>()
        });
        ctx.net_stats().reset();
        let (_, secs) = timed(|| ra_msgs(ctx, table, log2_local, updates_per_place));
        collect(
            ctx,
            "ra-msgs",
            secs,
            (updates_per_place * ctx.num_places()) as u64,
        )
    });
    *LAST_METRICS.lock().unwrap() = rt.metrics_json();
    Row {
        places,
        aggregation,
        parks: rt.total_parks(),
        ..row
    }
}

/// GUPS over active messages: every place walks its slice of the update
/// stream and ships each remote update as a tiny spawn that XORs into the
/// destination's table slice; one Default finish detects global completion.
fn ra_msgs(
    ctx: &Ctx,
    table: PlaceLocalHandle<Vec<AtomicU64>>,
    log2_local: u32,
    updates_per_place: usize,
) {
    let places = ctx.num_places();
    assert!(places.is_power_of_two(), "RA needs power-of-two places");
    let local_n = 1usize << log2_local;
    let global_mask = local_n * places - 1;
    ctx.finish(|c| {
        for p in c.places() {
            c.at_async(p, move |cc| {
                let me = cc.here().index();
                let mine = table.get(cc);
                // xorshift64* stream, seeded per place.
                let mut x = 0x9e3779b97f4a7c15u64 ^ ((me as u64 + 1) << 17);
                for _ in 0..updates_per_place {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let idx = (x as usize) & global_mask;
                    let dest = idx >> log2_local;
                    let word = idx & (local_n - 1);
                    if dest == me {
                        mine[word].fetch_xor(x, Ordering::Relaxed);
                    } else {
                        cc.at_async(apgas::PlaceId(dest as u32), move |rc| {
                            table.get(rc)[word].fetch_xor(x, Ordering::Relaxed);
                        });
                    }
                }
            });
        }
    });
}

/// Snapshot the counters into a Row (places/aggregation filled by caller).
fn collect(ctx: &Ctx, kernel: &'static str, secs: f64, fom: u64) -> Row {
    let s = ctx.net_stats();
    Row {
        kernel,
        places: 0,
        aggregation: false,
        messages: s.total_messages(),
        envelopes: s.total_envelopes(),
        logical_bytes: s.total_bytes(),
        wire_bytes: s.envelope_bytes(),
        wall_seconds: secs,
        fom,
        parks: 0,
    }
}

fn print_table(rows: &[Row]) {
    println!(
        "{:>8} {:>7} {:>5} {:>12} {:>12} {:>7} {:>14} {:>14} {:>10} {:>8}",
        "kernel",
        "places",
        "agg",
        "messages",
        "envelopes",
        "ratio",
        "logical B",
        "wire B",
        "ms",
        "parks"
    );
    for r in rows {
        println!(
            "{:>8} {:>7} {:>5} {:>12} {:>12} {:>7.2} {:>14} {:>14} {:>10.2} {:>8}",
            r.kernel,
            r.places,
            if r.aggregation { "on" } else { "off" },
            r.messages,
            r.envelopes,
            r.messages as f64 / r.envelopes.max(1) as f64,
            r.logical_bytes,
            r.wire_bytes,
            r.wall_seconds * 1e3,
            r.parks
        );
    }
}

fn to_json(rows: &[Row], quick: bool, uts_depth: u32, ra_log2_local: u32) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"transport aggregation ablation\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"workloads\": {{\"uts_depth\": {uts_depth}, \"ra_log2_local\": {ra_log2_local}}},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"places\": {}, \"aggregation\": \"{}\", \
             \"messages\": {}, \"envelopes\": {}, \"logical_bytes\": {}, \
             \"wire_bytes\": {}, \"wall_seconds\": {:.6}, \"figure_of_merit\": {}}}{}\n",
            r.kernel,
            r.places,
            if r.aggregation { "on" } else { "off" },
            r.messages,
            r.envelopes,
            r.logical_bytes,
            r.wire_bytes,
            r.wall_seconds,
            r.fom,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    // Runtime metric values of the last measured run (see OBSERVABILITY.md
    // for the catalogue).
    if let Some(metrics) = LAST_METRICS.lock().unwrap().as_deref() {
        s.push_str("  \"metrics\": ");
        s.push_str(metrics.trim_end());
        s.push_str(",\n");
    }
    // Pair up on/off rows for the headline deltas.
    s.push_str("  \"summary\": [\n");
    let pairs: Vec<(&Row, &Row)> = rows
        .iter()
        .filter(|r| r.aggregation)
        .filter_map(|on| {
            rows.iter()
                .find(|off| !off.aggregation && off.kernel == on.kernel && off.places == on.places)
                .map(|off| (on, off))
        })
        .collect();
    for (i, (on, off)) in pairs.iter().enumerate() {
        // Workloads with nondeterministic traffic volume (UTS steal traffic
        // varies run to run) need the per-message normalization: envelopes
        // divided by logical messages, comparable across runs by design.
        let rate_on = on.envelopes as f64 / on.messages.max(1) as f64;
        let rate_off = off.envelopes as f64 / off.messages.max(1) as f64;
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"places\": {}, \
             \"envelopes_on\": {}, \"envelopes_off\": {}, \
             \"envelopes_per_message_on\": {:.4}, \"envelopes_per_message_off\": {:.4}, \
             \"envelope_rate_reduction\": {:.4}, \"speedup\": {:.4}}}{}\n",
            on.kernel,
            on.places,
            on.envelopes,
            off.envelopes,
            rate_on,
            rate_off,
            1.0 - rate_on / rate_off,
            off.wall_seconds / on.wall_seconds.max(1e-9),
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
