//! The §4 interconnect characterization: all-to-all bandwidth per octant as
//! the partition grows — reproducing the "sharp drop at two supernodes,
//! slow recovery, plateau" curve, plus the link inventory table.
//!
//! Usage: `cargo run --release -p bench --bin alltoall_sweep`

use p775::topology::links;
use p775::{alltoall_bw_per_octant, cross_section_bw, Machine};

fn main() {
    let m = Machine::hurcules();
    println!("== Power 775 link inventory (per partition) ==");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>14}",
        "octants", "LL", "LR", "D", "agg GB/s"
    );
    for octants in [1usize, 8, 32, 64, 128, 256, 512, 1024, 1792] {
        let lc = m.link_inventory(octants);
        println!(
            "{octants:>8} {:>8} {:>8} {:>8} {:>14.0}",
            lc.ll,
            lc.lr,
            lc.d,
            lc.total_gbs()
        );
    }

    println!("\n== all-to-all bandwidth per octant (the §4 three-regime curve) ==");
    println!(
        "{:>8} {:>12} {:>18} {:>18}",
        "octants", "supernodes", "per-octant GB/s", "cross-section GB/s"
    );
    for sn in [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32, 40, 48, 56] {
        let octants = sn * 32;
        println!(
            "{octants:>8} {sn:>12} {:>18.1} {:>18.0}",
            alltoall_bw_per_octant(&m, octants),
            cross_section_bw(&m, octants)
        );
    }
    println!(
        "\nlink rates: LL {} GB/s, LR {} GB/s, D {}×{} GB/s per supernode pair",
        links::LL_GBS,
        links::LR_GBS,
        links::D_PER_PAIR,
        links::D_GBS
    );
}
