//! Benchmark regression gate: compare a freshly generated `BENCH_*.json`
//! against the committed baseline and fail loudly on a silent regression.
//!
//! Comparison rules, keyed by leaf name:
//!
//! - workload-shape keys (anything under a `workload`/`workloads` object,
//!   plus `quick`) must match **exactly** — otherwise the two files measured
//!   different experiments and the rest is meaningless;
//! - figure-of-merit keys (`figure_of_merit`, `nodes`) must match exactly:
//!   the traversal/update counts are deterministic, any drift is a
//!   correctness bug, not noise;
//! - `*per_sec*` throughput keys are **one-sided**: fresh must not fall
//!   more than `--rel-tol` below baseline, but may beat it by any margin
//!   (commit the faster file to ratchet the ceiling up);
//! - `*_pct` overhead keys must stay within an absolute tolerance band
//!   (`--pct-tol` percentage points, default 5.0);
//! - `*seconds*` keys get a generous **one-sided** relative band
//!   (`--rel-tol` fraction, default 0.5) — wall time on shared CI is noisy,
//!   only catastrophic slowdowns should trip the gate; a faster fresh run
//!   never fails;
//! - every baseline key must exist in the fresh file (a silently dropped
//!   metric is exactly the regression this gate exists to catch).
//!
//! `within_budget` booleans are deliberately NOT gated: they are derived
//! from `*_pct` keys that already sit under the tolerance band, and on an
//! oversubscribed CI runner the binary flag flips on scheduling noise long
//! before the band trips. A real budget blow-out shows up as an
//! out-of-band pct drift, which fails on its own.
//!
//! All other leaves (message counts, metric values…) are run-dependent and
//! ignored.
//!
//! Usage: `cargo run -p bench --bin bench_check -- BASELINE FRESH
//!   [--pct-tol POINTS] [--rel-tol FRACTION]`

use bench::ablation_cli::flag_value;
use serde_json::Value;

struct Tolerances {
    pct_points: f64,
    rel_fraction: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let positional: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
    let flagged: Vec<&str> = ["--pct-tol", "--rel-tol"]
        .iter()
        .filter_map(|f| flag_value(&args, f))
        .collect();
    let positional: Vec<&&String> = positional
        .iter()
        .filter(|p| !flagged.contains(&p.as_str()))
        .collect();
    let [baseline_path, fresh_path] = positional[..] else {
        eprintln!("usage: bench_check BASELINE FRESH [--pct-tol POINTS] [--rel-tol FRACTION]");
        std::process::exit(2);
    };
    let tol = Tolerances {
        pct_points: flag_value(&args, "--pct-tol")
            .map(|v| v.parse().expect("--pct-tol takes a number"))
            .unwrap_or(5.0),
        rel_fraction: flag_value(&args, "--rel-tol")
            .map(|v| v.parse().expect("--rel-tol takes a number"))
            .unwrap_or(0.5),
    };

    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    let mut violations = Vec::new();
    compare("", &baseline, &fresh, false, &tol, &mut violations);

    if violations.is_empty() {
        println!("bench-check OK: {fresh_path} within tolerance of {baseline_path}");
        return;
    }
    eprintln!(
        "bench-check FAILED: {} violation(s) comparing {fresh_path} against {baseline_path}",
        violations.len()
    );
    for v in &violations {
        eprintln!("  {v}");
    }
    std::process::exit(1);
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

/// Recursively compare `fresh` against `base`, collecting violations.
/// `in_workload` marks subtrees that must match exactly.
fn compare(
    path: &str,
    base: &Value,
    fresh: &Value,
    in_workload: bool,
    tol: &Tolerances,
    out: &mut Vec<String>,
) {
    match (base, fresh) {
        (Value::Object(bm), Value::Object(fm)) => {
            for (k, bv) in bm {
                let p = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match fm.get(k) {
                    None => out.push(format!("{p}: present in baseline, missing in fresh file")),
                    // The embedded critical-path report is a diagnostic
                    // payload whose shape (root count, hops per root) is
                    // schedule-dependent — presence is all that's gated.
                    Some(_) if k == "critical_paths" => {}
                    Some(fv) => {
                        let wl = in_workload || k == "workload" || k == "workloads";
                        compare(&p, bv, fv, wl, tol, out);
                    }
                }
            }
        }
        (Value::Array(ba), Value::Array(fa)) => {
            if ba.len() != fa.len() {
                out.push(format!(
                    "{path}: baseline has {} entries, fresh has {}",
                    ba.len(),
                    fa.len()
                ));
                return;
            }
            for (i, (bv, fv)) in ba.iter().zip(fa).enumerate() {
                compare(&format!("{path}[{i}]"), bv, fv, in_workload, tol, out);
            }
        }
        _ => check_leaf(path, base, fresh, in_workload, tol, out),
    }
}

fn check_leaf(
    path: &str,
    base: &Value,
    fresh: &Value,
    in_workload: bool,
    tol: &Tolerances,
    out: &mut Vec<String>,
) {
    let key = path.rsplit('.').next().unwrap_or(path);
    let key = key.split('[').next().unwrap_or(key);
    if in_workload || key == "quick" || key == "mode" || key == "kernel" || key == "benchmark" {
        if base != fresh {
            out.push(format!(
                "{path}: experiment shape differs (baseline {base:?}, fresh {fresh:?}) — \
                 regenerate the baseline or rerun with matching flags"
            ));
        }
        return;
    }
    if key == "within_budget" {
        // Informational only (see module docs): the pct key it derives from
        // is band-checked above, and the boolean flips on runner noise.
        if base.as_bool() == Some(true) && fresh.as_bool() != Some(true) {
            println!("note: {path} held in baseline but not in fresh run (pct band decides)");
        }
        return;
    }
    if key == "figure_of_merit" || key == "nodes" {
        if base != fresh {
            out.push(format!(
                "{path}: figure of merit changed (baseline {base:?}, fresh {fresh:?}) — \
                 deterministic counts must not drift"
            ));
        }
        return;
    }
    let (Some(b), Some(f)) = (base.as_f64(), fresh.as_f64()) else {
        return; // non-numeric, non-special leaf: informational only
    };
    if key.contains("per_sec") {
        // Throughput ceilings are one-sided: the gate exists so message
        // rates can only go up. Fresh may beat the baseline by any margin
        // (commit the new file to ratchet the ceiling) but must not fall
        // more than the relative band below it.
        if f < b * (1.0 - tol.rel_fraction) {
            out.push(format!(
                "{path}: {f:.1}/s fell more than {:.0}% below baseline {b:.1}/s",
                tol.rel_fraction * 100.0
            ));
        }
    } else if key.ends_with("_pct") || key.contains("pct") {
        if (f - b).abs() > tol.pct_points {
            out.push(format!(
                "{path}: {f:.4} is more than {} points from baseline {b:.4}",
                tol.pct_points
            ));
        }
    } else if key.contains("seconds") {
        // One-sided like the throughput keys: only slowdowns are
        // regressions — a fresh run beating the baseline is the ratchet
        // working, not a violation.
        let band = tol.rel_fraction * b.abs().max(1e-9);
        if f - b > band {
            out.push(format!(
                "{path}: {f:.6}s more than {:.0}% over baseline {b:.6}s",
                tol.rel_fraction * 100.0
            ));
        }
    }
}
