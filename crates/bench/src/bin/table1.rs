//! Regenerate **Table 1**: "Performance Comparisons for the HPC Class 2
//! Challenge Benchmarks" — the X10 implementations versus IBM's HPCC
//! Class-1 optimized runs.
//!
//! The Class-1 codes (hand-tuned C/assembly against raw device drivers) do
//! not exist here; what is reproducible is the *relative* claim. We print:
//! the paper's reported absolute rows, the paper's X10/Class-1 fractions,
//! and our measured APGAS-runtime rates next to our measured "bare-metal"
//! rates (the same kernel run without the runtime — our stand-in for a
//! Class-1-style implementation, since it skips all runtime overheads).
//!
//! Usage: `cargo run --release -p bench --bin table1 [--quick]`

use kernels::util::timed;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("== Table 1 (paper): X10 vs HPCC Class 1 optimized runs ==");
    println!(
        "{:<24} {:>14} {:>18} {:>10}",
        "benchmark", "X10 at scale", "Class 1 at scale", "fraction"
    );
    let paper_rows = [
        ("Global HPL", "589.231 Tflop/s", "1343.67 Tflop/s", 0.85),
        ("Global RandomAccess", "843.58 Gup/s", "2020.77 Gup/s", 0.81),
        ("Global FFT", "28,696 Gflop/s", "132,658 Gflop/s", 0.41),
        ("EP Stream (Triad)", "231.481 GB/s", "264.156 GB/s", 0.87),
    ];
    for (name, x10, c1, frac) in paper_rows {
        println!("{name:<24} {x10:>14} {c1:>18} {frac:>10.2}");
    }

    println!("\n== Reproduction: APGAS-runtime rate vs bare-kernel rate (this machine) ==");
    println!(
        "{:<24} {:>16} {:>16} {:>10}",
        "benchmark", "via runtime", "bare kernel", "fraction"
    );

    // HPL: distributed (1 place, full runtime + teams) vs raw sequential LU.
    let n = if quick { 64 } else { 128 };
    let params = kernels::hpl::HplParams {
        n,
        nb: 16,
        seed: 42,
    };
    let rt = bench::runtime(1);
    let via = rt.run(move |ctx| kernels::hpl::hpl_distributed(ctx, params));
    let flops = kernels::hpl::flops(n);
    let via_rate = flops / via.seconds / 1e9;
    let bare = kernels::hpl::hpl_sequential(params);
    let bare_rate = flops / bare.seconds / 1e9;
    row("Global HPL (Gflop/s)", via_rate, bare_rate);

    // RandomAccess: distributed-on-1-place vs sequential loop.
    let log2 = if quick { 10 } else { 14 };
    let rt = bench::runtime(1);
    let via = rt.run(move |ctx| kernels::ra::ra_distributed(ctx, log2, 2, 256));
    assert_eq!(via.errors, 0);
    let (_, bare_rate) = kernels::ra::ra_sequential(log2, 2);
    row("Global RandomAccess (Gup/s)", via.gups(), bare_rate / 1e9);

    // FFT.
    let nfft = if quick { 4096 } else { 65_536 };
    let rt = bench::runtime(1);
    let via = rt.run(move |ctx| kernels::fft::fft_distributed(ctx, nfft, false));
    let x: Vec<_> = (0..nfft)
        .map(|j| kernels::fft::input_element(j, 19))
        .collect();
    let (_, bare_secs) = timed(|| kernels::fft::fft_six_step(&x));
    let fl = 5.0 * nfft as f64 * (nfft as f64).log2();
    row("Global FFT (Gflop/s)", via.gflops(), fl / bare_secs / 1e9);

    // Stream.
    let nstr = if quick { 100_000 } else { 1_000_000 };
    let rt = bench::runtime(1);
    let via = rt.run(move |ctx| kernels::stream::stream_distributed(ctx, nstr, 3));
    let bare = kernels::stream::stream_local(nstr, 3);
    row(
        "EP Stream (GB/s)",
        via[0].bytes_per_sec / 1e9,
        bare.bytes_per_sec / 1e9,
    );

    println!("\npaper fractions for reference: HPL 85%, RandomAccess 81%, FFT 41%, Stream 87%");
}

fn row(name: &str, via: f64, bare: f64) {
    println!("{name:<24} {via:>16.3} {bare:>16.3} {:>10.2}", via / bare);
}
