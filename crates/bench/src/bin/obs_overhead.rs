//! Observability-overhead ablation: UTS under the lifeline GLB with the
//! `obs` layer fully off (`Config::obs_disable`, the pre-observability
//! baseline), with metrics only (the default), and with event tracing on —
//! verifying that the tracing-off configurations cost ≤ 1% wall time.
//!
//! Writes `BENCH_obs_overhead.json` (including the metric values of the
//! metrics-mode run) and the chrome-trace JSON of the best traced run,
//! loadable in `about:tracing` / Perfetto.
//!
//! Usage: `cargo run --release -p bench --bin obs_overhead [--quick]
//!   [--places N] [--depth D] [--reps R] [--trace-capacity N]
//!   [--out PATH] [--trace-out PATH]`

use apgas::{Config, Runtime};
use bench::ablation_cli::AblationCli;
use kernels::util::timed;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// No observability state at all — the baseline.
    Off,
    /// Metrics registry on, tracer off (the default runtime configuration).
    Metrics,
    /// Metrics and event tracing both on.
    Trace,
}

const MODES: [Mode; 3] = [Mode::Off, Mode::Metrics, Mode::Trace];

impl Mode {
    fn config(self, cli: &AblationCli) -> Config {
        match self {
            Mode::Off => Config::new(cli.places).obs_disable(true),
            Mode::Metrics => Config::new(cli.places),
            Mode::Trace => Config::new(cli.places)
                .trace_enable(true)
                .trace_buffer_events(cli.trace_capacity),
        }
    }
}

/// One measured run: wall time, figure of merit, and the artifacts captured
/// from the runtime before teardown.
struct Run {
    wall_seconds: f64,
    nodes: u64,
    metrics_json: Option<String>,
    chrome_trace: Option<String>,
}

fn main() {
    let cli = AblationCli::parse("BENCH_obs_overhead.json", "TRACE_uts.json");

    // Interleave the modes (off, metrics, trace, off, …) so all three see
    // the same machine-load drift, and keep the minimum-time run per mode —
    // the standard estimator under scheduling noise.
    let mut best: [Option<Run>; 3] = [None, None, None];
    for _ in 0..cli.reps {
        for (slot, mode) in MODES.into_iter().enumerate() {
            let r = bench_uts(&cli, mode);
            if best[slot]
                .as_ref()
                .is_none_or(|b| r.wall_seconds < b.wall_seconds)
            {
                best[slot] = Some(r);
            }
        }
    }
    let [off, metrics, trace] = best.map(|r| r.expect("every mode measured"));
    assert_eq!(off.nodes, metrics.nodes, "UTS node count must not vary");
    assert_eq!(off.nodes, trace.nodes, "UTS node count must not vary");

    let pct = |r: &Run| (r.wall_seconds / off.wall_seconds - 1.0) * 100.0;
    let (metrics_pct, trace_pct) = (pct(&metrics), pct(&trace));
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "mode", "ms", "nodes", "overhead"
    );
    let rows = [(&off, 0.0), (&metrics, metrics_pct), (&trace, trace_pct)];
    for ((r, p), name) in rows.iter().zip(["off", "metrics", "trace"]) {
        println!(
            "{:>8} {:>10.2} {:>12} {:>9.2}%",
            name,
            r.wall_seconds * 1e3,
            r.nodes,
            p
        );
    }

    let chrome = trace.chrome_trace.as_deref().expect("traced run exports");
    std::fs::write(&cli.trace_out, chrome)
        .unwrap_or_else(|e| panic!("write {}: {e}", cli.trace_out));
    let json = to_json(
        &cli,
        &rows,
        metrics.metrics_json.as_deref().expect("metrics-mode run"),
    );
    std::fs::write(&cli.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", cli.out));
    println!("\nwrote {} and {}", cli.out, cli.trace_out);
}

fn bench_uts(cli: &AblationCli, mode: Mode) -> Run {
    let rt = Runtime::new(mode.config(cli));
    let tree = uts::GeoTree::paper(cli.depth);
    let (nodes, secs) = rt.run(move |ctx| {
        let (run, secs) = timed(|| uts::run_distributed(ctx, tree, glb::GlbConfig::default()));
        (run.stats.nodes, secs)
    });
    Run {
        wall_seconds: secs,
        nodes,
        metrics_json: rt.metrics_json(),
        chrome_trace: if mode == Mode::Trace {
            rt.chrome_trace_json()
        } else {
            None
        },
    }
}

fn to_json(cli: &AblationCli, rows: &[(&Run, f64)], metrics: &str) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"observability overhead ablation\",\n");
    s.push_str(&format!("  \"quick\": {},\n", cli.quick));
    s.push_str(&format!(
        "  \"workload\": {{\"kernel\": \"uts\", \"places\": {}, \
         \"depth\": {}, \"reps\": {}}},\n",
        cli.places, cli.depth, cli.reps
    ));
    s.push_str("  \"results\": [\n");
    let names = ["off", "metrics", "trace"];
    for (i, ((r, pct), name)) in rows.iter().zip(names).enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"wall_seconds\": {:.6}, \"nodes\": {}, \
             \"overhead_pct\": {:.4}}}{}\n",
            name,
            r.wall_seconds,
            r.nodes,
            pct,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let (metrics_pct, trace_pct) = (rows[1].1, rows[2].1);
    s.push_str(&format!(
        "  \"overhead_trace_off_pct\": {metrics_pct:.4},\n"
    ));
    s.push_str(&format!("  \"overhead_trace_on_pct\": {trace_pct:.4},\n"));
    s.push_str(&format!("  \"within_budget\": {},\n", metrics_pct <= 1.0));
    // The metrics-mode run's counter values, verbatim (already JSON).
    s.push_str("  \"metrics\": ");
    s.push_str(metrics.trim_end());
    s.push_str("\n}\n");
    s
}
