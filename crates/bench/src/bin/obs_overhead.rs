//! Observability-overhead ablation: UTS under the lifeline GLB with the
//! `obs` layer fully off (`Config::obs_disable`, the pre-observability
//! baseline), with metrics only (the default), and with event tracing on —
//! verifying that the tracing-off configurations cost ≤ 1% wall time.
//!
//! Full (non-`--quick`) runs add a second, at-scale stage: the same three
//! modes at 1,024 places multiplexed over a small executor pool
//! (`Config::executor_threads`), so the overhead budget is ratcheted where
//! the paper's scaling story lives, not just at laptop place counts. The
//! at-scale rows land in an `"at_scale"` section of the JSON, which
//! `bench_check` gates with the same `*_pct` tolerance band.
//!
//! Writes `BENCH_obs_overhead.json` (including the metric values of the
//! metrics-mode run) and the chrome-trace JSON of the best traced run,
//! loadable in `about:tracing` / Perfetto.
//!
//! Usage: `cargo run --release -p bench --bin obs_overhead [--quick]
//!   [--places N] [--depth D] [--reps R] [--trace-capacity N]
//!   [--out PATH] [--trace-out PATH]`

use apgas::{Config, Runtime};
use bench::ablation_cli::AblationCli;
use kernels::util::timed;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// No observability state at all — the baseline.
    Off,
    /// Metrics registry on, tracer off (the default runtime configuration).
    Metrics,
    /// Metrics and event tracing both on.
    Trace,
}

const MODES: [Mode; 3] = [Mode::Off, Mode::Metrics, Mode::Trace];

/// The at-scale stage: 1,024 lightweight places multiplexed over a small
/// executor pool. Depth and reps are trimmed — the point is the per-event
/// overhead ratio at scale, not absolute wall time.
const AT_SCALE_PLACES: usize = 1024;
const AT_SCALE_THREADS: usize = 2;
const AT_SCALE_DEPTH: u32 = 10;
const AT_SCALE_REPS: usize = 4;

/// Shape of one measured stage (place count, multiplexing, tree, reps).
#[derive(Clone, Copy)]
struct Stage {
    places: usize,
    /// `Some(n)` = M:N multiplexing over an `n`-thread executor pool.
    executor_threads: Option<usize>,
    depth: u32,
    reps: usize,
}

impl Mode {
    fn config(self, stage: &Stage, cli: &AblationCli) -> Config {
        let base = Config::new(stage.places);
        let base = match stage.executor_threads {
            Some(t) => base.executor_threads(t),
            None => base,
        };
        match self {
            Mode::Off => base.obs_disable(true),
            Mode::Metrics => base,
            Mode::Trace => base
                .trace_enable(true)
                .trace_buffer_events(cli.trace_capacity),
        }
    }
}

/// One measured run: wall time, figure of merit, and the artifacts captured
/// from the runtime before teardown.
struct Run {
    wall_seconds: f64,
    nodes: u64,
    metrics_json: Option<String>,
    chrome_trace: Option<String>,
}

fn main() {
    let cli = AblationCli::parse("BENCH_obs_overhead.json", "TRACE_uts.json");

    let main_stage = Stage {
        places: cli.places,
        executor_threads: None,
        depth: cli.depth,
        reps: cli.reps,
    };
    let main_runs = measure(&cli, &main_stage);
    let main_rows = rows(&main_runs);
    print_table(&format!("{} places", main_stage.places), &main_rows);

    // Quick mode (CI's fast gate) skips the at-scale stage; the committed
    // full-mode baseline carries it, so bench_check ratchets both.
    let at_scale_stage = Stage {
        places: AT_SCALE_PLACES,
        executor_threads: Some(AT_SCALE_THREADS),
        depth: AT_SCALE_DEPTH,
        reps: AT_SCALE_REPS,
    };
    let at_scale_runs = (!cli.quick).then(|| measure(&cli, &at_scale_stage));
    if let Some(runs) = &at_scale_runs {
        print_table(
            &format!(
                "{} places / {} threads",
                at_scale_stage.places, AT_SCALE_THREADS
            ),
            &rows(runs),
        );
    }

    let chrome = main_runs[2]
        .chrome_trace
        .as_deref()
        .expect("traced run exports");
    std::fs::write(&cli.trace_out, chrome)
        .unwrap_or_else(|e| panic!("write {}: {e}", cli.trace_out));
    let json = to_json(
        &cli,
        &main_stage,
        &main_rows,
        &at_scale_stage,
        &at_scale_runs,
    );
    std::fs::write(&cli.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", cli.out));
    println!("\nwrote {} and {}", cli.out, cli.trace_out);
}

/// Interleave the modes (off, metrics, trace, off, …) so all three see the
/// same machine-load drift, and keep the minimum-time run per mode — the
/// standard estimator under scheduling noise.
fn measure(cli: &AblationCli, stage: &Stage) -> [Run; 3] {
    let mut best: [Option<Run>; 3] = [None, None, None];
    for _ in 0..stage.reps {
        for (slot, mode) in MODES.into_iter().enumerate() {
            let r = bench_uts(cli, stage, mode);
            if best[slot]
                .as_ref()
                .is_none_or(|b| r.wall_seconds < b.wall_seconds)
            {
                best[slot] = Some(r);
            }
        }
    }
    let runs = best.map(|r| r.expect("every mode measured"));
    assert_eq!(runs[0].nodes, runs[1].nodes, "UTS node count must not vary");
    assert_eq!(runs[0].nodes, runs[2].nodes, "UTS node count must not vary");
    runs
}

/// Pair each best run with its overhead over the obs-off baseline.
fn rows(runs: &[Run; 3]) -> [(&Run, f64); 3] {
    let off = runs[0].wall_seconds;
    let pct = |r: &Run| (r.wall_seconds / off - 1.0) * 100.0;
    [
        (&runs[0], 0.0),
        (&runs[1], pct(&runs[1])),
        (&runs[2], pct(&runs[2])),
    ]
}

fn print_table(stage: &str, rows: &[(&Run, f64)]) {
    println!(
        "\n[{stage}]\n{:>8} {:>10} {:>12} {:>10}",
        "mode", "ms", "nodes", "overhead"
    );
    for ((r, p), name) in rows.iter().zip(["off", "metrics", "trace"]) {
        println!(
            "{:>8} {:>10.2} {:>12} {:>9.2}%",
            name,
            r.wall_seconds * 1e3,
            r.nodes,
            p
        );
    }
}

fn bench_uts(cli: &AblationCli, stage: &Stage, mode: Mode) -> Run {
    let rt = Runtime::new(mode.config(stage, cli));
    let tree = uts::GeoTree::paper(stage.depth);
    let (nodes, secs) = rt.run(move |ctx| {
        let (run, secs) = timed(|| uts::run_distributed(ctx, tree, glb::GlbConfig::default()));
        (run.stats.nodes, secs)
    });
    Run {
        wall_seconds: secs,
        nodes,
        metrics_json: rt.metrics_json(),
        chrome_trace: if mode == Mode::Trace {
            rt.chrome_trace_json()
        } else {
            None
        },
    }
}

/// Append one stage's `"workload"`, `"results"`, pct and budget keys at the
/// given indent (the at-scale section nests one level deeper).
fn push_stage(s: &mut String, ind: &str, stage: &Stage, rows: &[(&Run, f64)]) {
    match stage.executor_threads {
        Some(t) => s.push_str(&format!(
            "{ind}\"workload\": {{\"kernel\": \"uts\", \"places\": {}, \
             \"executor_threads\": {t}, \"depth\": {}, \"reps\": {}}},\n",
            stage.places, stage.depth, stage.reps
        )),
        None => s.push_str(&format!(
            "{ind}\"workload\": {{\"kernel\": \"uts\", \"places\": {}, \
             \"depth\": {}, \"reps\": {}}},\n",
            stage.places, stage.depth, stage.reps
        )),
    }
    s.push_str(&format!("{ind}\"results\": [\n"));
    let names = ["off", "metrics", "trace"];
    for (i, ((r, pct), name)) in rows.iter().zip(names).enumerate() {
        s.push_str(&format!(
            "{ind}  {{\"mode\": \"{}\", \"wall_seconds\": {:.6}, \"nodes\": {}, \
             \"overhead_pct\": {:.4}}}{}\n",
            name,
            r.wall_seconds,
            r.nodes,
            pct,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!("{ind}],\n"));
    let (metrics_pct, trace_pct) = (rows[1].1, rows[2].1);
    s.push_str(&format!(
        "{ind}\"overhead_trace_off_pct\": {metrics_pct:.4},\n"
    ));
    s.push_str(&format!(
        "{ind}\"overhead_trace_on_pct\": {trace_pct:.4},\n"
    ));
    s.push_str(&format!("{ind}\"within_budget\": {}", metrics_pct <= 1.0));
}

fn to_json(
    cli: &AblationCli,
    main_stage: &Stage,
    main_rows: &[(&Run, f64)],
    at_scale_stage: &Stage,
    at_scale_runs: &Option<[Run; 3]>,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"observability overhead ablation\",\n");
    s.push_str(&format!("  \"quick\": {},\n", cli.quick));
    push_stage(&mut s, "  ", main_stage, main_rows);
    s.push_str(",\n");
    if let Some(runs) = at_scale_runs {
        s.push_str("  \"at_scale\": {\n");
        push_stage(&mut s, "    ", at_scale_stage, &rows(runs));
        s.push_str("\n  },\n");
    }
    // The metrics-mode run's counter values, verbatim (already JSON).
    let metrics = main_rows[1]
        .0
        .metrics_json
        .as_deref()
        .expect("metrics-mode run");
    s.push_str("  \"metrics\": ");
    s.push_str(metrics.trim_end());
    s.push_str("\n}\n");
    s
}
