//! Ablations for the design choices DESIGN.md calls out.
//!
//! * `ablation_finish` — protocol cost of the same workload under every
//!   finish variant;
//! * `ablation_glb` — lifelines on/off, victim-list bound, and
//!   fragment-of-every-interval vs naive stealing on UTS;
//! * `ablation_bcast` — tree vs flat place-group broadcast.
//!
//! Usage: `cargo run --release -p bench --bin ablation [--quick]`

use apgas::{Config, FinishKind, MsgClass, PlaceGroup, Runtime};
use glb::GlbConfig;
use kernels::util::timed;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    finish_ablation(if quick { 32 } else { 96 });
    glb_ablation(if quick { 9 } else { 11 });
    bcast_ablation(if quick { 64 } else { 128 });
}

fn finish_ablation(places: usize) {
    println!("== ablation: finish protocol cost (fan-out of {places} remote activities) ==");
    println!(
        "{:>16} {:>10} {:>12} {:>12} {:>10}",
        "protocol", "ctl msgs", "ctl bytes", "root in-deg", "ms"
    );
    for kind in [FinishKind::Default, FinishKind::Spmd, FinishKind::Dense] {
        let rt = Runtime::new(Config::new(places));
        rt.run(move |ctx| {
            ctx.net_stats().reset();
            let (_, secs) = timed(|| {
                ctx.finish_pragma(kind, |c| {
                    for p in c.places().skip(1) {
                        c.at_async(p, |_| {});
                    }
                });
            });
            let ctl = ctx.net_stats().class(MsgClass::FinishCtl);
            println!(
                "{:>16} {:>10} {:>12} {:>12} {:>10.2}",
                kind.label(),
                ctl.messages,
                ctl.bytes,
                ctx.net_stats().received_at(0),
                secs * 1e3
            );
        });
    }
    // FINISH_HERE vs default for the round-trip ("get") idiom.
    println!("\n-- round trip (get) idiom --");
    for kind in [FinishKind::Default, FinishKind::Here] {
        let rt = Runtime::new(Config::new(2));
        rt.run(move |ctx| {
            ctx.net_stats().reset();
            ctx.finish_pragma(kind, |c| {
                let home = c.here();
                c.at_async(apgas::PlaceId(1), move |cc| {
                    cc.at_async(home, |_| {});
                });
            });
            let ctl = ctx.net_stats().class(MsgClass::FinishCtl);
            println!(
                "{:>16} {:>10} ctl msgs, {:>6} ctl bytes",
                kind.label(),
                ctl.messages,
                ctl.bytes
            );
        });
    }
}

fn glb_ablation(depth: u32) {
    println!("\n== ablation: GLB configuration on UTS (depth {depth}, 4 places) ==");
    println!(
        "{:>26} {:>10} {:>10} {:>8} {:>8} {:>9} {:>8}",
        "config", "nodes", "ms", "steals", "hits", "gifts", "deaths"
    );
    let tree = uts::GeoTree::paper(depth);
    let configs: Vec<(&str, GlbConfig)> = vec![
        ("default", GlbConfig::default()),
        (
            "no-random-steals (w=0)",
            GlbConfig {
                random_attempts: 0,
                ..GlbConfig::default()
            },
        ),
        (
            "many-random (w=8)",
            GlbConfig {
                random_attempts: 8,
                ..GlbConfig::default()
            },
        ),
        (
            "victims bounded to 1",
            GlbConfig {
                max_victims: 1,
                ..GlbConfig::default()
            },
        ),
        (
            "tiny chunks (n=32)",
            GlbConfig {
                chunk: 32,
                ..GlbConfig::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        let rt = Runtime::new(Config::new(4));
        let (run, secs) = timed(|| rt.run(move |ctx| uts::run_distributed(ctx, tree, cfg.clone())));
        let b = run.balancer;
        println!(
            "{name:>26} {:>10} {:>10.1} {:>8} {:>8} {:>9} {:>8}",
            run.stats.nodes,
            secs * 1e3,
            b.random_attempts,
            b.random_hits,
            b.lifeline_gifts,
            b.deaths
        );
    }
}

fn bcast_ablation(places: usize) {
    println!("\n== ablation: place-group broadcast, tree vs flat ({places} places) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "variant", "task msgs", "max out-deg", "ms"
    );
    for flat in [false, true] {
        let rt = Runtime::new(Config::new(places));
        rt.run(move |ctx| {
            ctx.net_stats().reset();
            let (_, secs) = timed(|| {
                let g = PlaceGroup::world(ctx);
                if flat {
                    g.broadcast_flat(ctx, |_| {});
                } else {
                    g.broadcast(ctx, |_| {});
                }
            });
            println!(
                "{:>8} {:>12} {:>12} {:>14.2}",
                if flat { "flat" } else { "tree" },
                ctx.net_stats().class(MsgClass::Task).messages,
                ctx.net_stats().max_out_degree(),
                secs * 1e3
            );
        });
    }
}
