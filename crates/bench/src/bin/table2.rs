//! Regenerate **Table 2**: "Relative Efficiency: Performance at Scale
//! versus Single-Host Performance (for the Same X10 Implementation)".
//!
//! For each kernel: the paper's reported efficiency, and our projected
//! efficiency (measured base rate pushed through the Power 775 model —
//! i.e. the number our Figure-1 projection implies at the paper's scale).
//!
//! Usage: `cargo run --release -p bench --bin table2 [--quick]`

use p775::model;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let host = 32;

    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // HPL: per-core at 32,768 vs per-core at one host.
    let base = bench::measure_hpl_rate(if quick { 96 } else { 192 }) / 1e9;
    let contended = base * (20.62 / 22.38);
    let eff =
        model::hpl_per_core(base, contended, 32_768) / model::hpl_per_core(base, contended, host);
    rows.push(("Global HPL".into(), 0.87, eff));

    // RandomAccess: per-host at scale vs per-host at 1,024 hosts end — the
    // paper compares the flat ends (both 0.82).
    let eff = model::ra_gups_per_host(32_768) / model::ra_gups_per_host(8 * 32);
    rows.push(("Global RandomAccess".into(), 1.00, eff));

    // FFT: per-core at scale vs one host (both at plateau bandwidth).
    let fbase = bench::measure_fft_rate(if quick { 4096 } else { 65_536 }) / 1e9;
    let eff = model::fft_per_core(fbase, 32_768) / model::fft_per_core(fbase, host);
    rows.push(("Global FFT".into(), 1.00, eff));

    // Stream.
    let sbase = bench::measure_stream_rate(if quick { 100_000 } else { 1_000_000 }) / 1e9;
    let scont = sbase * (7.23 / 12.6);
    let eff =
        model::stream_per_core(sbase, scont, 55_680) / model::stream_per_core(sbase, scont, host);
    rows.push(("EP Stream (Triad)".into(), 0.98, eff));

    // UTS.
    let ubase = bench::measure_uts_rate(if quick { 9 } else { 11 }) / 1e6;
    let eff = model::uts_per_core(ubase, 55_680) / model::uts_per_core(ubase, host);
    rows.push(("UTS".into(), 0.98, eff));

    // K-Means (time ratio inverted: efficiency = t_host / t_scale).
    let kbase =
        bench::measure_kmeans_seconds(if quick { 500 } else { 2000 }, if quick { 16 } else { 64 });
    let eff = model::kmeans_seconds(kbase, host) / model::kmeans_seconds(kbase, 47_040);
    rows.push(("K-Means".into(), 0.98, eff));

    // Smith-Waterman.
    let swb = bench::measure_sw_seconds(
        if quick { 100 } else { 400 },
        if quick { 2000 } else { 10_000 },
    );
    let swc = swb * (12.68 / 8.61);
    let eff = model::sw_seconds(swb, swc, host) / model::sw_seconds(swb, swc, 47_040);
    rows.push(("Smith-Waterman".into(), 0.98, eff));

    // BC: per-core at scale vs one host — includes the graph-size switch,
    // hence the paper's 45% ("corrected" 77% discounting the switch).
    let bbase = bench::measure_bc_rate(if quick { 8 } else { 10 }) / 1e6;
    let eff = model::bc_per_core(bbase, 47_040) / model::bc_per_core(bbase, host);
    rows.push(("Betweenness Centrality".into(), 0.45, eff));

    bench::print_comparison(
        "Table 2: relative efficiency at scale vs single host (paper vs reproduction)",
        &rows,
    );
    // "Corrected" efficiency discounts the instance switch: decline within
    // the small graph (32→2,048) times decline within the large graph
    // (2,048→47,040). Paper: (10.67/11.59)·(5.21/6.23) ≈ 0.77.
    let corrected = (model::bc_per_core(bbase, 2048) / model::bc_per_core(bbase, 32))
        * (model::bc_per_core(bbase, 47_040) / model::bc_per_core(bbase, 2049));
    println!(
        "\nBC corrected efficiency (discounting the graph switch): paper 0.77, ours {corrected:.2}"
    );
}
