//! M:N place-scaling sweep: the real UTS/GLB protocol stack at 64 → 4,096
//! places in ONE process, on the multiplexed executor pool
//! (`Config::executor_threads`), writing `BENCH_scale.json`.
//!
//! This is the scale gate for lightweight places: every row runs the same
//! fixed GEO tree through `uts::run_distributed` (GLB lifeline stealing,
//! default `finish`, coalesced transport), so
//!
//! * `nodes` is deterministic and gated **exactly** by `bench_check` — a
//!   node-count drift at any place count is a protocol correctness bug, not
//!   noise (the M:N scheduler ran the traversal wrong);
//! * `wall_sec` is recorded but deliberately NOT named `*seconds*`:
//!   thousands of places multiplexed over a couple of CI cores is far too
//!   schedule-noisy to ratchet, it is informational;
//! * per-class protocol message counts (task / finish-control / steal)
//!   document how protocol traffic grows with the place count — also
//!   informational, `bench_check` ignores unknown leaves.
//!
//! Usage: `cargo run --release -p bench --bin scale_sweep [--quick]
//!   [--out PATH]`
//!
//! `--quick` stops the sweep at 256 places for a fast local smoke run; the
//! committed baseline and the CI `scale` job always use the full sweep (the
//! `quick` flag is shape-gated, so the two never compare).

use apgas::{Config, MsgClass, Runtime};
use bench::ablation_cli::flag_value;
use glb::GlbConfig;
use kernels::util::timed;
use uts::{run_distributed, GeoTree};

/// Tree depth for the sweep: GEO `b0 = 4`, `r = 19`, ~350k nodes — enough
/// work that 4,096 places actually steal, small enough that the full sweep
/// fits a CI timeout.
const TREE_DEPTH: u32 = 9;

/// GLB probe interval: the small chunk the distributed-UTS tests use, so
/// work genuinely spreads (and the steal/lifeline paths carry real traffic)
/// instead of one place racing through the tree between probes.
const GLB_CHUNK: usize = 64;

fn glb_cfg() -> GlbConfig {
    GlbConfig {
        chunk: GLB_CHUNK,
        ..GlbConfig::default()
    }
}

/// One measured row.
struct Row {
    places: usize,
    executor_threads: usize,
    /// Figure of merit — exact-gated, identical at every place count.
    nodes: u64,
    /// Wall time of the traversal (informational, never ratcheted).
    wall_sec: f64,
    task_msgs: u64,
    finish_ctl_msgs: u64,
    steal_msgs: u64,
    envelopes: u64,
    /// GLB lifecycle totals — how the balancer behaved at this scale.
    steals: u64,
    lifeline_gifts: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = flag_value(&args, "--out").unwrap_or("BENCH_scale.json");

    let sweep: &[usize] = if quick {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let tree = GeoTree::paper(TREE_DEPTH);

    let mut rows = Vec::new();
    for &places in sweep {
        rows.push(run_at(places, threads, tree));
        let r = rows.last().unwrap();
        println!(
            "places {:>5}: {:>8} nodes in {:>8.3}s  (task {} / finish-ctl {} / steal {} msgs, {} envelopes, {} steals, {} gifts)",
            r.places,
            r.nodes,
            r.wall_sec,
            r.task_msgs,
            r.finish_ctl_msgs,
            r.steal_msgs,
            r.envelopes,
            r.steals,
            r.lifeline_gifts
        );
    }

    let first = rows[0].nodes;
    assert!(
        rows.iter().all(|r| r.nodes == first),
        "node counts must agree at every place count"
    );

    let json = to_json(&rows, quick);
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
}

/// One traversal of `tree` at `places` places multiplexed over `threads`
/// executor threads, paper topology (32 places per host).
fn run_at(places: usize, threads: usize, tree: GeoTree) -> Row {
    let rt = Runtime::new(
        Config::new(places)
            .places_per_host(32)
            .executor_threads(threads),
    );
    let (run, wall_sec, stats) = rt.run(move |ctx| {
        ctx.net_stats().reset();
        let (run, secs) = timed(|| run_distributed(ctx, tree, glb_cfg()));
        let s = ctx.net_stats();
        (
            run,
            secs,
            (
                s.class(MsgClass::Task).messages,
                s.class(MsgClass::FinishCtl).messages,
                s.class(MsgClass::Steal).messages,
                s.total_envelopes(),
            ),
        )
    });
    Row {
        places,
        executor_threads: threads,
        nodes: run.stats.nodes,
        wall_sec,
        task_msgs: stats.0,
        finish_ctl_msgs: stats.1,
        steal_msgs: stats.2,
        envelopes: stats.3,
        steals: run.balancer.random_hits,
        lifeline_gifts: run.balancer.lifeline_gifts,
    }
}

fn to_json(rows: &[Row], quick: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"M:N place scaling sweep (UTS via GLB)\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"workloads\": {{\"tree_depth\": {TREE_DEPTH}, \"glb_chunk\": {GLB_CHUNK}}},\n"
    ));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"places\": {}, \"executor_threads\": {}, \"nodes\": {}, \
             \"wall_sec\": {:.6}, \"task_msgs\": {}, \"finish_ctl_msgs\": {}, \
             \"steal_msgs\": {}, \"envelopes\": {}, \"steals\": {}, \
             \"lifeline_gifts\": {}}}{}\n",
            r.places,
            r.executor_threads,
            r.nodes,
            r.wall_sec,
            r.task_msgs,
            r.finish_ctl_msgs,
            r.steal_msgs,
            r.envelopes,
            r.steals,
            r.lifeline_gifts,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
