//! Regenerate **Figure 1** of the paper: the eight weak-scaling panels.
//!
//! For each kernel this prints three blocks:
//! 1. *measured (in-process)* — real runs of the full distributed code at
//!    1..8 places on this machine (every protocol message real);
//! 2. *projected (Power 775 model)* — our measured base rates pushed
//!    through `p775::model` onto the paper's core counts;
//! 3. the paper's reported anchors, for comparison.
//!
//! Usage: `cargo run --release -p bench --bin figure1 [--quick]`

use bench::{Series, PAPER_CORES};
use p775::model;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    hpl(quick);
    fft(quick);
    ra(quick);
    stream(quick);
    uts_panel(quick);
    kmeans(quick);
    sw(quick);
    bc(quick);
    println!("\n(figure1 complete — see EXPERIMENTS.md for interpretation)");
}

fn measured_header(kernel: &str) {
    println!("\n########## {kernel} ##########");
    println!("-- measured in-process (places share one CPU; per-place rate is the metric) --");
}

fn hpl(quick: bool) {
    measured_header("Global HPL");
    let n_per = if quick { 48 } else { 96 };
    let mut rows = vec![];
    for places in [1usize, 2, 4] {
        // weak scaling: constant memory per place → n grows as sqrt(P)
        let n = ((n_per * n_per * places) as f64).sqrt() as usize / 8 * 8;
        let params = kernels::hpl::HplParams { n, nb: 8, seed: 42 };
        let rt = bench::runtime(places);
        let r = rt.run(move |ctx| kernels::hpl::hpl_distributed(ctx, params));
        assert!(r.residual < 16.0, "HPL verification failed");
        let g = r.gflops(n);
        rows.push((places, g, g / places as f64));
    }
    Series {
        title: "HPL measured".into(),
        agg_unit: "Gflop/s",
        per_unit: "Gflop/s/place",
        rows,
    }
    .print();

    let base = bench::measure_hpl_rate(if quick { 96 } else { 192 }) / 1e9;
    let contended = base * (20.62 / 22.38); // paper's host-contention ratio
    let rows = PAPER_CORES
        .iter()
        .map(|&c| {
            let per = model::hpl_per_core(base, contended, c);
            (c, per * c as f64, per)
        })
        .collect();
    Series {
        title: "HPL projected on Power 775 scale (paper: 22.38 → 20.62 → 17.98 Gflop/s/core)"
            .into(),
        agg_unit: "Gflop/s",
        per_unit: "Gflop/s/core",
        rows,
    }
    .print();
}

fn fft(quick: bool) {
    measured_header("Global FFT");
    let mut rows = vec![];
    for places in [1usize, 2, 4] {
        let n = if quick { 1024 * places } else { 4096 * places };
        let n = n.next_power_of_two();
        let rt = bench::runtime(places);
        let r = rt.run(move |ctx| kernels::fft::fft_distributed(ctx, n, false));
        let g = r.gflops();
        rows.push((places, g, g / places as f64));
    }
    Series {
        title: "FFT measured".into(),
        agg_unit: "Gflop/s",
        per_unit: "Gflop/s/place",
        rows,
    }
    .print();

    let base = bench::measure_fft_rate(if quick { 4096 } else { 65_536 }) / 1e9;
    let rows = PAPER_CORES
        .iter()
        .map(|&c| {
            let per = model::fft_per_core(base, c);
            (c, per * c as f64, per)
        })
        .collect();
    Series {
        title: "FFT projected (paper: 0.99 → 0.88 Gflop/s/core with mid-scale dip)".into(),
        agg_unit: "Gflop/s",
        per_unit: "Gflop/s/core",
        rows,
    }
    .print();
}

fn ra(quick: bool) {
    measured_header("Global RandomAccess");
    let mut rows = vec![];
    for places in [1usize, 2, 4] {
        let log2_local = if quick { 8 } else { 12 };
        let rt = bench::runtime(places);
        let r = rt.run(move |ctx| kernels::ra::ra_distributed(ctx, log2_local, 2, 256));
        assert_eq!(r.errors, 0);
        rows.push((places, r.gups(), r.gups() / places as f64));
    }
    Series {
        title: "RandomAccess measured".into(),
        agg_unit: "Gup/s",
        per_unit: "Gup/s/place",
        rows,
    }
    .print();

    let rows = PAPER_CORES
        .iter()
        .skip(1)
        .map(|&c| {
            let hosts = c / 32;
            let per_host = model::ra_gups_per_host(c);
            (c, per_host * hosts.max(1) as f64, per_host)
        })
        .collect();
    Series {
        title: "RandomAccess projected (paper: 0.82 Gup/s/host at both ends, dip between)".into(),
        agg_unit: "Gup/s",
        per_unit: "Gup/s/host",
        rows,
    }
    .print();
}

fn stream(quick: bool) {
    measured_header("EP Stream (Triad)");
    let n = if quick { 100_000 } else { 1_000_000 };
    let mut rows = vec![];
    for places in [1usize, 2, 4] {
        let rt = bench::runtime(places);
        let res = rt.run(move |ctx| kernels::stream::stream_distributed(ctx, n, 3));
        let total: f64 = res.iter().map(|r| r.bytes_per_sec).sum();
        assert!(res.iter().all(|r| r.ok));
        rows.push((places, total / 1e9, total / 1e9 / places as f64));
    }
    Series {
        title: "Stream measured".into(),
        agg_unit: "GB/s",
        per_unit: "GB/s/place",
        rows,
    }
    .print();

    let base = bench::measure_stream_rate(n) / 1e9;
    let contended = base * (7.23 / 12.6); // paper's QCM contention ratio
    let rows = PAPER_CORES
        .iter()
        .map(|&c| {
            let per = model::stream_per_core(base, contended, c);
            (c, per * c as f64, per)
        })
        .collect();
    Series {
        title: "Stream projected (paper: 12.6 → 7.23 → 7.12 GB/s/core)".into(),
        agg_unit: "GB/s",
        per_unit: "GB/s/core",
        rows,
    }
    .print();
}

fn uts_panel(quick: bool) {
    measured_header("UTS (geometric tree, b0=4, r=19)");
    let depth = if quick { 9 } else { 11 };
    let mut rows = vec![];
    for places in [1usize, 2, 4] {
        let tree = uts::GeoTree::paper(depth);
        let rt = bench::runtime(places);
        let t0 = std::time::Instant::now();
        let run = rt.run(move |ctx| uts::run_distributed(ctx, tree, glb::GlbConfig::default()));
        let secs = t0.elapsed().as_secs_f64();
        let rate = run.stats.nodes as f64 / secs / 1e6;
        rows.push((places, rate, rate / places as f64));
    }
    Series {
        title: "UTS measured".into(),
        agg_unit: "M nodes/s",
        per_unit: "M nodes/s/place",
        rows,
    }
    .print();

    let base = bench::measure_uts_rate(depth) / 1e6;
    let rows = PAPER_CORES
        .iter()
        .map(|&c| {
            let per = model::uts_per_core(base, c);
            (c, per * c as f64, per)
        })
        .collect();
    Series {
        title: "UTS projected (paper: 10.929 → 10.712 M nodes/s/core, 98% efficiency)".into(),
        agg_unit: "M nodes/s",
        per_unit: "M nodes/s/core",
        rows,
    }
    .print();
}

fn kmeans(quick: bool) {
    measured_header("K-Means (k clusters, dim 12, 5 iterations)");
    let (points, k) = if quick { (500, 16) } else { (2000, 64) };
    let mut rows = vec![];
    for places in [1usize, 2, 4] {
        let p = kernels::kmeans::KMeansParams::scaled(points, k);
        let rt = bench::runtime(places);
        let t0 = std::time::Instant::now();
        let _ = rt.run(move |ctx| kernels::kmeans::kmeans_distributed(ctx, &p));
        let secs = t0.elapsed().as_secs_f64();
        rows.push((places, secs, secs));
    }
    Series {
        title: "K-Means measured (weak scaling: constant points/place; flat time = perfect)".into(),
        agg_unit: "seconds",
        per_unit: "seconds",
        rows,
    }
    .print();

    let base = bench::measure_kmeans_seconds(points, k);
    let rows = PAPER_CORES
        .iter()
        .map(|&c| {
            let t = model::kmeans_seconds(base, c);
            (c, t, t)
        })
        .collect();
    Series {
        title: "K-Means projected (paper: 6.13 s → 6.27 s, ≥97% efficiency)".into(),
        agg_unit: "seconds",
        per_unit: "seconds",
        rows,
    }
    .print();
}

fn sw(quick: bool) {
    measured_header("Smith-Waterman");
    let (qlen, tper) = if quick { (100, 2_000) } else { (400, 10_000) };
    let mut rows = vec![];
    for places in [1usize, 2, 4] {
        let tlen = tper * places;
        let rt = bench::runtime(places);
        let t0 = std::time::Instant::now();
        let _ = rt.run(move |ctx| {
            kernels::sw::sw_distributed(ctx, qlen, tlen, 19, kernels::sw::Scoring::default())
        });
        let secs = t0.elapsed().as_secs_f64();
        rows.push((places, secs, secs));
    }
    Series {
        title: "Smith-Waterman measured (weak scaling: constant fragment/place)".into(),
        agg_unit: "seconds",
        per_unit: "seconds",
        rows,
    }
    .print();

    let base = bench::measure_sw_seconds(qlen, tper);
    let contended = base * (12.68 / 8.61); // paper's bus-contention ratio
    let rows = PAPER_CORES
        .iter()
        .map(|&c| {
            let t = model::sw_seconds(base, contended, c);
            (c, t, t)
        })
        .collect();
    Series {
        title: "Smith-Waterman projected (paper: 8.61 s → 12.68 s → 12.87 s)".into(),
        agg_unit: "seconds",
        per_unit: "seconds",
        rows,
    }
    .print();
}

fn bc(quick: bool) {
    measured_header("Betweenness Centrality (R-MAT)");
    let scale = if quick { 8 } else { 10 };
    let mut rows = vec![];
    for places in [1usize, 2, 4] {
        let params = kernels::bc::rmat::RmatParams::paper(scale);
        let rt = bench::runtime(places);
        let r = rt.run(move |ctx| kernels::bc::bc_distributed(ctx, params));
        let rate = r.edges_traversed as f64 / r.seconds / 1e6;
        rows.push((places, rate, rate / places as f64));
    }
    Series {
        title: "BC measured".into(),
        agg_unit: "M edges/s",
        per_unit: "M edges/s/place",
        rows,
    }
    .print();

    let base32 = bench::measure_bc_rate(scale) / 1e6;
    let rows = PAPER_CORES
        .iter()
        .skip(1)
        .map(|&c| {
            let per = model::bc_per_core(base32, c);
            (c, per * c as f64, per)
        })
        .collect();
    Series {
        title: "BC projected (paper: 11.59 → 10.67 | switch | 6.23 → 5.21 M edges/s/core)".into(),
        agg_unit: "M edges/s",
        per_unit: "M edges/s/core",
        rows,
    }
    .print();
}
