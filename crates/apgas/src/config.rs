//! Runtime configuration.

use std::time::Duration;

/// Default usable stack per place context in M:N mode (1 MiB, `NORESERVE`).
pub const DEFAULT_CONTEXT_STACK_SIZE: usize = 1 << 20;

/// How `dist` collections rebuild chunks lost to a place death.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RedundancyMode {
    /// Keep a live replica of every chunk at a buddy place (owner+1,
    /// skipping the owner); recovery copies the replica. Every applied
    /// update is forwarded to the buddy, so steady state costs one extra
    /// message per update but recovery is lossless for applied updates.
    Replica,
    /// Keep no redundant copy; recovery re-runs the collection's registered
    /// recompute function (initial data). Updates applied after
    /// construction are lost — only correct for recomputable data.
    Recompute,
}

/// Configuration of an APGAS runtime.
///
/// Defaults mirror the paper's launch configuration: one worker thread per
/// place (`X10_NTHREADS=1`) and 32 places per host (octant).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of places. Execution starts at place 0.
    pub places: usize,
    /// Worker threads per place. The paper runs all experiments with one
    /// worker per place and dedicates a core to each; intra-place schedulers
    /// are explicitly left as future work, but multiple workers are
    /// supported here.
    pub workers_per_place: usize,
    /// Places per host; determines host masters for `FINISH_DENSE` routing
    /// and the Power 775 traffic accounting (32 on the paper's machine).
    pub places_per_host: usize,
    /// How long an idle worker parks before re-polling its mailbox. Small
    /// values reduce latency, large values reduce CPU burn when places
    /// heavily outnumber cores (they do in this reproduction).
    pub park_timeout: Duration,
    /// Flush threshold for finish-protocol delta coalescing: a place pushes
    /// its accumulated termination-control deltas to the finish root when
    /// its local live count reaches zero *or* the buffer covers more than
    /// this many peer places.
    pub finish_flush_entries: usize,
    /// Transport aggregation: flush a destination's coalescing buffer once
    /// it holds this many messages (see `x10rt::coalesce`).
    pub batch_max_msgs: usize,
    /// Transport aggregation: flush a destination's coalescing buffer once
    /// it holds this many modeled wire bytes.
    pub batch_max_bytes: usize,
    /// Disable transport aggregation entirely (every message goes out as its
    /// own envelope) — the ablation baseline.
    pub batch_disable: bool,
    /// Per-(sender, receiver) mailbox ring capacity, in envelopes (rounded
    /// up to a power of two; see `x10rt::ring`). Bursts past this divert to
    /// the lane's overflow side-queue — never blocking, never dropping, but
    /// slower — so size it above the workload's burst length and watch the
    /// `mailbox.ring_overflow` counter.
    pub mailbox_ring_capacity: usize,
    /// Disable batch-buffer recycling in the workers' envelope arenas: every
    /// coalescer flush allocates a fresh buffer and every received batch is
    /// freed after dispatch — the allocation-ablation baseline.
    pub arena_disable: bool,
    /// Start with event tracing enabled (spans and instants recorded into
    /// the per-worker ring buffers; see `obs::trace`). Metrics counters are
    /// always on unless [`Config::obs_disable`] is set; this knob only
    /// gates the tracer, which can also be toggled at run time via
    /// `Runtime::obs`.
    pub trace_enable: bool,
    /// Per-worker trace ring-buffer capacity, in events. When a buffer
    /// wraps, the oldest events are overwritten (and counted as dropped in
    /// the export).
    pub trace_buffer_events: usize,
    /// Build the runtime with no observability state at all: hooks compile
    /// to a branch on a `None` — the overhead-ablation baseline.
    pub obs_disable: bool,
    /// Start with causal cross-place tracing enabled: every stamped message
    /// carries an `obs::causal::CausalId` (charged
    /// `CAUSAL_HEADER_BYTES` in the byte ledgers) and workers record
    /// send/receive/execute stamps into per-worker causal rings, from which
    /// `Runtime::critical_path_json` and friends reconstruct cross-place
    /// dependency chains. Off by default — unstamped messages keep their
    /// exact pre-causal wire sizes and every hook reduces to one relaxed
    /// atomic load.
    pub causal_enable: bool,
    /// Snapshot the metrics registry every this-many milliseconds into a
    /// bounded time-series ring (see `obs::sample::Sampler`), exported via
    /// `Runtime::metrics_series_json` — rate-over-time views instead of
    /// end-of-run totals. `None` — the default — starts no sampler thread.
    pub sample_interval_ms: Option<u64>,
    /// Wrap the transport in an [`x10rt::FaultTransport`] governed by this
    /// plan (chaos testing). `None` — the default — uses the bare transport
    /// with zero added overhead.
    pub fault_plan: Option<x10rt::FaultPlan>,
    /// How long a worker's coalescer retries transiently-rejected flushes
    /// (exponential backoff) before giving up with a typed timeout. Only
    /// reachable when the transport can reject sends, i.e. under a fault
    /// plan.
    pub send_timeout: Duration,
    /// Liveness watchdog for `finish`: if termination detection makes no
    /// protocol progress for this long after the body returns, the finish
    /// aborts with [`crate::ApgasError::DeadPlace`] instead of hanging.
    /// `None` — the default — waits forever (the fault-free configuration
    /// never needs it and pays nothing for it).
    pub finish_watchdog: Option<Duration>,
    /// Deterministic-schedule mode (simulation testing): workers yield to a
    /// [`crate::step::StepGate`] at the top of every scheduling quantum and
    /// only run when an external schedule controller grants them one — see
    /// the `sim` crate. Requires `workers_per_place == 1`. Off by default;
    /// the threaded path then pays exactly one `Option` check per quantum.
    pub deterministic: bool,
    /// How protocol messages are packed into envelopes (see `PROTOCOL.md`).
    /// [`x10rt::CodecMode::Inline`] — the default — ships typed in-process
    /// boxes (the zero-serialization fast path `LocalTransport` has always
    /// used); [`x10rt::CodecMode::Bytes`] eagerly serializes every protocol
    /// message into a [`x10rt::WireMsg`] at the send site — mandatory for
    /// cross-process transports, available in-process for testing the codec
    /// path. Both modes charge identical modeled byte counts.
    pub codec: x10rt::CodecMode,
    /// M:N scheduling: multiplex the hosted places as lightweight stackful
    /// contexts over this many executor OS threads instead of spawning one
    /// thread per place. `None` — the default — keeps the classic
    /// thread-per-place mode. With `Some(n)`, place counts decouple from
    /// core counts: a 4,096-place runtime runs in one process on `n`
    /// threads (see DESIGN.md §"M:N place scheduling"). Requires
    /// `workers_per_place == 1` and an x86_64 host.
    pub executor_threads: Option<usize>,
    /// Usable stack bytes per place context in M:N mode (rounded up to a
    /// page; a guard page is added below). Stacks are mapped `NORESERVE`,
    /// so the cost is address space, not resident memory: 4,096 contexts at
    /// the 1 MiB default reserve 4 GiB but commit only pages actually
    /// touched. Ignored in thread-per-place mode (threads get 16 MiB).
    pub context_stack_size: usize,
    /// Enable the resilient-finish recovery machinery for
    /// [`crate::FinishKind::Resilient`] roots: adoption of dead places'
    /// accounting, re-execution of registered command descriptors, and
    /// backup-place snapshot replication. On by default; turning it off
    /// leaves `Resilient` behaving exactly like the default protocol (a
    /// place death then stalls the finish until the watchdog fires) — the
    /// deliberately-broken configuration the DST mutation-smoke test must
    /// catch.
    pub resilient_finish: bool,
    /// How `dist` collections rebuild chunks lost to a place death.
    pub redundancy_mode: RedundancyMode,
    /// The contiguous range of places hosted by *this process* as
    /// `(start, count)`; `None` — the default — hosts all of them
    /// (single-process operation). In a multi-process launch over
    /// [`x10rt::TcpTransport`], each process spawns worker threads only for
    /// its own range; the others are reached through the transport.
    pub host_places: Option<(u32, u32)>,
}

impl Config {
    /// A configuration with `places` places and all defaults.
    pub fn new(places: usize) -> Self {
        Config {
            places,
            workers_per_place: 1,
            places_per_host: 32,
            park_timeout: Duration::from_micros(200),
            finish_flush_entries: 64,
            batch_max_msgs: x10rt::coalesce::DEFAULT_MAX_MSGS,
            batch_max_bytes: x10rt::coalesce::DEFAULT_MAX_BYTES,
            batch_disable: false,
            mailbox_ring_capacity: x10rt::ring::DEFAULT_RING_CAPACITY,
            arena_disable: false,
            trace_enable: false,
            trace_buffer_events: obs::trace::DEFAULT_BUFFER_EVENTS,
            obs_disable: false,
            causal_enable: false,
            sample_interval_ms: None,
            fault_plan: None,
            send_timeout: x10rt::coalesce::DEFAULT_SEND_TIMEOUT,
            finish_watchdog: None,
            deterministic: false,
            codec: x10rt::CodecMode::Inline,
            executor_threads: None,
            context_stack_size: DEFAULT_CONTEXT_STACK_SIZE,
            resilient_finish: true,
            redundancy_mode: RedundancyMode::Replica,
            host_places: None,
        }
    }

    /// Enable or disable the resilient-finish recovery machinery (builder
    /// style). See [`Config::resilient_finish`].
    pub fn resilient_finish(mut self, on: bool) -> Self {
        self.resilient_finish = on;
        self
    }

    /// Select how `dist` collections rebuild lost chunks (builder style).
    pub fn redundancy_mode(mut self, mode: RedundancyMode) -> Self {
        self.redundancy_mode = mode;
        self
    }

    /// Multiplex places as lightweight contexts over `n` executor threads
    /// (builder style) — M:N scheduling. See [`Config::executor_threads`].
    pub fn executor_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "the executor pool needs at least one thread");
        self.executor_threads = Some(n);
        self
    }

    /// Set the usable per-context stack size in bytes (builder style). Only
    /// meaningful together with [`Config::executor_threads`].
    pub fn context_stack_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 0);
        self.context_stack_size = bytes;
        self
    }

    /// Set places per host (builder style).
    pub fn places_per_host(mut self, b: usize) -> Self {
        assert!(b > 0);
        self.places_per_host = b;
        self
    }

    /// Set workers per place (builder style).
    pub fn workers_per_place(mut self, w: usize) -> Self {
        assert!(w > 0);
        self.workers_per_place = w;
        self
    }

    /// Set the aggregation message-count flush threshold (builder style).
    pub fn batch_max_msgs(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.batch_max_msgs = n;
        self
    }

    /// Set the aggregation byte flush threshold (builder style).
    pub fn batch_max_bytes(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.batch_max_bytes = n;
        self
    }

    /// Enable or disable transport aggregation (builder style).
    pub fn batch_disable(mut self, disable: bool) -> Self {
        self.batch_disable = disable;
        self
    }

    /// Set the per-(sender, receiver) mailbox ring capacity (builder style).
    pub fn mailbox_ring_capacity(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.mailbox_ring_capacity = n;
        self
    }

    /// Enable or disable the envelope-arena ablation (builder style).
    pub fn arena_disable(mut self, disable: bool) -> Self {
        self.arena_disable = disable;
        self
    }

    /// Start with event tracing on or off (builder style).
    pub fn trace_enable(mut self, on: bool) -> Self {
        self.trace_enable = on;
        self
    }

    /// Set the per-worker trace ring capacity in events (builder style).
    pub fn trace_buffer_events(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.trace_buffer_events = n;
        self
    }

    /// Build with no observability state at all (builder style) — the
    /// overhead-ablation baseline.
    pub fn obs_disable(mut self, disable: bool) -> Self {
        self.obs_disable = disable;
        self
    }

    /// Start with causal cross-place tracing on or off (builder style).
    pub fn causal_enable(mut self, on: bool) -> Self {
        self.causal_enable = on;
        self
    }

    /// Snapshot the metrics registry every `ms` milliseconds into a bounded
    /// time series (builder style).
    pub fn sample_interval_ms(mut self, ms: u64) -> Self {
        assert!(ms > 0);
        self.sample_interval_ms = Some(ms);
        self
    }

    /// Inject faults according to `plan` (builder style) — chaos testing.
    pub fn fault_plan(mut self, plan: x10rt::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Set the coalescer retry budget for transiently-rejected sends
    /// (builder style).
    pub fn send_timeout(mut self, t: Duration) -> Self {
        self.send_timeout = t;
        self
    }

    /// Enable the finish liveness watchdog with the given stall limit
    /// (builder style).
    pub fn finish_watchdog(mut self, limit: Duration) -> Self {
        self.finish_watchdog = Some(limit);
        self
    }

    /// Enable deterministic-schedule mode (builder style) — workers step
    /// only under an external schedule controller's grants.
    pub fn deterministic(mut self, on: bool) -> Self {
        self.deterministic = on;
        self
    }

    /// Select how protocol messages are packed (builder style).
    pub fn codec(mut self, mode: x10rt::CodecMode) -> Self {
        self.codec = mode;
        self
    }

    /// Host only places `start..start + count` in this process (builder
    /// style) — multi-process operation over a cross-process transport.
    /// Implies [`x10rt::CodecMode::Bytes`] would be needed for any traffic
    /// that leaves the range; this builder does not force it, the transport
    /// rejects unserializable payloads instead.
    pub fn host_places(mut self, start: u32, count: u32) -> Self {
        assert!(count > 0, "a process must host at least one place");
        assert!(
            (start as usize + count as usize) <= self.places,
            "hosted range exceeds the place count"
        );
        self.host_places = Some((start, count));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_launch_config() {
        let c = Config::new(64);
        assert_eq!(c.places, 64);
        assert_eq!(c.workers_per_place, 1);
        assert_eq!(c.places_per_host, 32);
        assert!(!c.batch_disable);
        assert_eq!(c.batch_max_msgs, 64);
        assert_eq!(c.batch_max_bytes, 16 * 1024);
        assert_eq!(c.mailbox_ring_capacity, 256);
        assert!(!c.arena_disable, "arena recycling is on by default");
        assert!(!c.trace_enable, "tracing is opt-in");
        assert!(!c.obs_disable, "metrics are on by default");
        assert_eq!(c.trace_buffer_events, 65_536);
        assert!(!c.causal_enable, "causal tracing is opt-in");
        assert!(c.sample_interval_ms.is_none(), "metrics sampling is opt-in");
        assert!(c.fault_plan.is_none(), "fault injection is opt-in");
        assert_eq!(c.send_timeout, Duration::from_millis(5));
        assert!(c.finish_watchdog.is_none(), "watchdog is opt-in");
        assert!(!c.deterministic, "deterministic stepping is opt-in");
        assert_eq!(
            c.codec,
            x10rt::CodecMode::Inline,
            "the zero-serialization fast path is the default"
        );
        assert!(c.host_places.is_none(), "single-process by default");
        assert!(
            c.resilient_finish,
            "resilient-finish recovery is on by default"
        );
        assert_eq!(
            c.redundancy_mode,
            RedundancyMode::Replica,
            "replica redundancy is the default"
        );
        assert!(
            c.executor_threads.is_none(),
            "thread-per-place (a core per place, as on the p775) by default"
        );
        assert_eq!(c.context_stack_size, 1 << 20);
    }

    #[test]
    fn mplex_builders() {
        let c = Config::new(1024)
            .executor_threads(4)
            .context_stack_size(256 * 1024);
        assert_eq!(c.executor_threads, Some(4));
        assert_eq!(c.context_stack_size, 256 * 1024);
    }

    #[test]
    fn codec_and_hosting_builders() {
        let c = Config::new(8)
            .codec(x10rt::CodecMode::Bytes)
            .host_places(4, 4);
        assert_eq!(c.codec, x10rt::CodecMode::Bytes);
        assert_eq!(c.host_places, Some((4, 4)));
    }

    #[test]
    #[should_panic(expected = "hosted range exceeds")]
    fn host_range_must_fit() {
        let _ = Config::new(4).host_places(2, 3);
    }

    #[test]
    fn deterministic_builder() {
        let c = Config::new(4).deterministic(true);
        assert!(c.deterministic);
    }

    #[test]
    fn builder_overrides() {
        let c = Config::new(8).places_per_host(4).workers_per_place(2);
        assert_eq!(c.places_per_host, 4);
        assert_eq!(c.workers_per_place, 2);
    }

    #[test]
    fn aggregation_builders() {
        let c = Config::new(4)
            .batch_max_msgs(8)
            .batch_max_bytes(512)
            .batch_disable(true);
        assert_eq!(c.batch_max_msgs, 8);
        assert_eq!(c.batch_max_bytes, 512);
        assert!(c.batch_disable);
    }

    #[test]
    fn transport_builders() {
        let c = Config::new(4).mailbox_ring_capacity(32).arena_disable(true);
        assert_eq!(c.mailbox_ring_capacity, 32);
        assert!(c.arena_disable);
    }

    #[test]
    fn fault_builders() {
        let c = Config::new(4)
            .fault_plan(x10rt::FaultPlan::new(7).kill_place(x10rt::PlaceId(2), 100))
            .send_timeout(Duration::from_millis(50))
            .finish_watchdog(Duration::from_secs(2));
        assert_eq!(c.fault_plan.as_ref().unwrap().seed, 7);
        assert_eq!(c.send_timeout, Duration::from_millis(50));
        assert_eq!(c.finish_watchdog, Some(Duration::from_secs(2)));
    }

    #[test]
    fn resilience_builders() {
        let c = Config::new(4)
            .resilient_finish(false)
            .redundancy_mode(RedundancyMode::Recompute);
        assert!(!c.resilient_finish);
        assert_eq!(c.redundancy_mode, RedundancyMode::Recompute);
    }

    #[test]
    fn observability_builders() {
        let c = Config::new(4)
            .trace_enable(true)
            .trace_buffer_events(1024)
            .obs_disable(true)
            .causal_enable(true)
            .sample_interval_ms(50);
        assert!(c.trace_enable);
        assert_eq!(c.trace_buffer_events, 1024);
        assert!(c.obs_disable);
        assert!(c.causal_enable);
        assert_eq!(c.sample_interval_ms, Some(50));
    }
}
