//! Runtime configuration.

use std::time::Duration;

/// Configuration of an APGAS runtime.
///
/// Defaults mirror the paper's launch configuration: one worker thread per
/// place (`X10_NTHREADS=1`) and 32 places per host (octant).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of places. Execution starts at place 0.
    pub places: usize,
    /// Worker threads per place. The paper runs all experiments with one
    /// worker per place and dedicates a core to each; intra-place schedulers
    /// are explicitly left as future work, but multiple workers are
    /// supported here.
    pub workers_per_place: usize,
    /// Places per host; determines host masters for `FINISH_DENSE` routing
    /// and the Power 775 traffic accounting (32 on the paper's machine).
    pub places_per_host: usize,
    /// How long an idle worker parks before re-polling its mailbox. Small
    /// values reduce latency, large values reduce CPU burn when places
    /// heavily outnumber cores (they do in this reproduction).
    pub park_timeout: Duration,
    /// Flush threshold for finish-protocol delta coalescing: a place pushes
    /// its accumulated termination-control deltas to the finish root when
    /// its local live count reaches zero *or* the buffer covers more than
    /// this many peer places.
    pub finish_flush_entries: usize,
    /// Transport aggregation: flush a destination's coalescing buffer once
    /// it holds this many messages (see `x10rt::coalesce`).
    pub batch_max_msgs: usize,
    /// Transport aggregation: flush a destination's coalescing buffer once
    /// it holds this many modeled wire bytes.
    pub batch_max_bytes: usize,
    /// Disable transport aggregation entirely (every message goes out as its
    /// own envelope) — the ablation baseline.
    pub batch_disable: bool,
}

impl Config {
    /// A configuration with `places` places and all defaults.
    pub fn new(places: usize) -> Self {
        Config {
            places,
            workers_per_place: 1,
            places_per_host: 32,
            park_timeout: Duration::from_micros(200),
            finish_flush_entries: 64,
            batch_max_msgs: x10rt::coalesce::DEFAULT_MAX_MSGS,
            batch_max_bytes: x10rt::coalesce::DEFAULT_MAX_BYTES,
            batch_disable: false,
        }
    }

    /// Set places per host (builder style).
    pub fn places_per_host(mut self, b: usize) -> Self {
        assert!(b > 0);
        self.places_per_host = b;
        self
    }

    /// Set workers per place (builder style).
    pub fn workers_per_place(mut self, w: usize) -> Self {
        assert!(w > 0);
        self.workers_per_place = w;
        self
    }

    /// Set the aggregation message-count flush threshold (builder style).
    pub fn batch_max_msgs(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.batch_max_msgs = n;
        self
    }

    /// Set the aggregation byte flush threshold (builder style).
    pub fn batch_max_bytes(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.batch_max_bytes = n;
        self
    }

    /// Enable or disable transport aggregation (builder style).
    pub fn batch_disable(mut self, disable: bool) -> Self {
        self.batch_disable = disable;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_launch_config() {
        let c = Config::new(64);
        assert_eq!(c.places, 64);
        assert_eq!(c.workers_per_place, 1);
        assert_eq!(c.places_per_host, 32);
        assert!(!c.batch_disable);
        assert_eq!(c.batch_max_msgs, 64);
        assert_eq!(c.batch_max_bytes, 16 * 1024);
    }

    #[test]
    fn builder_overrides() {
        let c = Config::new(8).places_per_host(4).workers_per_place(2);
        assert_eq!(c.places_per_host, 4);
        assert_eq!(c.workers_per_place, 2);
    }

    #[test]
    fn aggregation_builders() {
        let c = Config::new(4)
            .batch_max_msgs(8)
            .batch_max_bytes(512)
            .batch_disable(true);
        assert_eq!(c.batch_max_msgs, 8);
        assert_eq!(c.batch_max_bytes, 512);
        assert!(c.batch_disable);
    }
}
