//! [`Ctx`] — the activity context: every APGAS construct is a method here.
//!
//! A fresh `Ctx` is created for each executing activity; it knows the
//! activity's governing finish (for spawn accounting) and carries the stack
//! of `finish` scopes the activity has opened.

use crate::clock::ClockReg;
use crate::config::Config;
use crate::finish::root::RootState;
use crate::finish::{Attach, FinishId, FinishKind, FinishRef};
use crate::place_state::Activity;
use crate::worker::{SpawnBody, Worker};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use x10rt::HandlerId;
use x10rt::{CongruentArray, MsgClass, NetStats, PlaceId, Pod, SegmentTable, Topology};

struct Scope {
    fin: FinishRef,
    root: Arc<RootState>,
}

/// Execution context of one activity.
pub struct Ctx<'w> {
    worker: &'w Worker,
    attach: RefCell<Attach>,
    scopes: RefCell<Vec<Scope>>,
    pub(crate) clock_regs: RefCell<Vec<ClockReg>>,
}

impl<'w> Ctx<'w> {
    pub(crate) fn new(worker: &'w Worker, attach: Attach) -> Self {
        Ctx {
            worker,
            attach: RefCell::new(attach),
            scopes: RefCell::new(Vec::new()),
            clock_regs: RefCell::new(Vec::new()),
        }
    }

    pub(crate) fn worker(&self) -> &Worker {
        self.worker
    }

    pub(crate) fn finalize_activity(&self) {
        let regs: Vec<ClockReg> = self.clock_regs.borrow_mut().drain(..).collect();
        for reg in regs {
            crate::clock::deregister(self.worker, reg);
        }
        debug_assert!(
            self.scopes.borrow().is_empty(),
            "activity ended with open finish scopes"
        );
    }

    pub(crate) fn take_attach(&self) -> Attach {
        self.attach.replace(Attach::Uncounted)
    }

    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// The current place (X10 `here`).
    #[inline]
    pub fn here(&self) -> PlaceId {
        self.worker.here
    }

    /// Number of places in this execution.
    #[inline]
    pub fn num_places(&self) -> usize {
        self.worker.g.topo.places()
    }

    /// Iterate over all places (X10 `Place.places()`).
    pub fn places(&self) -> impl Iterator<Item = PlaceId> {
        self.worker.g.topo.iter()
    }

    /// The place→host topology.
    pub fn topology(&self) -> &Topology {
        &self.worker.g.topo
    }

    /// The runtime configuration.
    pub fn config(&self) -> &Config {
        &self.worker.g.cfg
    }

    /// Shared network statistics counters.
    pub fn net_stats(&self) -> &NetStats {
        self.worker.g.transport.stats()
    }

    /// A fresh runtime-unique identifier (teams, clocks, global refs).
    pub fn next_global_id(&self) -> u64 {
        self.worker.g.ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Does the transport report place `p` dead (fault injection)? Always
    /// `false` in fault-free operation. GLB consults this to skip dead
    /// steal victims and re-route lifelines.
    pub fn place_dead(&self, p: PlaceId) -> bool {
        self.worker.g.transport.is_dead(p)
    }

    /// Places the transport currently reports dead.
    pub fn dead_places(&self) -> Vec<PlaceId> {
        self.worker.g.transport.dead_places()
    }

    /// The runtime's observability state (metrics + tracer), unless the
    /// runtime was built with `Config::obs_disable`.
    pub fn obs(&self) -> Option<&Arc<obs::Obs>> {
        self.worker.obs()
    }

    /// This worker's trace ring, when observability is on. Library layers
    /// (teams, clocks, GLB) record their spans and instants through this.
    pub fn trace(&self) -> Option<&obs::trace::TraceBuf> {
        self.worker.trace()
    }

    /// The causal identity of the message chain the current activity belongs
    /// to (`None` when causal tracing is off or the chain is unrecorded).
    /// Sends issued while this is set chain to it automatically.
    pub fn causal_current(&self) -> Option<obs::causal::CausalId> {
        self.worker.current_cause()
    }

    // ------------------------------------------------------------------
    // Spawning
    // ------------------------------------------------------------------

    /// `async S`: run `f` as a new activity at this place, governed by the
    /// innermost `finish`.
    pub fn spawn(&self, f: impl FnOnce(&Ctx) + Send + 'static) {
        self.spawn_inner(self.here(), SpawnBody::Closure(Box::new(f)), MsgClass::Task);
    }

    /// `at(p) async S`: run `f` as a new activity at place `p`, governed by
    /// the innermost `finish`.
    pub fn at_async(&self, p: PlaceId, f: impl FnOnce(&Ctx) + Send + 'static) {
        self.spawn_inner(p, SpawnBody::Closure(Box::new(f)), MsgClass::Task);
    }

    /// Like [`Ctx::at_async`] but the activity body is a *registered
    /// command* — a handler id (see `Runtime::register_handler`) plus
    /// serialized argument bytes — instead of a closure. Commands are fully
    /// serializable, so they are the only spawn form that can cross a
    /// process boundary over [`x10rt::tcp::TcpTransport`]; they also work
    /// unchanged in-process under either codec mode. An id with no handler
    /// registered at the destination panics there, naming the id, and the
    /// panic surfaces through the governing finish.
    pub fn at_async_cmd(&self, p: PlaceId, handler: HandlerId, args: Vec<u8>) {
        self.spawn_inner(p, SpawnBody::Cmd { handler, args }, MsgClass::Task);
    }

    /// Like [`Ctx::at_async`] but tagged with a custom traffic class for the
    /// network statistics (GLB tags its traffic [`MsgClass::Steal`]).
    pub fn at_async_class(
        &self,
        p: PlaceId,
        class: MsgClass,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) {
        self.spawn_inner(p, SpawnBody::Closure(Box::new(f)), class);
    }

    /// X10 `@Uncounted async`: an activity invisible to every `finish`.
    /// GLB's random-steal handshake uses these so that rebalancing traffic
    /// does not touch the root finish.
    pub fn uncounted_async(
        &self,
        p: PlaceId,
        class: MsgClass,
        f: impl FnOnce(&Ctx) + Send + 'static,
    ) {
        if p == self.here() {
            self.worker.place.enqueue(Activity {
                body: Box::new(f),
                attach: Attach::Uncounted,
                cause: self.worker.current_cause(),
                cause_remote: false,
            });
        } else {
            self.worker
                .send_spawn(p, Attach::Uncounted, SpawnBody::Closure(Box::new(f)), class);
        }
    }

    fn spawn_inner(&self, target: PlaceId, body: SpawnBody, class: MsgClass) {
        let here = self.here();
        // Innermost finish opened by this activity wins; otherwise the
        // activity's own governing finish.
        let scope_info = self.scopes.borrow().last().map(|s| (s.fin, s.root.clone()));
        if let Some((fin, root)) = scope_info {
            return self.spawn_at_root(&root, fin, target, body, class);
        }
        let attach = self.attach.borrow().clone();
        match attach {
            Attach::Uncounted => panic!(
                "async at {here}: no governing finish — open a finish or use uncounted_async"
            ),
            Attach::Counted { fin, .. } => {
                if fin.id.home == here {
                    let root = self.worker.root_of(&fin);
                    self.spawn_at_root(&root, fin, target, body, class);
                } else if fin.kind == FinishKind::Here {
                    self.spawn_split_weight(fin, target, body, class);
                } else {
                    self.spawn_via_proxy(fin, target, body, class);
                }
            }
        }
    }

    fn spawn_at_root(
        &self,
        root: &Arc<RootState>,
        fin: FinishRef,
        target: PlaceId,
        body: SpawnBody,
        class: MsgClass,
    ) {
        let here = self.here();
        if target == here {
            root.note_local_spawn(here.0);
            self.worker.place.enqueue(Activity {
                body: body.into_task(),
                attach: Attach::Counted {
                    fin,
                    weight: 0,
                    remote: false,
                },
                cause: self.worker.current_cause(),
                cause_remote: false,
            });
        } else {
            // Resilient re-execution needs the task in serializable form:
            // log command spawns (the only replayable bodies) at the root
            // before the send, so a kill between send and receipt still
            // leaves a descriptor to replay. Closure bodies are abandoned
            // on place death (DESIGN.md §6).
            if fin.kind == FinishKind::Resilient {
                if let SpawnBody::Cmd { handler, args } = &body {
                    root.register_cmd(crate::finish::CmdDescriptor {
                        id: self.worker.g.ids.fetch_add(1, Ordering::Relaxed),
                        dest: target.0,
                        handler: handler.0,
                        args: args.clone(),
                    });
                }
            }
            let weight = root.note_remote_spawn(here.0, target.0);
            self.worker.send_spawn(
                target,
                Attach::Counted {
                    fin,
                    weight,
                    remote: true,
                },
                body,
                class,
            );
        }
    }

    fn spawn_split_weight(
        &self,
        fin: FinishRef,
        target: PlaceId,
        body: SpawnBody,
        class: MsgClass,
    ) {
        let child_weight = {
            let mut attach = self.attach.borrow_mut();
            let Attach::Counted { weight, .. } = &mut *attach else {
                unreachable!("weight split on uncounted activity")
            };
            let child = *weight / 2;
            assert!(
                child > 0,
                "FINISH_HERE credit exhausted (spawn chain deeper than ~62): \
                 use the default finish for unbounded chains"
            );
            *weight -= child;
            child
        };
        let attach = Attach::Counted {
            fin,
            weight: child_weight,
            remote: target != self.here(),
        };
        if target == self.here() {
            self.worker.place.enqueue(Activity {
                body: body.into_task(),
                attach,
                cause: self.worker.current_cause(),
                cause_remote: false,
            });
        } else {
            self.worker.send_spawn(target, attach, body, class);
        }
    }

    fn spawn_via_proxy(&self, fin: FinishRef, target: PlaceId, body: SpawnBody, class: MsgClass) {
        let here = self.here();
        let flush_bound = self.worker.g.cfg.finish_flush_entries;
        if target == here {
            self.worker.with_proxy(fin, |p| {
                p.on_local_spawn();
                crate::finish::proxy::ProxyEmit::None
            });
            self.worker.place.enqueue(Activity {
                body: body.into_task(),
                attach: Attach::Counted {
                    fin,
                    weight: 0,
                    remote: false,
                },
                cause: self.worker.current_cause(),
                cause_remote: false,
            });
        } else {
            // Remote spawner under a resilient finish: ship the command
            // descriptor to the root's home first so the home can replay it
            // if `target` dies. FIFO per (src,dst,class) ordering is not
            // needed here — the CmdLog and the spawn take different paths,
            // and the root tolerates a log arriving after adoption by
            // replaying immediately (`apply_cmd_log` hands the command
            // back).
            if fin.kind == FinishKind::Resilient && target != fin.id.home {
                if let SpawnBody::Cmd { handler, args } = &body {
                    self.worker.send_cmd_log(
                        fin,
                        crate::finish::CmdDescriptor {
                            id: self.worker.g.ids.fetch_add(1, Ordering::Relaxed),
                            dest: target.0,
                            handler: handler.0,
                            args: args.clone(),
                        },
                    );
                }
            }
            self.worker.with_proxy(fin, |p| {
                p.on_remote_spawn(target.0);
                p.maybe_flush_threshold(flush_bound)
            });
            self.worker.send_spawn(
                target,
                Attach::Counted {
                    fin,
                    weight: 0,
                    remote: true,
                },
                body,
                class,
            );
        }
    }

    // ------------------------------------------------------------------
    // Blocking constructs
    // ------------------------------------------------------------------

    /// `finish S` with the default (general) termination protocol.
    pub fn finish<R>(&self, body: impl FnOnce(&Ctx) -> R) -> R {
        self.finish_pragma(FinishKind::Default, body)
    }

    /// `@Pragma(...) finish S`: run `body` under the chosen specialized
    /// termination-detection protocol and wait for every transitively
    /// spawned activity. Panics raised by governed activities are collected
    /// and re-raised here (X10's `MultipleExceptions`).
    pub fn finish_pragma<R>(&self, kind: FinishKind, body: impl FnOnce(&Ctx) -> R) -> R {
        let here = self.here();
        // One span per finish, from root creation through termination; the
        // kind label distinguishes the protocols on the trace timeline.
        let span = self.worker.trace().and_then(|t| t.span_start());
        let seq = self
            .worker
            .place
            .next_finish_seq
            .fetch_add(1, Ordering::Relaxed);
        let id = FinishId { home: here, seq };
        let fin = FinishRef { id, kind };
        let root = Arc::new(RootState::new(kind, id));
        self.worker.place.roots.lock().insert(seq, root.clone());
        if kind == FinishKind::Resilient {
            // Seed the backup place with the (empty) liveness snapshot so it
            // knows the scope exists before any activity can escape it.
            self.worker.send_backup_sync(&root);
        }
        self.scopes.borrow_mut().push(Scope {
            fin,
            root: root.clone(),
        });
        let result = catch_unwind(AssertUnwindSafe(|| body(self)));
        self.scopes.borrow_mut().pop();
        root.set_body_done();
        match self.worker.g.cfg.finish_watchdog {
            None if kind == FinishKind::Resilient => self.worker.wait_until(&|| {
                // Adoption must run even without a watchdog: a kill with no
                // deadline configured would otherwise hang the scope forever.
                self.worker.resilient_recover(&root);
                root.is_done()
            }),
            None => self.worker.wait_until(&|| root.is_done()),
            Some(limit) => {
                if let Err(err) = self.worker.wait_root_watchdog(&root, limit) {
                    // Abandon the scope: deregister the root so straggling
                    // control traffic is counted as stray instead of being
                    // applied to a dead scope, then surface the typed error.
                    self.worker.place.roots.lock().remove(&seq);
                    if let Some(t) = self.worker.trace() {
                        t.span_end(span, "finish", kind.label(), seq);
                    }
                    std::panic::panic_any(err);
                }
            }
        }
        self.worker.place.roots.lock().remove(&seq);
        if kind == FinishKind::Resilient {
            self.worker.send_backup_release(&root);
        }
        if let Some(t) = self.worker.trace() {
            t.span_end(span, "finish", kind.label(), seq);
        }
        let panics = root.take_panics();
        match result {
            Err(e) => resume_unwind(e),
            Ok(r) if panics.is_empty() => r,
            // No trailing bracket after the joined messages: a dead-place
            // marker scan recovers everything after the marker as the error
            // detail, and a wrapper bracket would be glued onto it.
            Ok(_) => panic!(
                "finish: {} governed activit{} panicked: {}",
                panics.len(),
                if panics.len() == 1 { "y" } else { "ies" },
                panics.join("; ")
            ),
        }
    }

    /// `val v = at(p) e`: blocking remote evaluation — the paper's
    /// FINISH_HERE round trip ("gets"). Runs inline when `p` is `here`.
    pub fn at<R, F>(&self, p: PlaceId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&Ctx) -> R + Send + 'static,
    {
        if p == self.here() {
            return f(self);
        }
        let slot: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
        let done = Arc::new(AtomicBool::new(false));
        let (slot2, done2) = (slot.clone(), done.clone());
        let home = self.here();
        self.finish_pragma(FinishKind::Here, |ctx| {
            ctx.at_async(p, move |rctx| {
                let r = f(rctx);
                rctx.at_async(home, move |_| {
                    *slot2.lock() = Some(r);
                    done2.store(true, Ordering::Release);
                });
            });
        });
        debug_assert!(done.load(Ordering::Acquire));
        let r = slot.lock().take();
        r.expect("at(): response activity did not deliver a value")
    }

    /// Blocking remote statement — the paper's FINISH_ASYNC ("puts"):
    /// `finish at(p) async S` as one call.
    pub fn at_put(&self, p: PlaceId, f: impl FnOnce(&Ctx) + Send + 'static) {
        self.finish_pragma(FinishKind::Async, |ctx| ctx.at_async(p, f));
    }

    /// `atomic S`: run `f` as an uninterrupted place-local critical section.
    pub fn atomic<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.worker.place.atomic_lock.lock();
        f()
    }

    /// `when(c) S`: run `f` atomically once `cond` holds (both evaluated
    /// under the place's atomic lock). The worker keeps the place making
    /// progress while waiting.
    pub fn when<R>(&self, cond: impl Fn() -> bool, f: impl FnOnce() -> R) -> R {
        loop {
            {
                let _guard = self.worker.place.atomic_lock.lock();
                if cond() {
                    return f();
                }
            }
            if !self.worker.run_one() {
                self.worker.park_brief_pub();
            }
        }
    }

    /// Help-first wait on an arbitrary condition: the worker pumps messages
    /// and runs queued activities until `cond` holds. This is the primitive
    /// beneath `finish`, `at`, teams, clocks and GLB's steal handshakes.
    pub fn wait_until(&self, cond: impl Fn() -> bool) {
        self.worker.wait_until(&cond);
    }

    /// X10 `Runtime.probe()`: drain pending messages and run every queued
    /// activity, then return. Long-running activities (the GLB worker loop)
    /// call this between work chunks so steal requests get serviced.
    pub fn probe(&self) {
        // The probe bracket tells the deterministic-schedule controller
        // this place can do application work even with empty queues (no-op
        // in threaded mode). A panic inside a pumped activity must not
        // leak the mark.
        self.worker.begin_probe();
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                || {
                    while self.worker.run_one() {}
                },
            ));
        self.worker.end_probe();
        if let Err(e) = r {
            std::panic::resume_unwind(e);
        }
    }

    // ------------------------------------------------------------------
    // Memory / registry
    // ------------------------------------------------------------------

    /// Allocate a zeroed congruent (registered, RDMA-able) array at this
    /// place. Identical allocation sequences at every place yield congruent
    /// segment ids (§3.3).
    pub fn congruent_alloc<T: Pod>(&self, len: usize) -> CongruentArray<T> {
        self.worker.g.congruent.alloc(self.here().0, len)
    }

    /// The registered-segment table (RDMA resolves through it).
    pub fn seg_table(&self) -> &Arc<SegmentTable> {
        self.worker.g.congruent.table()
    }

    /// Record RDMA traffic in the network counters (the data itself moves
    /// out-of-band, as on real hardware).
    pub(crate) fn charge_rdma(&self, to: PlaceId, bytes: usize) {
        self.worker
            .g
            .transport
            .stats()
            .record_send(self.here().0, to.0, MsgClass::Rdma, bytes);
    }

    pub(crate) fn register_object(&self, key: u64, obj: Arc<dyn std::any::Any + Send + Sync>) {
        self.worker.place.registry.lock().insert(key, obj);
    }

    pub(crate) fn lookup_object(&self, key: u64) -> Option<Arc<dyn std::any::Any + Send + Sync>> {
        self.worker.place.registry.lock().get(&key).cloned()
    }

    pub(crate) fn remove_object(&self, key: u64) {
        self.worker.place.registry.lock().remove(&key);
    }
}
