//! Clocks: X10's dynamic distributed barriers (§2.1).
//!
//! A clock synchronizes the set of activities *registered* with it:
//! `Clock.advanceAll()` blocks until every registered activity has arrived,
//! then releases the next phase. Unlike a Team barrier, the participant set
//! is dynamic — activities register at spawn time and deregister
//! automatically when they terminate.
//!
//! Implementation: the clock's home place keeps the registration/arrival
//! counts; arrivals and drops are control messages; the phase release is
//! broadcast to every place that hosts registrants. Waiters use help-first
//! waiting on their place's local phase table.

use crate::ctx::Ctx;
use crate::worker::Worker;
use std::collections::HashMap;
use x10rt::{Envelope, MsgClass, PlaceId};

/// A clock handle (cheap to clone and capture in spawned closures).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clock {
    id: u64,
    home: PlaceId,
}

/// An activity's registration on a clock (auto-dropped at activity end).
#[derive(Clone, Copy, Debug)]
pub struct ClockReg {
    pub(crate) id: u64,
    pub(crate) home: PlaceId,
}

/// Clock control messages.
pub enum ClockMsg {
    /// A registered activity reached the barrier.
    Arrive {
        /// Clock id.
        id: u64,
    },
    /// A registered activity terminated (or resigned).
    Drop {
        /// Clock id.
        id: u64,
        /// Place of the departing registrant.
        place: u32,
    },
    /// Home releases the next phase to a hosting place.
    Resume {
        /// Clock id.
        id: u64,
        /// The now-current phase.
        phase: u64,
    },
}

/// Home-side state of one clock.
pub struct ClockHome {
    registered: u64,
    arrived: u64,
    phase: u64,
    /// Registrants per place (release-broadcast targets).
    places: HashMap<u32, u64>,
}

/// Per-place clock tables.
#[derive(Default)]
pub struct ClockTables {
    /// Clocks homed at this place.
    pub(crate) homes: HashMap<u64, ClockHome>,
    /// Local view of remote clocks' phases.
    pub(crate) phases: HashMap<u64, u64>,
}

impl Clock {
    /// Create a clock homed here; the creating activity is registered.
    pub fn new(ctx: &Ctx) -> Clock {
        let id = ctx.next_global_id();
        let home = ctx.here();
        let mut places = HashMap::new();
        places.insert(home.0, 1);
        ctx.worker().place.clocks.lock().homes.insert(
            id,
            ClockHome {
                registered: 1,
                arrived: 0,
                phase: 0,
                places,
            },
        );
        ctx.clock_regs.borrow_mut().push(ClockReg { id, home });
        Clock { id, home }
    }

    /// `at(p) clocked async S`: spawn `f` at `p`, registered on this clock.
    /// Must be called from the clock's home place by a registered activity
    /// (the paper's `clocked finish for (p in places) at(p) clocked async`
    /// pattern), so registration is race-free with phase advancement.
    pub fn at_async_clocked(&self, ctx: &Ctx, p: PlaceId, f: impl FnOnce(&Ctx) + Send + 'static) {
        assert_eq!(
            ctx.here(),
            self.home,
            "clocked spawns must originate at the clock's home place"
        );
        {
            let mut t = ctx.worker().place.clocks.lock();
            let h = t.homes.get_mut(&self.id).expect("clock is dead");
            h.registered += 1;
            *h.places.entry(p.0).or_insert(0) += 1;
        }
        let reg = ClockReg {
            id: self.id,
            home: self.home,
        };
        ctx.at_async(p, move |ctx| {
            ctx.clock_regs.borrow_mut().push(reg);
            f(ctx);
        });
    }

    /// The phase as seen at the calling place.
    pub fn phase(&self, ctx: &Ctx) -> u64 {
        local_phase(ctx.worker(), self.id, self.home)
    }

    /// `Clock.advanceAll()`: arrive at the barrier and wait for the next
    /// phase. The calling activity must be registered.
    pub fn advance(&self, ctx: &Ctx) {
        assert!(
            ctx.clock_regs.borrow().iter().any(|r| r.id == self.id),
            "advance() by an activity not registered on this clock"
        );
        let w = ctx.worker();
        let span = ctx.trace().and_then(|t| t.span_start());
        let target = local_phase(w, self.id, self.home) + 1;
        if self.home == w.here {
            home_arrive(w, self.id);
        } else {
            send(w, self.home, ClockMsg::Arrive { id: self.id });
        }
        let (id, home) = (self.id, self.home);
        ctx.wait_until(move || local_phase(w, id, home) >= target);
        if let Some(t) = ctx.trace() {
            t.span_end(span, "clock", "advance", self.id);
        }
    }

    /// Resign this activity's registration early (X10 `clock.drop()`).
    pub fn drop_registration(&self, ctx: &Ctx) {
        let mut regs = ctx.clock_regs.borrow_mut();
        let pos = regs
            .iter()
            .position(|r| r.id == self.id)
            .expect("drop() by an activity not registered on this clock");
        let reg = regs.remove(pos);
        drop(regs);
        deregister(ctx.worker(), reg);
    }
}

fn local_phase(w: &Worker, id: u64, home: PlaceId) -> u64 {
    let t = w.place.clocks.lock();
    if home == w.here {
        t.homes.get(&id).map_or(u64::MAX, |h| h.phase)
    } else {
        t.phases.get(&id).copied().unwrap_or(0)
    }
}

fn send(w: &Worker, to: PlaceId, msg: ClockMsg) {
    // Same 16 modeled bytes in either codec mode (see `PROTOCOL.md`).
    let payload: x10rt::Payload = match w.g.cfg.codec {
        x10rt::CodecMode::Inline => Box::new(msg),
        x10rt::CodecMode::Bytes => Box::new(x10rt::WireMsg::new(
            x10rt::codec::H_CLOCK,
            crate::wire::encode_clock_msg(&msg),
        )),
    };
    w.send_env(Envelope::new(w.here, to, MsgClass::Clock, 16, payload));
}

fn home_arrive(w: &Worker, id: u64) {
    let releases = {
        let mut t = w.place.clocks.lock();
        let h = t.homes.get_mut(&id).expect("arrive on dead clock");
        h.arrived += 1;
        try_release(w, id, h)
    };
    broadcast_release(w, id, releases);
}

fn home_drop(w: &Worker, id: u64, place: u32) {
    let releases = {
        let mut t = w.place.clocks.lock();
        let Some(h) = t.homes.get_mut(&id) else {
            return;
        };
        debug_assert!(h.registered > 0);
        h.registered -= 1;
        if let Some(c) = h.places.get_mut(&place) {
            *c -= 1;
            if *c == 0 {
                h.places.remove(&place);
            }
        }
        if h.registered == 0 {
            t.homes.remove(&id);
            None
        } else {
            try_release(w, id, t.homes.get_mut(&id).unwrap())
        }
    };
    broadcast_release(w, id, releases);
}

/// If everyone still registered has arrived, open the next phase. Returns
/// the release targets (phase, places) to notify outside the lock.
fn try_release(_w: &Worker, _id: u64, h: &mut ClockHome) -> Option<(u64, Vec<u32>)> {
    if h.registered > 0 && h.arrived >= h.registered {
        h.arrived = 0;
        h.phase += 1;
        Some((h.phase, h.places.keys().copied().collect()))
    } else {
        None
    }
}

fn broadcast_release(w: &Worker, id: u64, releases: Option<(u64, Vec<u32>)>) {
    if let Some((phase, places)) = releases {
        for p in places {
            if p == w.here.0 {
                continue; // home's own phase is read from ClockHome
            }
            send(w, PlaceId(p), ClockMsg::Resume { id, phase });
        }
    }
}

/// Handle a clock control message (called by the worker's message pump).
pub fn handle_msg(w: &Worker, msg: ClockMsg) {
    match msg {
        ClockMsg::Arrive { id } => home_arrive(w, id),
        ClockMsg::Drop { id, place } => home_drop(w, id, place),
        ClockMsg::Resume { id, phase } => {
            w.place.clocks.lock().phases.insert(id, phase);
        }
    }
}

/// Deregister an activity's clock registration (activity end or explicit
/// drop).
pub fn deregister(w: &Worker, reg: ClockReg) {
    if reg.home == w.here {
        home_drop(w, reg.id, w.here.0);
    } else {
        send(
            w,
            reg.home,
            ClockMsg::Drop {
                id: reg.id,
                place: w.here.0,
            },
        );
    }
}
