//! Place groups with scalable broadcast (§3.2).
//!
//! Iterating sequentially over thousands of places to spawn near-identical
//! activities wastes time and floods the network out of one place. The
//! paper's `PlaceGroup` broadcasts over a **spawning tree**, parallelizing
//! and distributing task-creation overhead, with completion detected by
//! nested FINISH_SPMD blocks. [`PlaceGroup::broadcast`] is that algorithm;
//! [`PlaceGroup::broadcast_flat`] is the naive sequential loop, kept as the
//! ablation baseline.

use crate::ctx::Ctx;
use crate::finish::FinishKind;
use std::sync::Arc;
use x10rt::PlaceId;

/// An ordered set of places.
#[derive(Clone)]
pub struct PlaceGroup {
    places: Arc<Vec<PlaceId>>,
}

impl PlaceGroup {
    /// A group over an explicit place list.
    pub fn new(places: Vec<PlaceId>) -> Self {
        assert!(!places.is_empty(), "place group cannot be empty");
        PlaceGroup {
            places: Arc::new(places),
        }
    }

    /// The group of all places.
    pub fn world(ctx: &Ctx) -> Self {
        PlaceGroup::new(ctx.places().collect())
    }

    /// Number of member places.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// Never true (groups are non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Member places in order.
    pub fn iter(&self) -> impl Iterator<Item = PlaceId> + '_ {
        self.places.iter().copied()
    }

    /// Membership test.
    pub fn contains(&self, p: PlaceId) -> bool {
        self.places.contains(&p)
    }

    /// Run `f` once at every member place via a binary spawning tree
    /// (depth ⌈log₂ n⌉, out-degree ≤ 2 per place) and wait for global
    /// completion through nested FINISH_SPMD blocks.
    pub fn broadcast(&self, ctx: &Ctx, f: impl Fn(&Ctx) + Send + Sync + 'static) {
        let f = Arc::new(f);
        let places = self.places.clone();
        let n = places.len();
        ctx.finish_pragma(FinishKind::Spmd, |c| {
            let first = places[0];
            c.at_async(first, move |rc| subtree(rc, places, 0, n, f));
        });
    }

    /// The naive broadcast: one place spawns sequentially to every member.
    /// Kept for the `ablation_bcast` benchmark — at scale this floods the
    /// caller's network interface (out-degree n).
    pub fn broadcast_flat(&self, ctx: &Ctx, f: impl Fn(&Ctx) + Send + Sync + 'static) {
        let f = Arc::new(f);
        ctx.finish_pragma(FinishKind::Spmd, |c| {
            for p in self.iter() {
                let f = f.clone();
                c.at_async(p, move |rc| f(rc));
            }
        });
    }
}

/// Run `f` at `places[lo]` (the caller is already there) and fan the range
/// `[lo, hi)` out to two children, each governed by a nested FINISH_SPMD.
fn subtree<F: Fn(&Ctx) + Send + Sync + 'static>(
    ctx: &Ctx,
    places: Arc<Vec<PlaceId>>,
    lo: usize,
    hi: usize,
    f: Arc<F>,
) {
    debug_assert_eq!(ctx.here(), places[lo]);
    let span = hi - lo;
    if span <= 1 {
        f(ctx);
        return;
    }
    // Children cover [lo+1, mid) and [mid, hi). They are dispatched
    // *before* f runs locally: broadcast bodies may contain collectives
    // that block until every place has started, so the fan-out must not
    // wait behind f.
    let mid = lo + 1 + (span - 1) / 2;
    ctx.finish_pragma(FinishKind::Spmd, |c| {
        if mid > lo + 1 {
            let (pl, ff) = (places.clone(), f.clone());
            c.at_async(places[lo + 1], move |rc| subtree(rc, pl, lo + 1, mid, ff));
        }
        if hi > mid {
            let (pl, ff) = (places.clone(), f.clone());
            c.at_async(places[mid], move |rc| subtree(rc, pl, mid, hi, ff));
        }
        f(c);
    });
}
