//! Serialized encodings of the APGAS protocol messages (`PROTOCOL.md` §4).
//!
//! Under [`x10rt::CodecMode::Bytes`] every protocol send packs its message
//! into a [`x10rt::WireMsg`] — a runtime handler id plus argument bytes —
//! using the encoders here; the receiving worker decodes through the same
//! module. Under the default `Inline` mode these functions are simply not
//! called (typed boxes ship directly), so the fast path pays nothing.
//!
//! Every encoding is little-endian and self-contained: no lengths or types
//! are inferred from context, so truncated or corrupt bytes surface as typed
//! [`DecodeError`]s, never panics. Round-trip coverage lives in the unit
//! tests below and in the property tests (`crates/apgas/tests`).
#![warn(missing_docs)]

use crate::clock::ClockMsg;
use crate::finish::{Attach, Deltas, FinishId, FinishKind, FinishMsg, FinishRef};
use crate::team::TeamWire;
use std::any::Any;
use x10rt::codec::{put_str, put_u32, put_u64, Cursor, DecodeError, HandlerId};
use x10rt::PlaceId;

// ---------------------------------------------------------------------------
// FinishRef / Attach
// ---------------------------------------------------------------------------

fn kind_tag(k: FinishKind) -> u8 {
    match k {
        FinishKind::Default => 0,
        FinishKind::Local => 1,
        FinishKind::Async => 2,
        FinishKind::Here => 3,
        FinishKind::Spmd => 4,
        FinishKind::Dense => 5,
        FinishKind::Resilient => 6,
    }
}

fn kind_from(tag: u8) -> Result<FinishKind, DecodeError> {
    Ok(match tag {
        0 => FinishKind::Default,
        1 => FinishKind::Local,
        2 => FinishKind::Async,
        3 => FinishKind::Here,
        4 => FinishKind::Spmd,
        5 => FinishKind::Dense,
        6 => FinishKind::Resilient,
        t => {
            return Err(DecodeError::BadTag {
                what: "finish kind",
                tag: t,
            })
        }
    })
}

/// Append a [`FinishRef`] (13 bytes: home, seq, kind).
pub fn put_finish_ref(out: &mut Vec<u8>, fin: &FinishRef) {
    put_u32(out, fin.id.home.0);
    put_u64(out, fin.id.seq);
    out.push(kind_tag(fin.kind));
}

/// Read a [`FinishRef`].
pub fn read_finish_ref(cur: &mut Cursor<'_>) -> Result<FinishRef, DecodeError> {
    let home = PlaceId(cur.u32()?);
    let seq = cur.u64()?;
    let kind = kind_from(cur.u8()?)?;
    Ok(FinishRef {
        id: FinishId { home, seq },
        kind,
    })
}

/// Append an [`Attach`] (tag byte, then the counted fields if any).
pub fn put_attach(out: &mut Vec<u8>, a: &Attach) {
    match a {
        Attach::Uncounted => out.push(0),
        Attach::Counted {
            fin,
            weight,
            remote,
        } => {
            out.push(1);
            put_finish_ref(out, fin);
            put_u64(out, *weight);
            out.push(u8::from(*remote));
        }
    }
}

/// Read an [`Attach`].
pub fn read_attach(cur: &mut Cursor<'_>) -> Result<Attach, DecodeError> {
    match cur.u8()? {
        0 => Ok(Attach::Uncounted),
        1 => {
            let fin = read_finish_ref(cur)?;
            let weight = cur.u64()?;
            let remote = cur.u8()? != 0;
            Ok(Attach::Counted {
                fin,
                weight,
                remote,
            })
        }
        t => Err(DecodeError::BadTag {
            what: "attach",
            tag: t,
        }),
    }
}

// ---------------------------------------------------------------------------
// Deltas / FinishMsg  (handler H_FINISH)
// ---------------------------------------------------------------------------

fn put_deltas(out: &mut Vec<u8>, d: &Deltas) {
    put_u32(out, d.spawned.len() as u32);
    for &(s, dst, n) in &d.spawned {
        put_u32(out, s);
        put_u32(out, dst);
        put_u64(out, n);
    }
    put_u32(out, d.recv.len() as u32);
    for &(s, dst, n) in &d.recv {
        put_u32(out, s);
        put_u32(out, dst);
        put_u64(out, n);
    }
    put_u32(out, d.live.len() as u32);
    for &(p, v) in &d.live {
        put_u32(out, p);
        x10rt::codec::put_i64(out, v);
    }
    put_strings(out, &d.panics);
}

fn read_deltas(cur: &mut Cursor<'_>) -> Result<Deltas, DecodeError> {
    let mut d = Deltas::default();
    for _ in 0..cur.u32()? {
        d.spawned.push((cur.u32()?, cur.u32()?, cur.u64()?));
    }
    for _ in 0..cur.u32()? {
        d.recv.push((cur.u32()?, cur.u32()?, cur.u64()?));
    }
    for _ in 0..cur.u32()? {
        d.live.push((cur.u32()?, cur.i64()?));
    }
    d.panics = read_strings(cur)?;
    Ok(d)
}

fn put_strings(out: &mut Vec<u8>, v: &[String]) {
    put_u32(out, v.len() as u32);
    for s in v {
        put_str(out, s);
    }
}

fn read_strings(cur: &mut Cursor<'_>) -> Result<Vec<String>, DecodeError> {
    let n = cur.u32()?;
    let mut v = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        v.push(cur.string()?);
    }
    Ok(v)
}

/// Encode a [`FinishMsg`] into `H_FINISH` argument bytes.
pub fn encode_finish_msg(msg: &FinishMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match msg {
        FinishMsg::Flush { fin, deltas } => {
            out.push(0);
            put_finish_ref(&mut out, fin);
            put_deltas(&mut out, deltas);
        }
        FinishMsg::DenseHop { fin, deltas } => {
            out.push(1);
            put_finish_ref(&mut out, fin);
            put_deltas(&mut out, deltas);
        }
        FinishMsg::Done {
            fin,
            completions,
            panics,
        } => {
            out.push(2);
            put_finish_ref(&mut out, fin);
            put_u64(&mut out, *completions);
            put_strings(&mut out, panics);
        }
        FinishMsg::CreditReturn { fin, weight, panic } => {
            out.push(3);
            put_finish_ref(&mut out, fin);
            put_u64(&mut out, *weight);
            match panic {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    put_str(&mut out, p);
                }
            }
        }
        FinishMsg::BackupSync { fin, snapshot } => {
            out.push(4);
            put_finish_ref(&mut out, fin);
            put_u64(&mut out, snapshot.nonzero);
            put_u64(&mut out, snapshot.pending);
        }
        FinishMsg::BackupRelease { fin } => {
            out.push(5);
            put_finish_ref(&mut out, fin);
        }
        FinishMsg::CmdLog { fin, cmd } => {
            out.push(6);
            put_finish_ref(&mut out, fin);
            put_u64(&mut out, cmd.id);
            put_u32(&mut out, cmd.dest);
            put_u32(&mut out, cmd.handler);
            x10rt::codec::put_bytes(&mut out, &cmd.args);
        }
    }
    out
}

/// Decode `H_FINISH` argument bytes back into a [`FinishMsg`].
pub fn decode_finish_msg(args: &[u8]) -> Result<FinishMsg, DecodeError> {
    let mut cur = Cursor::new(args);
    let msg = match cur.u8()? {
        0 => FinishMsg::Flush {
            fin: read_finish_ref(&mut cur)?,
            deltas: read_deltas(&mut cur)?,
        },
        1 => FinishMsg::DenseHop {
            fin: read_finish_ref(&mut cur)?,
            deltas: read_deltas(&mut cur)?,
        },
        2 => FinishMsg::Done {
            fin: read_finish_ref(&mut cur)?,
            completions: cur.u64()?,
            panics: read_strings(&mut cur)?,
        },
        3 => {
            let fin = read_finish_ref(&mut cur)?;
            let weight = cur.u64()?;
            let panic = match cur.u8()? {
                0 => None,
                1 => Some(cur.string()?),
                t => {
                    return Err(DecodeError::BadTag {
                        what: "credit-return panic option",
                        tag: t,
                    })
                }
            };
            FinishMsg::CreditReturn { fin, weight, panic }
        }
        4 => FinishMsg::BackupSync {
            fin: read_finish_ref(&mut cur)?,
            snapshot: crate::finish::BackupSnapshot {
                nonzero: cur.u64()?,
                pending: cur.u64()?,
            },
        },
        5 => FinishMsg::BackupRelease {
            fin: read_finish_ref(&mut cur)?,
        },
        6 => FinishMsg::CmdLog {
            fin: read_finish_ref(&mut cur)?,
            cmd: crate::finish::CmdDescriptor {
                id: cur.u64()?,
                dest: cur.u32()?,
                handler: cur.u32()?,
                args: cur.bytes()?.to_vec(),
            },
        },
        t => {
            return Err(DecodeError::BadTag {
                what: "finish msg",
                tag: t,
            })
        }
    };
    cur.finish()?;
    Ok(msg)
}

// ---------------------------------------------------------------------------
// ClockMsg  (handler H_CLOCK)
// ---------------------------------------------------------------------------

/// Encode a [`ClockMsg`] into `H_CLOCK` argument bytes.
pub fn encode_clock_msg(msg: &ClockMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    match msg {
        ClockMsg::Arrive { id } => {
            out.push(0);
            put_u64(&mut out, *id);
        }
        ClockMsg::Drop { id, place } => {
            out.push(1);
            put_u64(&mut out, *id);
            put_u32(&mut out, *place);
        }
        ClockMsg::Resume { id, phase } => {
            out.push(2);
            put_u64(&mut out, *id);
            put_u64(&mut out, *phase);
        }
    }
    out
}

/// Decode `H_CLOCK` argument bytes back into a [`ClockMsg`].
pub fn decode_clock_msg(args: &[u8]) -> Result<ClockMsg, DecodeError> {
    let mut cur = Cursor::new(args);
    let msg = match cur.u8()? {
        0 => ClockMsg::Arrive { id: cur.u64()? },
        1 => ClockMsg::Drop {
            id: cur.u64()?,
            place: cur.u32()?,
        },
        2 => ClockMsg::Resume {
            id: cur.u64()?,
            phase: cur.u64()?,
        },
        t => {
            return Err(DecodeError::BadTag {
                what: "clock msg",
                tag: t,
            })
        }
    };
    cur.finish()?;
    Ok(msg)
}

// ---------------------------------------------------------------------------
// TeamWire  (handler H_TEAM)
// ---------------------------------------------------------------------------

/// Outcome of encoding a team fragment's data: either fully serialized, or
/// an opaque `Any` that must ride the envelope as an inline part (the
/// self-loop stash carries it; cross-process transports reject it).
pub enum TeamData {
    /// The data serialized into the argument bytes.
    Encoded,
    /// The data could not be serialized; ship it inline.
    Opaque(Box<dyn Any + Send>),
}

/// Encode a [`TeamWire`] header plus its data (when the data is one of the
/// wire-supported types) into `H_TEAM` argument bytes. Returns the bytes and
/// what happened to the data.
pub fn encode_team_wire(msg: TeamWire) -> (Vec<u8>, TeamData) {
    let mut out = Vec::with_capacity(32);
    put_u64(&mut out, msg.team);
    put_u64(&mut out, msg.seq);
    put_u32(&mut out, msg.round);
    put_u32(&mut out, msg.src_rank);
    let data = msg.data;
    // Tag table: see PROTOCOL.md §4.3. Checked in declaration order; the
    // first match wins.
    if data.downcast_ref::<()>().is_some() {
        out.push(0);
        return (out, TeamData::Encoded);
    }
    match encode_team_data(&mut out, data) {
        Ok(()) => (out, TeamData::Encoded),
        Err(d) => {
            out.push(255);
            (out, TeamData::Opaque(d))
        }
    }
}

/// Append the tag byte and encoding of one wire-supported team payload, or
/// hand the box back unencoded.
fn encode_team_data(
    out: &mut Vec<u8>,
    data: Box<dyn Any + Send>,
) -> Result<(), Box<dyn Any + Send>> {
    let d = match data.downcast::<u64>() {
        Ok(v) => {
            out.push(1);
            put_u64(out, *v);
            return Ok(());
        }
        Err(d) => d,
    };
    let d = match d.downcast::<f64>() {
        Ok(v) => {
            out.push(2);
            x10rt::codec::put_f64(out, *v);
            return Ok(());
        }
        Err(d) => d,
    };
    let d = match d.downcast::<i64>() {
        Ok(v) => {
            out.push(3);
            x10rt::codec::put_i64(out, *v);
            return Ok(());
        }
        Err(d) => d,
    };
    let d = match d.downcast::<u32>() {
        Ok(v) => {
            out.push(4);
            put_u32(out, *v);
            return Ok(());
        }
        Err(d) => d,
    };
    let d = match d.downcast::<Vec<u64>>() {
        Ok(v) => {
            out.push(5);
            put_u32(out, v.len() as u32);
            for x in v.iter() {
                put_u64(out, *x);
            }
            return Ok(());
        }
        Err(d) => d,
    };
    let d = match d.downcast::<Vec<f64>>() {
        Ok(v) => {
            out.push(6);
            put_u32(out, v.len() as u32);
            for x in v.iter() {
                x10rt::codec::put_f64(out, *x);
            }
            return Ok(());
        }
        Err(d) => d,
    };
    match d.downcast::<Vec<u8>>() {
        Ok(v) => {
            out.push(7);
            x10rt::codec::put_bytes(out, &v);
            Ok(())
        }
        Err(d) => Err(d),
    }
}

/// Decode `H_TEAM` argument bytes (plus a possible inline part for the
/// opaque tag) back into a [`TeamWire`].
pub fn decode_team_wire(
    args: &[u8],
    inline: Option<Box<dyn Any + Send>>,
) -> Result<TeamWire, DecodeError> {
    let mut cur = Cursor::new(args);
    let team = cur.u64()?;
    let seq = cur.u64()?;
    let round = cur.u32()?;
    let src_rank = cur.u32()?;
    let data: Box<dyn Any + Send> = match cur.u8()? {
        0 => Box::new(()),
        1 => Box::new(cur.u64()?),
        2 => Box::new(cur.f64()?),
        3 => Box::new(cur.i64()?),
        4 => Box::new(cur.u32()?),
        5 => {
            let n = cur.u32()? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(cur.u64()?);
            }
            Box::new(v)
        }
        6 => {
            let n = cur.u32()? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(cur.f64()?);
            }
            Box::new(v)
        }
        7 => Box::new(cur.bytes()?.to_vec()),
        255 => inline.ok_or(DecodeError::BadTag {
            what: "opaque team data without inline part",
            tag: 255,
        })?,
        t => {
            return Err(DecodeError::BadTag {
                what: "team data",
                tag: t,
            })
        }
    };
    cur.finish()?;
    Ok(TeamWire {
        team,
        seq,
        round,
        src_rank,
        data,
    })
}

// ---------------------------------------------------------------------------
// Spawn  (handler H_SPAWN)
// ---------------------------------------------------------------------------

/// Body tag inside `H_SPAWN` args: the activity body is an in-process
/// closure riding the envelope's inline part.
pub const SPAWN_BODY_CLOSURE: u8 = 0;
/// Body tag inside `H_SPAWN` args: the activity body is a registered
/// command — a handler id plus argument bytes, fully serializable.
pub const SPAWN_BODY_CMD: u8 = 1;

/// Encode `H_SPAWN` args for a closure-bodied spawn (the closure itself
/// rides [`x10rt::WireMsg::inline`]).
pub fn encode_spawn_closure(attach: &Attach) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_attach(&mut out, attach);
    out.push(SPAWN_BODY_CLOSURE);
    out
}

/// Encode `H_SPAWN` args for a command-bodied spawn.
pub fn encode_spawn_cmd(attach: &Attach, handler: HandlerId, args: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + args.len());
    put_attach(&mut out, attach);
    out.push(SPAWN_BODY_CMD);
    put_u32(&mut out, handler.0);
    x10rt::codec::put_bytes(&mut out, args);
    out
}

/// The decoded body description of an `H_SPAWN` message.
pub enum SpawnWireBody {
    /// Closure body: take it from the envelope's inline part.
    Closure,
    /// Command body: look up `handler` in the registry and pass `args`.
    Cmd {
        /// The registered handler to run.
        handler: HandlerId,
        /// Its argument bytes.
        args: Vec<u8>,
    },
}

/// Decode `H_SPAWN` argument bytes.
pub fn decode_spawn(args: &[u8]) -> Result<(Attach, SpawnWireBody), DecodeError> {
    let mut cur = Cursor::new(args);
    let attach = read_attach(&mut cur)?;
    let body = match cur.u8()? {
        SPAWN_BODY_CLOSURE => SpawnWireBody::Closure,
        SPAWN_BODY_CMD => {
            let handler = HandlerId(cur.u32()?);
            let args = cur.bytes()?.to_vec();
            SpawnWireBody::Cmd { handler, args }
        }
        t => {
            return Err(DecodeError::BadTag {
                what: "spawn body",
                tag: t,
            })
        }
    };
    cur.finish()?;
    Ok((attach, body))
}

// ---------------------------------------------------------------------------
// ObsMsg  (handler H_OBS)
// ---------------------------------------------------------------------------

/// Observability-plane traffic (`H_OBS`, PROTOCOL.md §4): snapshot shipping
/// to the aggregating rank and the live status query/reply pair.
pub enum ObsMsg {
    /// Ask the receiving process for its observability shipment; the reply
    /// (an [`ObsMsg::Snapshot`]) goes to place `reply_to`. Only the first
    /// place a process hosts answers, so one process ships once however
    /// many of its places were asked.
    SnapshotRequest {
        /// Place the snapshot push should be sent to.
        reply_to: u32,
    },
    /// A rank's shipment: metrics snapshot, drop counts and causal-ring
    /// segments, tagged with the rank and its capture-time clock anchor.
    Snapshot(Box<obs::RankObs>),
    /// Ask the receiving process for a live status report; the reply goes
    /// to place `reply_to`.
    StatusRequest {
        /// Place the status reply should be sent to.
        reply_to: u32,
    },
    /// A live status report, rendered at the serving rank.
    Status {
        /// The replying process's rank tag (first hosted place).
        rank: u32,
        /// The human-readable rendering.
        text: String,
        /// The JSON rendering.
        json: String,
    },
}

fn put_metrics_snapshot(out: &mut Vec<u8>, m: &obs::MetricsSnapshot) {
    put_u32(out, m.counters.len() as u32);
    for (name, v) in &m.counters {
        put_str(out, name);
        put_u64(out, *v);
    }
    put_u32(out, m.histograms.len() as u32);
    for h in &m.histograms {
        put_str(out, &h.name);
        put_u32(out, h.bounds.len() as u32);
        for b in &h.bounds {
            put_u64(out, *b);
        }
        put_u32(out, h.counts.len() as u32);
        for c in &h.counts {
            put_u64(out, *c);
        }
        put_u64(out, h.sum);
    }
}

fn read_metrics_snapshot(cur: &mut Cursor<'_>) -> Result<obs::MetricsSnapshot, DecodeError> {
    let nc = cur.u32()?;
    let mut counters = Vec::with_capacity(nc.min(1024) as usize);
    for _ in 0..nc {
        let name = cur.string()?;
        let v = cur.u64()?;
        counters.push((name, v));
    }
    let nh = cur.u32()?;
    let mut histograms = Vec::with_capacity(nh.min(1024) as usize);
    for _ in 0..nh {
        let name = cur.string()?;
        let nb = cur.u32()?;
        let mut bounds = Vec::with_capacity(nb.min(1024) as usize);
        for _ in 0..nb {
            bounds.push(cur.u64()?);
        }
        let nn = cur.u32()?;
        let mut counts = Vec::with_capacity(nn.min(1024) as usize);
        for _ in 0..nn {
            counts.push(cur.u64()?);
        }
        let sum = cur.u64()?;
        histograms.push(obs::metrics::HistogramSnapshot {
            name,
            bounds,
            counts,
            sum,
        });
    }
    Ok(obs::MetricsSnapshot {
        counters,
        histograms,
    })
}

fn causal_kind_tag(k: obs::causal::CausalKind) -> u8 {
    match k {
        obs::causal::CausalKind::Send => 0,
        obs::causal::CausalKind::Recv => 1,
        obs::causal::CausalKind::Exec => 2,
    }
}

fn causal_kind_from(tag: u8) -> Result<obs::causal::CausalKind, DecodeError> {
    Ok(match tag {
        0 => obs::causal::CausalKind::Send,
        1 => obs::causal::CausalKind::Recv,
        2 => obs::causal::CausalKind::Exec,
        t => {
            return Err(DecodeError::BadTag {
                what: "causal kind",
                tag: t,
            })
        }
    })
}

fn put_causal_segments(out: &mut Vec<u8>, segs: &[obs::causal::WorkerCausal]) {
    put_u32(out, segs.len() as u32);
    for s in segs {
        put_u32(out, s.place);
        put_u32(out, s.worker);
        put_u64(out, s.dropped);
        put_u32(out, s.events.len() as u32);
        for e in &s.events {
            put_u64(out, e.ts_ns);
            put_u64(out, e.dur_ns);
            out.push(causal_kind_tag(e.kind));
            put_u64(out, e.id.root);
            put_u64(out, e.id.seq);
            put_u64(out, e.parent_seq);
            put_u32(out, e.peer);
            out.push(e.class);
            put_u32(out, e.bytes);
        }
    }
}

fn read_causal_segments(
    cur: &mut Cursor<'_>,
) -> Result<Vec<obs::causal::WorkerCausal>, DecodeError> {
    let ns = cur.u32()?;
    let mut segs = Vec::with_capacity(ns.min(1024) as usize);
    for _ in 0..ns {
        let place = cur.u32()?;
        let worker = cur.u32()?;
        let dropped = cur.u64()?;
        let ne = cur.u32()?;
        let mut events = Vec::with_capacity(ne.min(4096) as usize);
        for _ in 0..ne {
            let ts_ns = cur.u64()?;
            let dur_ns = cur.u64()?;
            let kind = causal_kind_from(cur.u8()?)?;
            let root = cur.u64()?;
            let seq = cur.u64()?;
            let parent_seq = cur.u64()?;
            let peer = cur.u32()?;
            let class = cur.u8()?;
            let bytes = cur.u32()?;
            events.push(obs::causal::CausalEvent {
                ts_ns,
                dur_ns,
                kind,
                id: obs::CausalId { root, seq },
                parent_seq,
                peer,
                class,
                bytes,
            });
        }
        segs.push(obs::causal::WorkerCausal {
            place,
            worker,
            events,
            dropped,
        });
    }
    Ok(segs)
}

/// Encode an [`ObsMsg`] into `H_OBS` argument bytes.
pub fn encode_obs_msg(msg: &ObsMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match msg {
        ObsMsg::SnapshotRequest { reply_to } => {
            out.push(0);
            put_u32(&mut out, *reply_to);
        }
        ObsMsg::Snapshot(snap) => {
            out.push(1);
            put_u32(&mut out, snap.rank);
            put_u64(&mut out, snap.now_ns);
            put_metrics_snapshot(&mut out, &snap.metrics);
            put_u64(&mut out, snap.trace_dropped);
            put_u64(&mut out, snap.causal_dropped);
            put_causal_segments(&mut out, &snap.causal);
        }
        ObsMsg::StatusRequest { reply_to } => {
            out.push(2);
            put_u32(&mut out, *reply_to);
        }
        ObsMsg::Status { rank, text, json } => {
            out.push(3);
            put_u32(&mut out, *rank);
            put_str(&mut out, text);
            put_str(&mut out, json);
        }
    }
    out
}

/// Decode `H_OBS` argument bytes back into an [`ObsMsg`].
pub fn decode_obs_msg(args: &[u8]) -> Result<ObsMsg, DecodeError> {
    let mut cur = Cursor::new(args);
    let msg = match cur.u8()? {
        0 => ObsMsg::SnapshotRequest {
            reply_to: cur.u32()?,
        },
        1 => {
            let rank = cur.u32()?;
            let now_ns = cur.u64()?;
            let metrics = read_metrics_snapshot(&mut cur)?;
            let trace_dropped = cur.u64()?;
            let causal_dropped = cur.u64()?;
            let causal = read_causal_segments(&mut cur)?;
            ObsMsg::Snapshot(Box::new(obs::RankObs {
                rank,
                now_ns,
                metrics,
                trace_dropped,
                causal_dropped,
                causal,
            }))
        }
        2 => ObsMsg::StatusRequest {
            reply_to: cur.u32()?,
        },
        3 => ObsMsg::Status {
            rank: cur.u32()?,
            text: cur.string()?,
            json: cur.string()?,
        },
        t => {
            return Err(DecodeError::BadTag {
                what: "obs msg",
                tag: t,
            })
        }
    };
    cur.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fin(home: u32, seq: u64, kind: FinishKind) -> FinishRef {
        FinishRef {
            id: FinishId {
                home: PlaceId(home),
                seq,
            },
            kind,
        }
    }

    #[test]
    fn finish_ref_round_trips_all_kinds() {
        for kind in [
            FinishKind::Default,
            FinishKind::Local,
            FinishKind::Async,
            FinishKind::Here,
            FinishKind::Spmd,
            FinishKind::Dense,
            FinishKind::Resilient,
        ] {
            let f = fin(7, 42, kind);
            let mut buf = Vec::new();
            put_finish_ref(&mut buf, &f);
            let mut cur = Cursor::new(&buf);
            assert_eq!(read_finish_ref(&mut cur).unwrap(), f);
            cur.finish().unwrap();
        }
    }

    #[test]
    fn attach_round_trips() {
        for a in [
            Attach::Uncounted,
            Attach::Counted {
                fin: fin(3, 9, FinishKind::Here),
                weight: 1 << 62,
                remote: true,
            },
        ] {
            let mut buf = Vec::new();
            put_attach(&mut buf, &a);
            let mut cur = Cursor::new(&buf);
            let got = read_attach(&mut cur).unwrap();
            match (&a, &got) {
                (Attach::Uncounted, Attach::Uncounted) => {}
                (
                    Attach::Counted {
                        fin: f1,
                        weight: w1,
                        remote: r1,
                    },
                    Attach::Counted {
                        fin: f2,
                        weight: w2,
                        remote: r2,
                    },
                ) => {
                    assert_eq!(f1, f2);
                    assert_eq!(w1, w2);
                    assert_eq!(r1, r2);
                }
                _ => panic!("attach variant changed in round trip"),
            }
        }
    }

    #[test]
    fn finish_msgs_round_trip() {
        let deltas = Deltas {
            spawned: vec![(0, 1, 5), (2, 3, 1)],
            recv: vec![(0, 1, 4)],
            live: vec![(1, -2), (3, 7)],
            panics: vec!["boom at place 3".into()],
        };
        let msgs = [
            FinishMsg::Flush {
                fin: fin(0, 1, FinishKind::Default),
                deltas,
            },
            FinishMsg::DenseHop {
                fin: fin(0, 2, FinishKind::Dense),
                deltas: Deltas::default(),
            },
            FinishMsg::Done {
                fin: fin(1, 3, FinishKind::Spmd),
                completions: 17,
                panics: vec!["a".into(), "b".into()],
            },
            FinishMsg::CreditReturn {
                fin: fin(2, 4, FinishKind::Here),
                weight: 1 << 61,
                panic: Some("ouch".into()),
            },
            FinishMsg::BackupSync {
                fin: fin(3, 5, FinishKind::Resilient),
                snapshot: crate::finish::BackupSnapshot {
                    nonzero: 9,
                    pending: 2,
                },
            },
            FinishMsg::BackupRelease {
                fin: fin(3, 5, FinishKind::Resilient),
            },
            FinishMsg::CmdLog {
                fin: fin(3, 6, FinishKind::Resilient),
                cmd: crate::finish::CmdDescriptor {
                    id: 11,
                    dest: 2,
                    handler: 2048,
                    args: vec![5, 6, 7],
                },
            },
        ];
        for msg in msgs {
            let bytes = encode_finish_msg(&msg);
            let back = decode_finish_msg(&bytes).unwrap();
            // Compare via re-encoding (Deltas has no PartialEq).
            assert_eq!(bytes, encode_finish_msg(&back));
        }
    }

    #[test]
    fn finish_msg_truncation_is_typed() {
        let bytes = encode_finish_msg(&FinishMsg::Done {
            fin: fin(1, 3, FinishKind::Spmd),
            completions: 17,
            panics: vec!["a".into()],
        });
        for cut in 0..bytes.len() {
            assert!(
                decode_finish_msg(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn clock_msgs_round_trip() {
        let msgs = [
            ClockMsg::Arrive { id: 8 },
            ClockMsg::Drop { id: 9, place: 3 },
            ClockMsg::Resume { id: 10, phase: 55 },
        ];
        for msg in msgs {
            let bytes = encode_clock_msg(&msg);
            let back = decode_clock_msg(&bytes).unwrap();
            assert_eq!(bytes, encode_clock_msg(&back));
        }
    }

    #[test]
    fn team_wire_round_trips_supported_types() {
        fn round_trip(data: Box<dyn Any + Send>) -> TeamWire {
            let msg = TeamWire {
                team: 5,
                seq: 6,
                round: 2,
                src_rank: 1,
                data,
            };
            let (args, td) = encode_team_wire(msg);
            assert!(matches!(td, TeamData::Encoded));
            decode_team_wire(&args, None).unwrap()
        }
        assert!(round_trip(Box::new(())).data.downcast::<()>().is_ok());
        assert_eq!(
            *round_trip(Box::new(42u64)).data.downcast::<u64>().unwrap(),
            42
        );
        assert_eq!(
            *round_trip(Box::new(2.5f64)).data.downcast::<f64>().unwrap(),
            2.5
        );
        assert_eq!(
            *round_trip(Box::new(vec![1u64, 2, 3]))
                .data
                .downcast::<Vec<u64>>()
                .unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            *round_trip(Box::new(vec![0.5f64, -1.0]))
                .data
                .downcast::<Vec<f64>>()
                .unwrap(),
            vec![0.5, -1.0]
        );
        assert_eq!(
            *round_trip(Box::new(vec![9u8, 8]))
                .data
                .downcast::<Vec<u8>>()
                .unwrap(),
            vec![9, 8]
        );
    }

    #[test]
    fn team_wire_unsupported_type_goes_opaque() {
        let msg = TeamWire {
            team: 1,
            seq: 2,
            round: 0,
            src_rank: 0,
            data: Box::new("a str slice is not a wire type"),
        };
        let (args, td) = encode_team_wire(msg);
        let TeamData::Opaque(d) = td else {
            panic!("expected opaque");
        };
        let back = decode_team_wire(&args, Some(d)).unwrap();
        assert_eq!(back.team, 1);
        assert!(back.data.downcast::<&str>().is_ok());
        // Without the inline part, the opaque tag is a typed error.
        assert!(decode_team_wire(&args, None).is_err());
    }

    #[test]
    fn spawn_encodings_round_trip() {
        let attach = Attach::Counted {
            fin: fin(0, 7, FinishKind::Default),
            weight: 0,
            remote: true,
        };
        let closure = encode_spawn_closure(&attach);
        match decode_spawn(&closure).unwrap() {
            (Attach::Counted { fin: f, .. }, SpawnWireBody::Closure) => {
                assert_eq!(f.id.seq, 7)
            }
            _ => panic!("closure spawn decoded wrong"),
        }
        let cmd = encode_spawn_cmd(&Attach::Uncounted, HandlerId(2048), &[1, 2, 3]);
        match decode_spawn(&cmd).unwrap() {
            (Attach::Uncounted, SpawnWireBody::Cmd { handler, args }) => {
                assert_eq!(handler, HandlerId(2048));
                assert_eq!(args, vec![1, 2, 3]);
            }
            _ => panic!("cmd spawn decoded wrong"),
        }
    }

    #[test]
    fn garbage_is_typed_never_panics() {
        let garbage: Vec<u8> = (0..64).map(|i| (i * 37 + 11) as u8).collect();
        for len in 0..garbage.len() {
            let _ = decode_finish_msg(&garbage[..len]);
            let _ = decode_clock_msg(&garbage[..len]);
            let _ = decode_team_wire(&garbage[..len], None);
            let _ = decode_spawn(&garbage[..len]);
            let _ = decode_obs_msg(&garbage[..len]);
        }
    }

    fn sample_rank_obs() -> obs::RankObs {
        obs::RankObs {
            rank: 2,
            now_ns: 123_456_789,
            metrics: obs::MetricsSnapshot {
                counters: vec![("a.b".into(), 7), ("c".into(), u64::MAX)],
                histograms: vec![obs::metrics::HistogramSnapshot {
                    name: "h".into(),
                    bounds: vec![1, 2, 4],
                    counts: vec![3, 0, 1, 9],
                    sum: 42,
                }],
            },
            trace_dropped: 5,
            causal_dropped: 6,
            causal: vec![obs::causal::WorkerCausal {
                place: 2,
                worker: 0,
                dropped: 1,
                events: vec![
                    obs::causal::CausalEvent {
                        ts_ns: 10,
                        dur_ns: 0,
                        kind: obs::causal::CausalKind::Send,
                        id: obs::CausalId { root: 77, seq: 9 },
                        parent_seq: 3,
                        peer: 0,
                        class: 1,
                        bytes: 48,
                    },
                    obs::causal::CausalEvent {
                        ts_ns: 20,
                        dur_ns: 15,
                        kind: obs::causal::CausalKind::Exec,
                        id: obs::CausalId { root: 77, seq: 9 },
                        parent_seq: 0,
                        peer: 0,
                        class: 0,
                        bytes: 0,
                    },
                ],
            }],
        }
    }

    #[test]
    fn obs_msgs_round_trip() {
        let msgs = [
            ObsMsg::SnapshotRequest { reply_to: 0 },
            ObsMsg::Snapshot(Box::new(sample_rank_obs())),
            ObsMsg::StatusRequest { reply_to: 4 },
            ObsMsg::Status {
                rank: 1,
                text: "place 1: ok\n".into(),
                json: "{\"rank\": 1}".into(),
            },
        ];
        for msg in msgs {
            let bytes = encode_obs_msg(&msg);
            let back = decode_obs_msg(&bytes).unwrap();
            // Compare via re-encoding (the payload types have no PartialEq).
            assert_eq!(bytes, encode_obs_msg(&back));
        }
    }

    #[test]
    fn obs_snapshot_truncation_is_typed() {
        let bytes = encode_obs_msg(&ObsMsg::Snapshot(Box::new(sample_rank_obs())));
        for cut in 0..bytes.len() {
            assert!(
                decode_obs_msg(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
