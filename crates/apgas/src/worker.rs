//! The per-place scheduler: message pumping, activity execution, and
//! **help-first waiting**.
//!
//! Every place runs one (or more) worker threads. A worker alternates
//! between draining its transport mailbox (converting task messages into
//! queued activities and handling termination-control traffic inline) and
//! executing queued activities. Blocking constructs — a `finish` waiting
//! for termination, an `at` waiting for its round trip, a team operation
//! waiting for peers — never park the thread while work is available:
//! [`Worker::wait_until`] keeps pumping messages and running activities
//! until the condition holds. With one worker per place (the paper's
//! configuration) this is what makes the runtime deadlock-free: the thread
//! that waits is the same thread that processes the messages that satisfy
//! the wait.

use crate::clock::ClockMsg;
use crate::ctx::Ctx;
use crate::finish::dense::next_hop;
use crate::finish::proxy::{Proxy, ProxyEmit};
use crate::finish::root::RootState;
use crate::finish::{Attach, FinishKind, FinishMsg, FinishRef};
use crate::place_state::{Activity, PlaceState};
use crate::runtime::Global;
use crate::team::TeamWire;
use crate::wire;
use crossbeam_deque::Steal;
use obs::causal::{CausalBuf, CausalId};
use obs::metrics::{Counter, Histogram};
use obs::trace::TraceBuf;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use x10rt::codec::{self, HandlerId, WireMsg};
use x10rt::{Coalescer, CodecMode, Envelope, MsgClass, PlaceId};

/// The closure type of an activity body.
pub type TaskFn = Box<dyn FnOnce(&Ctx) + Send + 'static>;

/// Wire payload of a spawned activity.
pub struct SpawnMsg {
    /// Termination-detection attachment (already accounted at the sender).
    pub attach: Attach,
    /// The body.
    pub body: TaskFn,
}

/// A closure body riding a [`WireMsg`]'s inline part under
/// [`CodecMode::Bytes`] (the header and attach travel as bytes; the body
/// cannot serialize and stays an in-process pointer — or, over the TCP
/// self-loop, a stash key).
pub(crate) struct ClosureCell(pub TaskFn);

/// What a spawn ships as the activity body: an in-process closure, or a
/// registered command (handler id + serialized argument bytes — the fully
/// serializable form every cross-process spawn needs).
pub enum SpawnBody {
    /// A closure (shipped by pointer; never crosses a process boundary).
    Closure(TaskFn),
    /// A registered command: run the handler with the argument bytes.
    Cmd {
        /// Handler registered via `Runtime::register_handler`.
        handler: HandlerId,
        /// Serialized arguments, passed to the handler verbatim.
        args: Vec<u8>,
    },
}

impl SpawnBody {
    /// Turn the body into a runnable [`TaskFn`]. Commands resolve their
    /// handler at *run* time so registration order does not matter; an
    /// unregistered id panics inside the activity, surfacing through the
    /// governing finish as a typed message naming the id.
    pub(crate) fn into_task(self) -> TaskFn {
        match self {
            SpawnBody::Closure(f) => f,
            SpawnBody::Cmd { handler, args } => Box::new(move |ctx: &Ctx| {
                let h = ctx.worker().g.handlers.read().get(&handler.0).cloned();
                match h {
                    Some(h) => h(ctx, &args),
                    None => panic!(
                        "unknown handler id #{}: no command registered under it at {} \
                         (register it with Runtime::register_handler before spawning)",
                        handler.0,
                        ctx.here()
                    ),
                }
            }),
        }
    }

    /// Modeled body size: what this spawn charges to the wire (plus the
    /// envelope header). Matches the pre-codec accounting for closures so
    /// byte ledgers are identical across codec modes.
    fn modeled_bytes(&self) -> usize {
        match self {
            SpawnBody::Closure(f) => std::mem::size_of_val(&**f) + std::mem::size_of::<Attach>(),
            SpawnBody::Cmd { args, .. } => 4 + args.len() + std::mem::size_of::<Attach>(),
        }
    }
}

/// A worker thread of one place.
pub struct Worker {
    /// Shared runtime state.
    pub g: Arc<Global>,
    /// This worker's place.
    pub place: Arc<PlaceState>,
    /// Shorthand for `place.id`.
    pub here: PlaceId,
    /// Outgoing-message aggregation buffers. Thread-local to this worker
    /// (hence `RefCell`, not a lock); flushed at the end of every scheduling
    /// quantum, before parking, and at loop exit, so buffered messages never
    /// outlive a point where their destination could be waiting on them.
    coalescer: RefCell<Coalescer>,
    /// Scratch buffer for bulk mailbox drains (reused across calls).
    recv_scratch: RefCell<Vec<Envelope>>,
    /// Consecutive idle quanta; drives the yield-before-sleep backoff in
    /// [`Worker::park_brief`].
    idle_streak: Cell<u32>,
    /// The causal identity of whatever this worker is currently executing or
    /// handling — the parent every outgoing stamped message links to.
    /// Saved/restored around nested execution (help-first waiting runs
    /// activities inside activities) so the chain always names the true
    /// cause.
    current_cause: Cell<Option<CausalId>>,
    /// Observability handles, resolved once at construction (`None` when the
    /// runtime was built with `Config::obs_disable`) so every hot-path hook
    /// is a `None` check plus, at most, one relaxed atomic increment.
    hooks: Option<WorkerHooks>,
    /// M:N mode (`Config::executor_threads` set): this worker runs on a
    /// place context, so idle waits yield the context to its executor
    /// instead of spinning or condvar-sleeping the thread.
    mplex: bool,
}

/// A worker's resolved observability handles: its trace ring plus the shared
/// metric counters it increments.
struct WorkerHooks {
    trace: Arc<TraceBuf>,
    causal: Arc<CausalBuf>,
    finish_ctl_msgs: Counter,
    spawn_sent: Counter,
    spawn_recv: Counter,
    parks: Counter,
    activities: Counter,
    drain_depth: Histogram,
    send_failed: Counter,
    stray_ctl: Counter,
    watchdog_fired: Counter,
}

/// Idle quanta a worker spends yielding the CPU before it takes the condvar
/// sleep. Aggregated traffic arrives in bursts, so a receiver that just
/// drained its mailbox very often gets its next batch within a few scheduler
/// quanta of the sender — yielding there avoids a futex sleep/wake round
/// trip per burst, which dominates on oversubscribed hosts.
const PARK_SPIN_YIELDS: u32 = 8;

/// Convert a panic payload into a printable message. Typed runtime errors
/// stringify through their `Display`, which embeds the dead-place marker so
/// [`crate::ApgasError::from_panic`] can recover them after a place hop.
pub fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(err) = e.downcast_ref::<crate::error::ApgasError>() {
        err.to_string()
    } else if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Worker {
    /// A worker for `place` within runtime `g`, with its own aggregation
    /// buffers sized from the runtime configuration.
    pub fn new(g: Arc<Global>, place: Arc<PlaceState>) -> Self {
        let here = place.id;
        let mut coalescer = Coalescer::new(
            here,
            g.cfg.places,
            g.cfg.batch_max_msgs,
            g.cfg.batch_max_bytes,
            !g.cfg.batch_disable,
        );
        if let Some(o) = g.obs.as_ref() {
            coalescer = coalescer.with_obs(&o.metrics);
        }
        coalescer = coalescer.with_send_timeout(g.cfg.send_timeout);
        if g.cfg.arena_disable {
            coalescer = coalescer.with_arena_disabled();
        }
        let hooks = g.obs.as_ref().map(|o| WorkerHooks {
            trace: o.tracer.register(here.0),
            causal: o.causal.register(here.0),
            finish_ctl_msgs: o.metrics.counter(obs::names::FINISH_CTL_MSGS),
            spawn_sent: o.metrics.counter(obs::names::SPAWN_REMOTE_SENT),
            spawn_recv: o.metrics.counter(obs::names::SPAWN_REMOTE_RECV),
            parks: o.metrics.counter(obs::names::WORKER_PARKS),
            activities: o.metrics.counter(obs::names::WORKER_ACTIVITIES),
            drain_depth: o.metrics.histogram(
                obs::names::MAILBOX_DRAIN_DEPTH,
                obs::names::MAILBOX_DRAIN_BOUNDS,
            ),
            send_failed: o.metrics.counter(obs::names::TRANSPORT_SEND_FAILED),
            stray_ctl: o.metrics.counter(obs::names::FINISH_STRAY_CTL),
            watchdog_fired: o.metrics.counter(obs::names::FINISH_WATCHDOG_FIRED),
        });
        let mplex = g.cfg.executor_threads.is_some();
        Worker {
            g,
            place,
            here,
            coalescer: RefCell::new(coalescer),
            recv_scratch: RefCell::new(Vec::new()),
            idle_streak: Cell::new(0),
            current_cause: Cell::new(None),
            hooks,
            mplex,
        }
    }

    /// This worker's trace ring, when observability is on. `Ctx` exposes it
    /// to library layers (finish spans, team phases, GLB steal rounds).
    pub(crate) fn trace(&self) -> Option<&TraceBuf> {
        self.hooks.as_ref().map(|h| &*h.trace)
    }

    /// The runtime's observability state, when enabled.
    pub(crate) fn obs(&self) -> Option<&Arc<obs::Obs>> {
        self.g.obs.as_ref()
    }

    /// This worker's causal ring when causal tracing is currently enabled
    /// (`None` otherwise — the off-path cost is one relaxed atomic load).
    #[inline]
    fn causal_buf(&self) -> Option<&CausalBuf> {
        match &self.hooks {
            Some(h) if h.causal.enabled() => Some(&h.causal),
            _ => None,
        }
    }

    /// The causal identity of the chain this worker is currently executing
    /// under, when causal tracing recorded one.
    pub(crate) fn current_cause(&self) -> Option<CausalId> {
        self.current_cause.get()
    }

    /// Run `f` with `id` installed as the current cause, recording the
    /// handling as that message's execution span. Used for control traffic
    /// handled inline by the message pump (finish-ctl, team, clock) — their
    /// queue-wait is genuinely ~zero, and any message they send (a dense
    /// hop forward, a clock resume) chains to the message that caused it.
    fn with_inline_cause(&self, id: Option<CausalId>, f: impl FnOnce()) {
        let Some(id) = id else {
            return f();
        };
        let prev = self.current_cause.replace(Some(id));
        let start = self.causal_buf().and_then(CausalBuf::start);
        f();
        if let (Some(cb), Some(s)) = (self.causal_buf(), start) {
            cb.exec_end(id, 0, s);
        }
        self.current_cause.set(prev);
    }

    /// Scheduler loop: run until global shutdown.
    pub fn main_loop(&self) {
        if self.g.step_gate.is_some() {
            // Deterministic mode: a worker panic escaping an activity (a
            // protocol-bug assertion such as the stray-FinishCtl check)
            // would otherwise kill this thread silently and strand the
            // schedule controller waiting for a quantum that never
            // completes. Record it and convert it into a clean shutdown.
            if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.loop_body();
            })) {
                self.g.uncounted_panics.lock().push(format!(
                    "worker at {} died: {}",
                    self.here,
                    panic_message(e)
                ));
                self.g.shutdown.store(true, Ordering::Release);
                if let Some(gate) = &self.g.step_gate {
                    gate.release_all();
                }
                for p in &self.g.places {
                    p.wake();
                }
            }
            return;
        }
        self.loop_body();
    }

    /// Bracket one `Ctx::probe` pump. Deterministic mode only: while the
    /// probing activity is paused at the step gate, its place still has
    /// runnable application work even with every queue empty, and
    /// `Runtime::place_has_work` must keep reporting it so the schedule
    /// controller grants the quanta that advance it. (A `wait_until` pause
    /// deliberately does NOT set this — only a delivery can unblock it, and
    /// marking it runnable would make true deadlocks undetectable.)
    pub fn begin_probe(&self) {
        if self.g.step_gate.is_some() {
            self.place.probing.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// See [`Worker::begin_probe`].
    pub fn end_probe(&self) {
        if self.g.step_gate.is_some() {
            self.place.probing.fetch_sub(1, Ordering::AcqRel);
        }
    }

    fn loop_body(&self) {
        while !self.g.shutdown.load(Ordering::Acquire) {
            if !self.run_one() {
                self.park_brief();
            }
        }
        // Push out anything still buffered so a peer draining its mailbox
        // during teardown sees every message that was logically sent.
        self.flush_sends();
    }

    /// Pump messages and run at most one activity. Returns whether any
    /// progress was made. Ends with a flush: nothing this quantum sent stays
    /// buffered into the next one.
    pub fn run_one(&self) -> bool {
        if let Some(gate) = &self.g.step_gate {
            // Deterministic mode: the quantum boundary sits here, at the
            // top of run_one, so every `wait_until` condition re-check and
            // every activity body runs while this worker holds the baton.
            if self.mplex {
                // M:N: poll the baton instead of blocking — the executor
                // thread must stay free to run the granted place's context.
                // The gate's grant hook marks this context runnable again.
                loop {
                    match gate.try_step(self.here.0) {
                        crate::step::TryStep::Granted | crate::step::TryStep::Released => break,
                        crate::step::TryStep::NotGranted => {
                            if !crate::context::yield_now() {
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            } else {
                gate.step_wait(self.here.0);
            }
        }
        let handled = self.drain_messages(256);
        let progress = if let Some(act) = self.pop_activity() {
            self.execute(act);
            true
        } else {
            handled > 0
        };
        self.flush_sends();
        if progress {
            self.idle_streak.set(0);
        }
        progress
    }

    /// Drain this worker's aggregation buffers onto the transport. The
    /// pre-flush buffered-byte total is published to the place's
    /// `coalesced_bytes` gauge first (the status report reads it), so the
    /// gauge tracks what each scheduling quantum left buffered without
    /// adding any per-send cost.
    pub fn flush_sends(&self) {
        let mut co = self.coalescer.borrow_mut();
        self.place
            .coalesced_bytes
            .store(co.pending_bytes() as u64, Ordering::Relaxed);
        if let Err(e) = co.flush(&*self.g.transport) {
            self.note_send_failure(&e);
        }
    }

    /// Route an outgoing envelope through the aggregation buffers (or
    /// straight to the transport when aggregation is disabled). Every send
    /// from this worker thread must go through here — a bypass would let
    /// messages overtake buffered ones and break per-pair FIFO. The finish
    /// root governing the message is inherited from the current cause; use
    /// [`Worker::send_env_rooted`] when the caller knows it exactly.
    pub(crate) fn send_env(&self, env: Envelope) {
        self.send_env_rooted(env, None);
    }

    /// [`Worker::send_env`] with an explicit finish root for the causal
    /// stamp (packed via `CausalId::pack_root`; `None` inherits the current
    /// cause's root). When causal tracing is on, the envelope is stamped
    /// with a fresh [`CausalId`] — charging the causal header bytes — and a
    /// send event linking it to the current cause is recorded; when off,
    /// the envelope passes through untouched.
    pub(crate) fn send_env_rooted(&self, env: Envelope, root: Option<u64>) {
        let env = match self.causal_buf() {
            Some(cb) if env.causal.is_none() => {
                let cur = self.current_cause.get();
                let root = root.or_else(|| cur.map(|c| c.root)).unwrap_or(0);
                let id = cb.mint(root);
                let env = env.with_causal(id);
                cb.send(
                    id,
                    cur.map_or(0, |c| c.seq),
                    env.to.0,
                    env.class.index() as u8,
                    env.bytes,
                );
                env
            }
            _ => env,
        };
        if let Err(e) = self.coalescer.borrow_mut().send(&*self.g.transport, env) {
            self.note_send_failure(&e);
        }
    }

    /// Account for messages the transport refused or destroyed (dead
    /// destination, retry budget exhausted). The messages are gone; the
    /// protocols above degrade via the finish watchdog and GLB's
    /// dead-victim handling rather than by blocking here.
    fn note_send_failure(&self, e: &x10rt::SendError) {
        if let Some(h) = &self.hooks {
            h.send_failed.add(self.here.0, e.affected() as u64);
            h.trace
                .instant("transport", "send_failed", e.place().0 as u64);
        }
    }

    /// Help-first wait: keep the place making progress until `cond` holds.
    ///
    /// If the runtime begins shutting down while the condition is still
    /// unsatisfiable (possible only when a fault killed the peer that would
    /// have satisfied it), the wait aborts by panicking so the worker thread
    /// can unwind out of the blocked activity and join; a hang here would
    /// deadlock `Runtime::drop`.
    pub fn wait_until(&self, cond: &dyn Fn() -> bool) {
        while !cond() {
            if self.g.shutdown.load(Ordering::Acquire) {
                panic!(
                    "wait at {} aborted: runtime shutting down before the condition held",
                    self.here
                );
            }
            if !self.run_one() {
                self.park_brief();
            }
        }
    }

    /// [`Worker::wait_until`]`(root.is_done())` with a liveness watchdog:
    /// if the root's protocol makes no progress (no accounting event at
    /// all) for `limit`, give up and surface a typed dead-place error. Any
    /// progress event extends the deadline, so slow-but-live protocols are
    /// never aborted; only genuine stalls (lost control traffic, a dead
    /// participant) trip it.
    pub(crate) fn wait_root_watchdog(
        &self,
        root: &RootState,
        limit: std::time::Duration,
    ) -> Result<(), crate::error::ApgasError> {
        use std::time::Instant;
        let mut last = root.progress_events();
        let mut deadline = Instant::now() + limit;
        while !root.is_done() {
            if self.g.shutdown.load(Ordering::Acquire) {
                panic!(
                    "wait at {} aborted: runtime shutting down before the condition held",
                    self.here
                );
            }
            if !self.run_one() {
                self.park_brief();
            }
            if root.kind == FinishKind::Resilient {
                // Dead-place detection is the adoption trigger; the
                // reconstruction bumps the root's progress events, so a
                // recovery in flight keeps extending the deadline below.
                self.resilient_recover(root);
            }
            let seen = root.progress_events();
            if seen != last {
                last = seen;
                deadline = Instant::now() + limit;
            } else if Instant::now() >= deadline {
                if let Some(h) = &self.hooks {
                    h.watchdog_fired.inc(self.here.0);
                    h.trace.instant("finish", "watchdog_fired", root.id.seq);
                }
                let dead: Vec<u32> = self.g.transport.dead_places().iter().map(|p| p.0).collect();
                // Dump the live status report: stash it for artifact
                // writers (chaos smuggles a `StatusHandle` out of a failing
                // cell) and print it, so a tripped watchdog always leaves a
                // diagnosis naming the stalled finish kind and place.
                let report = format!(
                    "finish[{}] seq {} at {} stalled: watchdog fired after {limit:?}\n{}",
                    root.kind.label(),
                    root.id.seq,
                    self.here,
                    crate::status::report_text(&self.g)
                );
                *self.g.obs_plane.last_watchdog_report.lock() = Some(report.clone());
                eprintln!("{report}");
                return Err(crate::error::ApgasError::DeadPlace {
                    detail: format!(
                        "finish[{}] at {} stalled: no termination-protocol progress \
                         for {limit:?}; transport reports dead places {dead:?}",
                        root.kind.label(),
                        self.here,
                    ),
                });
            }
        }
        Ok(())
    }

    fn pop_activity(&self) -> Option<Activity> {
        loop {
            match self.place.queue.steal() {
                Steal::Success(a) => return Some(a),
                Steal::Empty => return None,
                Steal::Retry => continue,
            }
        }
    }

    pub(crate) fn park_brief_pub(&self) {
        self.park_brief()
    }

    fn park_brief(&self) {
        // Never sleep on buffered sends: a peer may be waiting on them.
        self.flush_sends();
        // Deterministic mode: never condvar-sleep — the next run_one blocks
        // on the stepping gate anyway, and sleeping here would deadlock
        // against a controller that only wakes workers through grants.
        if self.g.step_gate.is_some() {
            return;
        }
        // M:N mode: never block the executor thread and skip the spin
        // backoff (it would starve sibling contexts when places outnumber
        // cores) — park the *context* by yielding it non-runnable. Safe
        // against lost wakes: any enqueue/delivery for this place marks the
        // context runnable even while it is mid-quantum, and the executor
        // pool's periodic resweep re-polls parked contexts on the
        // park-timeout cadence for the time-based machinery (watchdog, GLB
        // steal timeouts, coalescer retries).
        if self.mplex {
            self.place.parks.fetch_add(1, Ordering::Relaxed);
            if let Some(h) = &self.hooks {
                h.parks.inc(self.here.0);
                h.trace.instant("worker", "park", 0);
            }
            if !crate::context::yield_now() {
                std::thread::yield_now();
            }
            return;
        }
        // Back off gently first: give the CPU away and re-check before
        // committing to a condvar sleep (see PARK_SPIN_YIELDS).
        let streak = self.idle_streak.get();
        if streak < PARK_SPIN_YIELDS {
            self.idle_streak.set(streak + 1);
            std::thread::yield_now();
            return;
        }
        let mut guard = self.place.wake_mutex.lock();
        self.place.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.place.queue.is_empty()
            && self.g.transport.queue_len(self.here) == 0
            && !self.g.shutdown.load(Ordering::Acquire)
        {
            self.place.parks.fetch_add(1, Ordering::Relaxed);
            if let Some(h) = &self.hooks {
                h.parks.inc(self.here.0);
                h.trace.instant("worker", "park", 0);
            }
            self.place
                .wake_cv
                .wait_for(&mut guard, self.g.cfg.park_timeout);
        }
        self.place.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Run one activity to completion and report its termination.
    pub fn execute(&self, act: Activity) {
        if let Some(h) = &self.hooks {
            h.activities.inc(self.here.0);
        }
        // Help-first waiting means execute() nests: save/restore the current
        // cause so a pumped activity doesn't leak its chain into the blocked
        // parent's subsequent sends.
        let prev_cause = self.current_cause.replace(act.cause);
        let exec_start = if act.cause_remote && act.cause.is_some() {
            self.causal_buf().and_then(CausalBuf::start)
        } else {
            None
        };
        let ctx = Ctx::new(self, act.attach);
        let result = catch_unwind(AssertUnwindSafe(|| (act.body)(&ctx)));
        let panic = result.err().map(panic_message);
        ctx.finalize_activity();
        let attach = ctx.take_attach();
        self.on_death(attach, panic);
        // Close the span after on_death so the Done/CreditReturn sends it
        // triggers still chain to this activity in the DAG.
        if let (Some(id), Some(start)) = (act.cause, exec_start) {
            if let Some(cb) = self.causal_buf() {
                cb.exec_end(id, 0, start);
            }
        }
        self.current_cause.set(prev_cause);
    }

    // ------------------------------------------------------------------
    // Message pump
    // ------------------------------------------------------------------

    fn drain_messages(&self, max: usize) -> usize {
        // Bulk drain: pull up to `max` envelopes under one mailbox lock
        // acquisition, then dispatch outside the lock. The scratch vector is
        // taken out of its cell for the duration so handlers are free to use
        // `self` (they never drain recursively).
        let mut scratch = std::mem::take(&mut *self.recv_scratch.borrow_mut());
        self.g
            .transport
            .try_recv_batch(self.here, max, &mut scratch);
        let mut n = 0;
        for env in scratch.drain(..) {
            // A batch envelope expands into its logical messages, dispatched
            // in their original send order; the emptied batch box then goes
            // back to the coalescer's arena (after the dispatch loop —
            // handlers may borrow the coalescer to send).
            match env.unbatch_boxed() {
                Ok(mut batch) => {
                    n += batch.envs.len();
                    for env in batch.envs.drain(..) {
                        self.handle_envelope(env);
                    }
                    self.coalescer.borrow_mut().recycle_batch(batch);
                }
                Err(env) => {
                    n += 1;
                    self.handle_envelope(env);
                }
            }
        }
        *self.recv_scratch.borrow_mut() = scratch;
        self.forward_dense();
        if n > 0 {
            if let Some(h) = &self.hooks {
                h.drain_depth.record(self.here.0, n as u64);
            }
        }
        n
    }

    fn handle_envelope(&self, env: Envelope) {
        // Receive stamp: dispatch time at this worker. Recorded before the
        // class dispatch so the transport component of the causal edge ends
        // here and the handling below is attributed as execution.
        if let (Some(id), Some(cb)) = (env.causal, self.causal_buf()) {
            cb.recv(id, env.from.0, env.class.index() as u8, env.bytes);
        }
        let Envelope {
            from,
            class,
            causal,
            payload,
            ..
        } = env;
        // Serialized path first: a WireMsg payload dispatches through the
        // handler table regardless of the configured codec mode (the check
        // is one TypeId comparison), so mixed-mode traffic — e.g. commands
        // arriving at an Inline-mode runtime — always works.
        let payload = match payload.downcast::<WireMsg>() {
            Ok(w) => {
                self.handle_wire(from, class, causal, *w);
                return;
            }
            Err(p) => p,
        };
        match class {
            MsgClass::Task | MsgClass::Steal | MsgClass::Rdma => {
                let msg = payload
                    .downcast::<SpawnMsg>()
                    .expect("task-class payload must be a SpawnMsg");
                if let Some(h) = &self.hooks {
                    h.spawn_recv.inc(self.here.0);
                    h.trace.instant("spawn", "recv", from.0 as u64);
                }
                self.register_receipt(&msg.attach, from.0);
                // The activity carries the message's causal id; its
                // execution span is recorded when a worker actually runs it,
                // which is what splits queue-wait from execution.
                self.place.enqueue(Activity {
                    body: msg.body,
                    attach: msg.attach,
                    cause: causal,
                    cause_remote: true,
                });
            }
            MsgClass::FinishCtl => {
                let msg = payload
                    .downcast::<FinishMsg>()
                    .expect("finish-ctl payload must be a FinishMsg");
                self.with_inline_cause(causal, || self.handle_finish_msg(*msg));
            }
            MsgClass::Team => {
                let msg = payload
                    .downcast::<TeamWire>()
                    .expect("team payload must be a TeamWire");
                self.with_inline_cause(causal, || self.place.team.lock().deliver(*msg));
            }
            MsgClass::Clock => {
                let msg = payload
                    .downcast::<ClockMsg>()
                    .expect("clock payload must be a ClockMsg");
                self.with_inline_cause(causal, || crate::clock::handle_msg(self, *msg));
            }
            MsgClass::System => { /* shutdown travels via the flag */ }
            MsgClass::Batch => {
                debug_assert!(false, "nested batch envelope — coalescer bug");
            }
        }
    }

    /// Dispatch a serialized [`WireMsg`] (see `PROTOCOL.md`). Decode
    /// failures here mean a peer violated the protocol; they panic with the
    /// typed decode error rather than limping on with garbage.
    fn handle_wire(&self, from: PlaceId, class: MsgClass, causal: Option<CausalId>, w: WireMsg) {
        let WireMsg {
            handler,
            args,
            inline,
        } = w;
        match handler {
            codec::H_SPAWN => {
                let (attach, body) = wire::decode_spawn(&args)
                    .unwrap_or_else(|e| panic!("malformed H_SPAWN from {from}: {e}"));
                let body = match body {
                    wire::SpawnWireBody::Closure => {
                        let cell = inline
                            .expect("closure-bodied spawn lost its inline part")
                            .downcast::<ClosureCell>()
                            .expect("spawn inline part must be a ClosureCell");
                        cell.0
                    }
                    wire::SpawnWireBody::Cmd { handler, args } => {
                        SpawnBody::Cmd { handler, args }.into_task()
                    }
                };
                if let Some(h) = &self.hooks {
                    h.spawn_recv.inc(self.here.0);
                    h.trace.instant("spawn", "recv", from.0 as u64);
                }
                self.register_receipt(&attach, from.0);
                self.place.enqueue(Activity {
                    body,
                    attach,
                    cause: causal,
                    cause_remote: true,
                });
            }
            codec::H_FINISH => {
                let msg = wire::decode_finish_msg(&args)
                    .unwrap_or_else(|e| panic!("malformed H_FINISH from {from}: {e}"));
                self.with_inline_cause(causal, || self.handle_finish_msg(msg));
            }
            codec::H_TEAM => {
                let msg = wire::decode_team_wire(&args, inline)
                    .unwrap_or_else(|e| panic!("malformed H_TEAM from {from}: {e}"));
                self.with_inline_cause(causal, || self.place.team.lock().deliver(msg));
            }
            codec::H_CLOCK => {
                let msg = wire::decode_clock_msg(&args)
                    .unwrap_or_else(|e| panic!("malformed H_CLOCK from {from}: {e}"));
                self.with_inline_cause(causal, || crate::clock::handle_msg(self, msg));
            }
            codec::H_SHUTDOWN => {
                // A remote process is tearing the launch down; ship this
                // process's observability snapshot back to the initiator
                // first (once — rank 0 folds it even if it never asked),
                // then release the workers and the `Runtime::serve` caller.
                self.ship_obs_on_shutdown(from);
                self.g.shutdown.store(true, Ordering::Release);
                for p in &self.g.places {
                    p.wake();
                }
            }
            codec::H_OBS => {
                let msg = wire::decode_obs_msg(&args)
                    .unwrap_or_else(|e| panic!("malformed H_OBS from {from}: {e}"));
                self.handle_obs_msg(msg);
            }
            h => {
                debug_assert!(class != MsgClass::Batch, "batch reached handle_wire");
                panic!(
                    "unknown handler id #{} in a {}-class message from {from} — \
                     app commands must ride inside H_SPAWN",
                    h.0,
                    class.label()
                );
            }
        }
    }

    /// Dispatch observability-plane traffic (`H_OBS`, PROTOCOL.md §4).
    /// Obs messages bypass the coalescer and carry no causal stamp: they
    /// are diagnostics *about* the run, and must neither appear in the
    /// causal DAG they ship nor wait behind the traffic they describe
    /// (ordering against task traffic is irrelevant to them, so the
    /// direct-send bypass is safe).
    fn handle_obs_msg(&self, msg: wire::ObsMsg) {
        match msg {
            wire::ObsMsg::SnapshotRequest { reply_to } => {
                // One reply per *process*: only the first hosted place
                // answers, so a rank hosting 2,048 places ships one
                // snapshot, not 2,048 copies.
                if self.here.0 != self.g.rank() {
                    return;
                }
                if let Some(snap) = self.g.capture_rank_obs() {
                    self.obs_send(
                        PlaceId(reply_to),
                        wire::encode_obs_msg(&wire::ObsMsg::Snapshot(Box::new(snap))),
                    );
                }
            }
            wire::ObsMsg::Snapshot(snap) => self.g.accept_shipment(*snap),
            wire::ObsMsg::StatusRequest { reply_to } => {
                // The report is process-wide, so any hosted place answers
                // (the querier addressed one specific place).
                self.obs_send(
                    PlaceId(reply_to),
                    wire::encode_obs_msg(&wire::ObsMsg::Status {
                        rank: self.g.rank(),
                        text: crate::status::report_text(&self.g),
                        json: crate::status::report_json(&self.g),
                    }),
                );
            }
            wire::ObsMsg::Status { rank, text, json } => {
                self.g.accept_status_reply(rank, text, json);
            }
        }
    }

    /// Best-effort direct send of an encoded obs message (see
    /// [`Worker::handle_obs_msg`] for why it bypasses the coalescer). A
    /// refused send is dropped: losing a diagnostic must never wedge the
    /// runtime being diagnosed.
    fn obs_send(&self, to: PlaceId, body: Vec<u8>) {
        let bytes = body.len();
        let env = Envelope::new(
            self.here,
            to,
            MsgClass::System,
            bytes,
            Box::new(WireMsg::new(codec::H_OBS, body)),
        );
        if let Err(e) = self.g.transport.send(env) {
            self.note_send_failure(&e);
        }
    }

    /// Serve-shutdown shipping: the first `H_SHUTDOWN` this process sees
    /// also ships its observability snapshot to the shutdown's initiator,
    /// so `Runtime::serve` ranks contribute to the cluster fold even when
    /// rank 0 never ran an explicit collection round.
    fn ship_obs_on_shutdown(&self, to: PlaceId) {
        if self.g.cfg.host_places.is_none()
            || self
                .g
                .obs_plane
                .shutdown_shipped
                .swap(true, Ordering::AcqRel)
        {
            return;
        }
        if let Some(snap) = self.g.capture_rank_obs() {
            self.obs_send(
                to,
                wire::encode_obs_msg(&wire::ObsMsg::Snapshot(Box::new(snap))),
            );
        }
    }

    fn handle_finish_msg(&self, msg: FinishMsg) {
        match msg {
            FinishMsg::Flush { fin, deltas } => match self.try_root_of(&fin) {
                Some(r) => r.apply_deltas(deltas),
                None => self.note_stray_ctl(&fin),
            },
            FinishMsg::DenseHop { fin, deltas } => {
                if fin.id.home == self.here {
                    match self.try_root_of(&fin) {
                        Some(r) => r.apply_deltas(deltas),
                        None => self.note_stray_ctl(&fin),
                    }
                } else {
                    self.place.dense_agg.lock().absorb(fin, deltas);
                }
            }
            FinishMsg::Done {
                fin,
                completions,
                panics,
            } => match self.try_root_of(&fin) {
                Some(r) => r.apply_done(completions, panics),
                None => self.note_stray_ctl(&fin),
            },
            FinishMsg::CreditReturn { fin, weight, panic } => match self.try_root_of(&fin) {
                Some(r) => r.apply_credit(weight, panic),
                None => self.note_stray_ctl(&fin),
            },
            // Resilient backup replication: this place is the *backup*, not
            // the home — store/discard the snapshot keyed by finish id. A
            // release for an unknown id is fine (the sync may have been
            // lost; the table is advisory state for recovery diagnosis).
            FinishMsg::BackupSync { fin, snapshot } => {
                self.place.backup_roots.lock().insert(fin.id, snapshot);
            }
            FinishMsg::BackupRelease { fin } => {
                self.place.backup_roots.lock().remove(&fin.id);
            }
            FinishMsg::CmdLog { fin, cmd } => match self.try_root_of(&fin) {
                Some(r) => {
                    if let Some(cmd) = r.apply_cmd_log(cmd) {
                        // The destination was adopted before this log
                        // arrived: the reconstruction pass missed it, so
                        // re-execute it here and now.
                        self.reexec_cmd(&r, cmd);
                    }
                }
                None => self.note_stray_ctl(&fin),
            },
        }
    }

    /// Forward (hop-merged) dense control traffic toward finish homes.
    fn forward_dense(&self) {
        let pending = {
            let mut agg = self.place.dense_agg.lock();
            if !agg.has_pending() {
                return;
            }
            agg.drain()
        };
        for (fin, deltas) in pending {
            if fin.id.home == self.here {
                self.root_of(&fin).apply_deltas(deltas);
            } else {
                let hop = next_hop(&self.g.topo, self.here, fin.id.home)
                    .expect("non-home dense delta must have a next hop");
                self.send_finish_msg(hop, deltas.wire_size(), FinishMsg::DenseHop { fin, deltas });
            }
        }
    }

    // ------------------------------------------------------------------
    // Termination accounting hooks
    // ------------------------------------------------------------------

    /// Look up a finish root homed at this place; `None` once the root has
    /// been deregistered (normal completion, or abandonment by the liveness
    /// watchdog).
    pub fn try_root_of(&self, fin: &FinishRef) -> Option<Arc<RootState>> {
        debug_assert_eq!(fin.id.home, self.here);
        self.place.roots.lock().get(&fin.id.seq).cloned()
    }

    /// Look up a finish root homed at this place.
    pub fn root_of(&self, fin: &FinishRef) -> Arc<RootState> {
        self.try_root_of(fin).unwrap_or_else(|| {
            panic!(
                "finish {:?} not (or no longer) registered at its home — \
                 protocol bug, or the scope was abandoned by the liveness watchdog",
                fin.id
            )
        })
    }

    /// Control traffic arrived for a finish that no longer has a root here.
    /// Impossible in fault-free operation (the root outlives all governed
    /// activities by construction), so treat it as a protocol bug then; with
    /// faults or a watchdog configured it is expected residue — duplicated
    /// flushes, or stragglers of a scope the watchdog abandoned — and is
    /// counted and dropped.
    fn note_stray_ctl(&self, fin: &FinishRef) {
        if self.g.cfg.fault_plan.is_none()
            && self.g.cfg.finish_watchdog.is_none()
            && self.g.transport.dead_places().is_empty()
        {
            panic!(
                "finish {:?} not (or no longer) registered at its home — protocol bug",
                fin.id
            );
        }
        if let Some(h) = &self.hooks {
            h.stray_ctl.inc(self.here.0);
            h.trace.instant("finish", "stray_ctl", fin.id.seq);
        }
    }

    /// Run `f` against the proxy for `fin` at this (non-home) place, then
    /// transmit whatever the proxy asks for.
    pub fn with_proxy(&self, fin: FinishRef, f: impl FnOnce(&mut Proxy) -> ProxyEmit) {
        debug_assert_ne!(fin.id.home, self.here);
        let emit = {
            let mut proxies = self.place.proxies.lock();
            let proxy = proxies
                .entry(fin.id)
                .or_insert_with(|| Proxy::new(fin, self.here.0));
            let emit = f(proxy);
            if proxy.is_idle() {
                proxies.remove(&fin.id);
            }
            emit
        };
        self.transmit_emit(fin, emit);
    }

    fn transmit_emit(&self, fin: FinishRef, emit: ProxyEmit) {
        match emit {
            ProxyEmit::None => {}
            ProxyEmit::Flush(deltas) => {
                let sz = deltas.wire_size();
                self.send_finish_msg(fin.id.home, sz, FinishMsg::Flush { fin, deltas });
            }
            ProxyEmit::DenseFlush(deltas) => {
                let hop = next_hop(&self.g.topo, self.here, fin.id.home)
                    .expect("dense flush at home should be direct");
                let sz = deltas.wire_size();
                self.send_finish_msg(hop, sz, FinishMsg::DenseHop { fin, deltas });
            }
            ProxyEmit::Done {
                completions,
                panics,
            } => {
                self.send_finish_msg(
                    fin.id.home,
                    16 + panics.iter().map(String::len).sum::<usize>(),
                    FinishMsg::Done {
                        fin,
                        completions,
                        panics,
                    },
                );
            }
        }
    }

    fn send_finish_msg(&self, to: PlaceId, body_bytes: usize, msg: FinishMsg) {
        if let Some(h) = &self.hooks {
            h.finish_ctl_msgs.inc(self.here.0);
        }
        // Every finish-ctl message names its finish, which is exactly the
        // causal root: critical paths group by it.
        let root = match &msg {
            FinishMsg::Flush { fin, .. }
            | FinishMsg::DenseHop { fin, .. }
            | FinishMsg::Done { fin, .. }
            | FinishMsg::CreditReturn { fin, .. }
            | FinishMsg::BackupSync { fin, .. }
            | FinishMsg::BackupRelease { fin }
            | FinishMsg::CmdLog { fin, .. } => CausalId::pack_root(fin.id.home.0, fin.id.seq),
        };
        // Both codec modes charge the same modeled `body_bytes`, so ledgers
        // and cost oracles are mode-independent; `Bytes` just swaps the
        // typed box for its serialized form.
        let payload: x10rt::Payload = match self.g.cfg.codec {
            CodecMode::Inline => Box::new(msg),
            CodecMode::Bytes => {
                Box::new(WireMsg::new(codec::H_FINISH, wire::encode_finish_msg(&msg)))
            }
        };
        self.send_env_rooted(
            Envelope::new(self.here, to, MsgClass::FinishCtl, body_bytes, payload),
            Some(root),
        );
    }

    // ------------------------------------------------------------------
    // Resilient finish: adoption, re-execution, backup replication
    // ------------------------------------------------------------------

    /// Poll the transport's dead-place set and adopt any newly-dead places
    /// into a resilient root: zero their accounting and re-execute the
    /// registered command descriptors that were destined to them. Cheap
    /// no-op (one atomic compare) when nothing new has died. Disabled by
    /// `Config::resilient_finish = false` — the deliberately-broken
    /// configuration the DST mutation-smoke test catches.
    pub(crate) fn resilient_recover(&self, root: &RootState) {
        if !self.g.cfg.resilient_finish {
            return;
        }
        let dead = self.g.transport.dead_places();
        if dead.is_empty() || !root.needs_reconstruct(dead.len()) {
            return;
        }
        let dead: Vec<u32> = dead.iter().map(|p| p.0).collect();
        if let Some(lost) = root.reconstruct(&dead) {
            if let Some(h) = &self.hooks {
                h.trace.instant("finish", "resilient_adopt", root.id.seq);
            }
            for cmd in lost {
                self.reexec_cmd(root, cmd);
            }
            // Adoption reshaped the outstanding state: refresh the backup.
            self.send_backup_sync(root);
        }
    }

    /// Re-execute a lost command descriptor *at the home place* as a fresh
    /// counted local activity — the resilient re-execution rule. The
    /// handler must be idempotent and location-independent (see DESIGN.md
    /// §6); replies keyed by the descriptor id let applications dedup.
    ///
    /// No spawn note here: both producers of re-executable descriptors
    /// ([`RootState::reconstruct`], [`RootState::apply_cmd_log`])
    /// pre-account the spawn inside their own critical section, so the done
    /// latch can never observe the window between adoption zeroing the dead
    /// edges and this enqueue.
    pub(crate) fn reexec_cmd(&self, root: &RootState, cmd: crate::finish::CmdDescriptor) {
        let fin = FinishRef {
            id: root.id,
            kind: root.kind,
        };
        let body = SpawnBody::Cmd {
            handler: HandlerId(cmd.handler),
            args: cmd.args,
        };
        self.place.enqueue(Activity {
            body: body.into_task(),
            attach: Attach::Counted {
                fin,
                weight: 0,
                remote: false,
            },
            cause: self.current_cause(),
            cause_remote: false,
        });
    }

    /// Replicate a resilient root's liveness snapshot to its backup place
    /// (home+1 mod places). Best effort: a dead backup just drops the send.
    pub(crate) fn send_backup_sync(&self, root: &RootState) {
        if !self.g.cfg.resilient_finish || self.g.cfg.places < 2 {
            return;
        }
        let backup = PlaceId((self.here.0 + 1) % self.g.cfg.places as u32);
        let fin = FinishRef {
            id: root.id,
            kind: root.kind,
        };
        let snapshot = root.backup_snapshot();
        self.send_finish_msg(backup, 29, FinishMsg::BackupSync { fin, snapshot });
    }

    /// Ship a command descriptor from a remote spawner to the root's home so
    /// the home can replay it if the destination dies before running it.
    pub(crate) fn send_cmd_log(&self, fin: FinishRef, cmd: crate::finish::CmdDescriptor) {
        let sz = 33 + cmd.args.len();
        self.send_finish_msg(fin.id.home, sz, FinishMsg::CmdLog { fin, cmd });
    }

    /// Tell the backup place the finish completed and its snapshot can go.
    pub(crate) fn send_backup_release(&self, root: &RootState) {
        if !self.g.cfg.resilient_finish || self.g.cfg.places < 2 {
            return;
        }
        let backup = PlaceId((self.here.0 + 1) % self.g.cfg.places as u32);
        let fin = FinishRef {
            id: root.id,
            kind: root.kind,
        };
        self.send_finish_msg(backup, 13, FinishMsg::BackupRelease { fin });
    }

    /// Account for an activity arriving at this place from `src`.
    fn register_receipt(&self, attach: &Attach, src: u32) {
        let Attach::Counted { fin, .. } = attach else {
            return;
        };
        if fin.id.home == self.here {
            match fin.kind {
                FinishKind::Default | FinishKind::Dense | FinishKind::Resilient => {
                    match self.try_root_of(fin) {
                        Some(r) => r.note_home_receive(self.here.0, src),
                        None => self.note_stray_ctl(fin),
                    }
                }
                FinishKind::Here => {}
                k => debug_assert!(false, "unexpected home receipt under {k:?}"),
            }
        } else {
            match fin.kind {
                FinishKind::Here => {}
                _ => self.with_proxy(*fin, |p| {
                    p.on_receive(src);
                    ProxyEmit::None
                }),
            }
        }
    }

    /// Account for an activity's completion.
    pub fn on_death(&self, attach: Attach, panic: Option<String>) {
        match attach {
            Attach::Uncounted => {
                if let Some(p) = panic {
                    // Teardown aborts of blocked waits are expected when a
                    // fault killed a peer; don't spam stderr for those.
                    if !self.g.shutdown.load(Ordering::Acquire) {
                        eprintln!("[apgas] uncounted activity panicked at {}: {p}", self.here);
                    }
                    self.g.uncounted_panics.lock().push(p);
                }
            }
            Attach::Counted {
                fin,
                weight,
                remote,
            } => {
                if fin.id.home == self.here {
                    let Some(root) = self.try_root_of(&fin) else {
                        self.note_stray_ctl(&fin);
                        return;
                    };
                    if fin.kind == FinishKind::Here && weight > 0 {
                        root.note_home_weighted_death(weight, panic);
                    } else {
                        root.note_local_death(self.here.0, panic);
                    }
                } else if fin.kind == FinishKind::Here {
                    debug_assert!(weight > 0, "remote HERE activity without credit");
                    self.send_finish_msg(
                        fin.id.home,
                        16,
                        FinishMsg::CreditReturn { fin, weight, panic },
                    );
                } else {
                    self.with_proxy(fin, |p| p.on_death(remote, panic));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Spawn transmission (called from Ctx)
    // ------------------------------------------------------------------

    /// Ship an activity to `dst` (accounting already done by the caller).
    pub fn send_spawn(&self, dst: PlaceId, attach: Attach, body: SpawnBody, class: MsgClass) {
        if let Some(h) = &self.hooks {
            h.spawn_sent.inc(self.here.0);
            h.trace.instant("spawn", "send", dst.0 as u64);
        }
        // Counted spawns root their causal chain at the governing finish;
        // uncounted ones fall back to the sender's current cause (or 0).
        let root = match &attach {
            Attach::Counted { fin, .. } => Some(CausalId::pack_root(fin.id.home.0, fin.id.seq)),
            Attach::Uncounted => None,
        };
        let body_bytes = body.modeled_bytes();
        let payload: x10rt::Payload = match (self.g.cfg.codec, body) {
            // Commands always serialize — they are serializable by
            // construction, and an Inline-mode receiver dispatches WireMsg
            // payloads anyway.
            (_, SpawnBody::Cmd { handler, args }) => Box::new(WireMsg::new(
                codec::H_SPAWN,
                wire::encode_spawn_cmd(&attach, handler, &args),
            )),
            (CodecMode::Inline, SpawnBody::Closure(body)) => Box::new(SpawnMsg { attach, body }),
            (CodecMode::Bytes, SpawnBody::Closure(body)) => Box::new(WireMsg::with_inline(
                codec::H_SPAWN,
                wire::encode_spawn_closure(&attach),
                Box::new(ClosureCell(body)),
            )),
        };
        self.send_env_rooted(
            Envelope::new(self.here, dst, class, body_bytes, payload),
            root,
        );
    }
}
