//! Team collectives — `x10.util.Team` (§3.3).
//!
//! Teams offer HPC-style collectives (Barrier, Broadcast, Reduce,
//! All-Reduce, All-To-All, All-Gather). On the Power 775 these map to PAMI
//! hardware collectives; on everything else X10 ships an **emulation layer**
//! over point-to-point messages — that layer is what this module implements:
//! dissemination barrier, binomial-tree broadcast/reduce, reduce+broadcast
//! all-reduce, and pairwise all-to-all.
//!
//! Usage discipline (same as X10/MPI): team operations are *collective* —
//! every member place must call the same operations in the same order, one
//! calling activity per place. Each operation consumes one sequence number
//! per member, which is how concurrent/back-to-back collectives are kept
//! apart on the wire.

use crate::ctx::Ctx;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;
use x10rt::{Envelope, MsgClass, PlaceId};

/// Reduction operators for the numeric convenience wrappers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TeamOp {
    /// Sum.
    Add,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Wire payload of one collective fragment.
pub struct TeamWire {
    /// Team id.
    pub team: u64,
    /// Operation sequence number.
    pub seq: u64,
    /// Algorithm round (dissemination step / tree level tag).
    pub round: u32,
    /// Sender's rank within the team.
    pub src_rank: u32,
    /// The data.
    pub data: Box<dyn Any + Send>,
}

/// Per-place mailbox of collective fragments plus the per-team op counters.
#[derive(Default)]
pub struct TeamInbox {
    msgs: HashMap<(u64, u64, u32, u32), Box<dyn Any + Send>>,
    seqs: HashMap<u64, u64>,
}

impl TeamInbox {
    /// Store an arriving fragment.
    pub fn deliver(&mut self, w: TeamWire) {
        let prev = self
            .msgs
            .insert((w.team, w.seq, w.round, w.src_rank), w.data);
        debug_assert!(prev.is_none(), "duplicate team fragment");
    }

    fn has(&self, key: (u64, u64, u32, u32)) -> bool {
        self.msgs.contains_key(&key)
    }

    fn take(&mut self, key: (u64, u64, u32, u32)) -> Option<Box<dyn Any + Send>> {
        self.msgs.remove(&key)
    }

    fn next_seq(&mut self, team: u64) -> u64 {
        let e = self.seqs.entry(team).or_insert(0);
        *e += 1;
        *e
    }
}

/// Sizing hook for wire-byte accounting of collective payloads.
pub trait WireSize {
    /// Modeled serialized size in bytes.
    fn wire_size(&self) -> usize;
}

macro_rules! prim_wire {
    ($($t:ty),*) => {$(
        impl WireSize for $t {
            fn wire_size(&self) -> usize { std::mem::size_of::<$t>() }
        }
    )*};
}
prim_wire!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        8 + self.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<A: WireSize, B: WireSize, C: WireSize> WireSize for (A, B, C) {
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size()
    }
}

impl WireSize for String {
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

impl<T: WireSize, const N: usize> WireSize for [T; N] {
    fn wire_size(&self) -> usize {
        self.iter().map(WireSize::wire_size).sum()
    }
}

/// A group of places participating in collectives, with dense ranks.
#[derive(Clone)]
pub struct Team {
    id: u64,
    members: Arc<Vec<PlaceId>>,
}

impl Team {
    /// A team over an explicit member list. Construct once (any place) and
    /// capture the clone in the activities that will call collectives —
    /// team identity is in the id, carried by the clone.
    pub fn new(ctx: &Ctx, members: Vec<PlaceId>) -> Self {
        assert!(!members.is_empty(), "team needs members");
        Team {
            id: ctx.next_global_id(),
            members: Arc::new(members),
        }
    }

    /// The team of all places (X10 `Team.WORLD`).
    pub fn world(ctx: &Ctx) -> Self {
        Team::new(ctx, ctx.places().collect())
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Member places.
    pub fn members(&self) -> &[PlaceId] {
        &self.members
    }

    /// Rank of `p` within the team, if a member.
    pub fn rank_of(&self, p: PlaceId) -> Option<usize> {
        self.members.iter().position(|&m| m == p)
    }

    /// Rank of the calling place.
    ///
    /// # Panics
    /// Panics if the calling place is not a member.
    pub fn rank(&self, ctx: &Ctx) -> usize {
        self.rank_of(ctx.here())
            .unwrap_or_else(|| panic!("{} is not a member of this team", ctx.here()))
    }

    fn begin(&self, ctx: &Ctx) -> u64 {
        ctx.worker().place.team.lock().next_seq(self.id)
    }

    fn send(
        &self,
        ctx: &Ctx,
        seq: u64,
        round: u32,
        dst_rank: usize,
        data: Box<dyn Any + Send>,
        bytes: usize,
    ) {
        let me = self.rank(ctx) as u32;
        let dst = self.members[dst_rank];
        if dst == ctx.here() {
            ctx.worker().place.team.lock().deliver(TeamWire {
                team: self.id,
                seq,
                round,
                src_rank: me,
                data,
            });
            return;
        }
        let msg = TeamWire {
            team: self.id,
            seq,
            round,
            src_rank: me,
            data,
        };
        // Same modeled `bytes` in either codec mode; `Bytes` serializes the
        // wire-supported data types and ships anything else as an inline
        // part (see `PROTOCOL.md` §4.3).
        let payload: x10rt::Payload = match ctx.worker().g.cfg.codec {
            x10rt::CodecMode::Inline => Box::new(msg),
            x10rt::CodecMode::Bytes => {
                let (args, td) = crate::wire::encode_team_wire(msg);
                match td {
                    crate::wire::TeamData::Encoded => {
                        Box::new(x10rt::WireMsg::new(x10rt::codec::H_TEAM, args))
                    }
                    crate::wire::TeamData::Opaque(d) => {
                        Box::new(x10rt::WireMsg::with_inline(x10rt::codec::H_TEAM, args, d))
                    }
                }
            }
        };
        ctx.worker().send_env(Envelope::new(
            ctx.here(),
            dst,
            MsgClass::Team,
            bytes,
            payload,
        ));
    }

    fn recv(&self, ctx: &Ctx, seq: u64, round: u32, src_rank: usize) -> Box<dyn Any + Send> {
        let key = (self.id, seq, round, src_rank as u32);
        let inbox: &Mutex<TeamInbox> = &ctx.worker().place.team;
        ctx.wait_until(|| inbox.lock().has(key));
        inbox.lock().take(key).expect("fragment vanished")
    }

    fn recv_typed<T: 'static>(&self, ctx: &Ctx, seq: u64, round: u32, src_rank: usize) -> T {
        *self
            .recv(ctx, seq, round, src_rank)
            .downcast::<T>()
            .expect("team fragment type mismatch — collectives called out of order?")
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Dissemination barrier: ⌈log₂ n⌉ rounds, every place sends and
    /// receives one token per round.
    pub fn barrier(&self, ctx: &Ctx) {
        let n = self.size();
        if n == 1 {
            return;
        }
        let span = ctx.trace().and_then(|t| t.span_start());
        let me = self.rank(ctx);
        let seq = self.begin(ctx);
        let mut k = 0u32;
        let mut dist = 1usize;
        while dist < n {
            self.send(ctx, seq, k, (me + dist) % n, Box::new(()), 0);
            let from = (me + n - dist) % n;
            let _ = self.recv(ctx, seq, k, from);
            dist *= 2;
            k += 1;
        }
        if let Some(t) = ctx.trace() {
            t.span_end(span, "team", "barrier", self.id);
        }
    }

    /// Binomial-tree broadcast from `root_rank`. The root passes
    /// `Some(value)`, everyone else `None`; all members return the value.
    pub fn broadcast<T>(&self, ctx: &Ctx, root_rank: usize, value: Option<T>) -> T
    where
        T: Clone + Send + WireSize + 'static,
    {
        let n = self.size();
        let span = ctx.trace().and_then(|t| t.span_start());
        let me = self.rank(ctx);
        let seq = self.begin(ctx);
        let rel = (me + n - root_rank) % n;
        // Standard binomial broadcast: receive from the parent below our
        // lowest set bit, then fan out to children at all lower bits.
        let mut mask = 1usize;
        let v: T;
        loop {
            if mask >= n {
                v = value.expect("broadcast root must supply the value");
                break;
            }
            if rel & mask != 0 {
                let parent = ((rel - mask) + root_rank) % n;
                v = self.recv_typed::<T>(ctx, seq, 0, parent);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            let child_rel = rel + mask;
            if child_rel < n {
                let child = (child_rel + root_rank) % n;
                let bytes = v.wire_size();
                self.send(ctx, seq, 0, child, Box::new(v.clone()), bytes);
            }
            mask >>= 1;
        }
        if let Some(t) = ctx.trace() {
            t.span_end(span, "team", "broadcast", self.id);
        }
        v
    }

    /// Binomial-tree reduction to `root_rank` with a caller-supplied
    /// combining operator. Returns `Some(result)` at the root, `None`
    /// elsewhere.
    pub fn reduce<T>(
        &self,
        ctx: &Ctx,
        root_rank: usize,
        value: T,
        op: impl Fn(T, T) -> T,
    ) -> Option<T>
    where
        T: Send + WireSize + 'static,
    {
        let n = self.size();
        let span = ctx.trace().and_then(|t| t.span_start());
        let me = self.rank(ctx);
        let seq = self.begin(ctx);
        let rel = (me + n - root_rank) % n;
        let result = (|| {
            let mut acc = value;
            let mut bit = 1usize;
            while bit < n {
                if rel & bit != 0 {
                    // Send accumulated value to the partner below and stop.
                    let dst_rel = rel & !bit;
                    let dst = (dst_rel + root_rank) % n;
                    let bytes = acc.wire_size();
                    self.send(ctx, seq, 0, dst, Box::new(acc), bytes);
                    return None;
                }
                let src_rel = rel | bit;
                if src_rel < n {
                    let other = self.recv_typed::<T>(ctx, seq, 0, (src_rel + root_rank) % n);
                    acc = op(acc, other);
                }
                bit <<= 1;
            }
            Some(acc)
        })();
        if let Some(t) = ctx.trace() {
            t.span_end(span, "team", "reduce", self.id);
        }
        result
    }

    /// All-reduce: binomial reduce to rank 0, then broadcast the result.
    pub fn allreduce<T>(&self, ctx: &Ctx, value: T, op: impl Fn(T, T) -> T) -> T
    where
        T: Clone + Send + WireSize + 'static,
    {
        let reduced = self.reduce(ctx, 0, value, op);
        self.broadcast(ctx, 0, reduced)
    }

    /// Element-wise all-reduce over equal-length vectors (the K-Means
    /// pattern: summing per-place centroid accumulators).
    pub fn allreduce_vec(&self, ctx: &Ctx, value: Vec<f64>, op: TeamOp) -> Vec<f64> {
        self.allreduce(ctx, value, |mut a, b| {
            assert_eq!(a.len(), b.len(), "allreduce_vec length mismatch");
            for (x, y) in a.iter_mut().zip(b) {
                *x = match op {
                    TeamOp::Add => *x + y,
                    TeamOp::Min => x.min(y),
                    TeamOp::Max => x.max(y),
                };
            }
            a
        })
    }

    /// All-reduce of `(value, index)` pairs keeping the maximum by value —
    /// MPI's MAXLOC, used by HPL's distributed pivot search.
    pub fn allreduce_maxloc(&self, ctx: &Ctx, value: f64, loc: u64) -> (f64, u64) {
        self.allreduce(ctx, (value, loc), |a, b| if b.0 > a.0 { b } else { a })
    }

    /// Pairwise-exchange all-to-all: member `i` supplies `chunks[j]` for
    /// every member `j` and receives the vector of chunks addressed to it,
    /// indexed by source rank. This is the FFT global-transpose workhorse.
    pub fn alltoall<T>(&self, ctx: &Ctx, mut chunks: Vec<T>) -> Vec<T>
    where
        T: Send + WireSize + 'static,
    {
        let n = self.size();
        assert_eq!(chunks.len(), n, "alltoall needs one chunk per member");
        let span = ctx.trace().and_then(|t| t.span_start());
        let me = self.rank(ctx);
        let seq = self.begin(ctx);
        // Send in a rotated order to avoid synchronized hot-spots, keeping
        // our own chunk aside.
        let mut out: Vec<Option<T>> = chunks.drain(..).map(Some).collect();
        let mine = out[me].take().expect("own chunk");
        for d in 1..n {
            let dst = (me + d) % n;
            let chunk = out[dst].take().expect("chunk already sent");
            let bytes = chunk.wire_size();
            self.send(ctx, seq, 0, dst, Box::new(chunk), bytes);
        }
        let mut result: Vec<Option<T>> = (0..n).map(|_| None).collect();
        result[me] = Some(mine);
        for d in 1..n {
            let src = (me + n - d) % n;
            result[src] = Some(self.recv_typed::<T>(ctx, seq, 0, src));
        }
        let res = result
            .into_iter()
            .map(|c| c.expect("missing alltoall chunk"))
            .collect();
        if let Some(t) = ctx.trace() {
            t.span_end(span, "team", "alltoall", self.id);
        }
        res
    }

    /// Gather to `root_rank`: the root receives every member's value
    /// indexed by rank (`Some(values)` at the root, `None` elsewhere).
    pub fn gather<T>(&self, ctx: &Ctx, root_rank: usize, value: T) -> Option<Vec<T>>
    where
        T: Send + WireSize + 'static,
    {
        let me = self.rank(ctx);
        let gathered = self.reduce(
            ctx,
            root_rank,
            vec![(me as u64, value)],
            |mut a: Vec<(u64, T)>, b| {
                a.extend(b);
                a
            },
        );
        gathered.map(|mut all| {
            all.sort_by_key(|&(r, _)| r);
            debug_assert_eq!(all.len(), self.size());
            all.into_iter().map(|(_, v)| v).collect()
        })
    }

    /// Scatter from `root_rank`: the root supplies one chunk per member
    /// (indexed by rank); every member returns its chunk.
    pub fn scatter<T>(&self, ctx: &Ctx, root_rank: usize, chunks: Option<Vec<T>>) -> T
    where
        T: Send + WireSize + 'static,
    {
        let n = self.size();
        let span = ctx.trace().and_then(|t| t.span_start());
        let me = self.rank(ctx);
        let seq = self.begin(ctx);
        let res = if me == root_rank {
            let mut chunks = chunks.expect("scatter root must supply the chunks");
            assert_eq!(chunks.len(), n, "scatter needs one chunk per member");
            let mut mine: Option<T> = None;
            for (rank, chunk) in chunks.drain(..).enumerate().rev() {
                if rank == me {
                    mine = Some(chunk);
                } else {
                    let bytes = chunk.wire_size();
                    self.send(ctx, seq, 0, rank, Box::new(chunk), bytes);
                }
            }
            mine.expect("own chunk")
        } else {
            self.recv_typed::<T>(ctx, seq, 0, root_rank)
        };
        if let Some(t) = ctx.trace() {
            t.span_end(span, "team", "scatter", self.id);
        }
        res
    }

    /// Split into disjoint sub-teams by color: members whose `color(rank)`
    /// agree land in the same sub-team, ranked by their old rank order.
    /// Purely local and deterministic (no communication): every member
    /// computes the same member lists, and the sub-team id is derived by
    /// hashing, so all members agree on it.
    pub fn split(&self, ctx: &Ctx, color: impl Fn(usize) -> u64) -> Team {
        let me = self.rank(ctx);
        let my_color = color(me);
        let members: Vec<PlaceId> = self
            .members
            .iter()
            .enumerate()
            .filter(|&(r, _)| color(r) == my_color)
            .map(|(_, &p)| p)
            .collect();
        // Derived id: FNV-style hash of (parent id, color) — disjoint from
        // the small sequential ids the runtime counter hands out.
        let mut id = 0xcbf2_9ce4_8422_2325u64 ^ self.id;
        id = id.wrapping_mul(0x100_0000_01b3) ^ my_color;
        id = id.wrapping_mul(0x100_0000_01b3) | (1 << 63);
        Team {
            id,
            members: Arc::new(members),
        }
    }

    /// All-gather: every member contributes one value and receives all of
    /// them indexed by rank (binomial gather to rank 0, then broadcast).
    pub fn allgather<T>(&self, ctx: &Ctx, value: T) -> Vec<T>
    where
        T: Clone + Send + WireSize + 'static,
    {
        let me = self.rank(ctx);
        let gathered = self.reduce(
            ctx,
            0,
            vec![(me as u64, value)],
            |mut a: Vec<(u64, T)>, b| {
                a.extend(b);
                a
            },
        );
        let mut all = self.broadcast(ctx, 0, gathered);
        all.sort_by_key(|&(r, _)| r);
        assert_eq!(all.len(), self.size(), "allgather lost contributions");
        all.into_iter().map(|(_, v)| v).collect()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(3.0f64.wire_size(), 8);
        assert_eq!(vec![1u32, 2, 3].wire_size(), 8 + 12);
        assert_eq!((1u64, 2.0f64).wire_size(), 16);
        assert_eq!("abc".to_string().wire_size(), 11);
        assert_eq!([1.0f64; 4].wire_size(), 32);
    }

    #[test]
    fn inbox_seq_and_delivery() {
        let mut ib = TeamInbox::default();
        assert_eq!(ib.next_seq(7), 1);
        assert_eq!(ib.next_seq(7), 2);
        assert_eq!(ib.next_seq(8), 1);
        ib.deliver(TeamWire {
            team: 7,
            seq: 1,
            round: 0,
            src_rank: 3,
            data: Box::new(42u32),
        });
        assert!(ib.has((7, 1, 0, 3)));
        let v = ib.take((7, 1, 0, 3)).unwrap();
        assert_eq!(*v.downcast::<u32>().unwrap(), 42);
        assert!(!ib.has((7, 1, 0, 3)));
    }
}
