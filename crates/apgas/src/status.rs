//! Live runtime introspection: the status report.
//!
//! A status report is a process-wide view of the runtime *right now* — per-
//! place run states (alive/dead, queued activities, mailbox depth, parked
//! workers, coalescer buffering), every in-flight finish root with its
//! protocol kind and liveness progress counter, the finish residue, and the
//! full name-sorted metrics dump (which carries the mailbox ring-overflow,
//! GLB steal/lifeline, and arena hit-rate counters). It renders as text
//! (for humans and crash artifacts) and JSON (for tools), is dumped
//! automatically when the finish liveness watchdog trips or a chaos cell
//! fails, and is served to any place over the transport via the `H_OBS`
//! status query (PROTOCOL.md §4).

use crate::runtime::Global;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cross-process observability-plane state hanging off [`Global`]: obs
/// shipments and status replies accepted from other ranks, the last
/// watchdog-triggered report, and the one-shot serve-shutdown shipping
/// guard.
pub(crate) struct ObsPlane {
    /// Remote [`obs::RankObs`] shipments, each paired with the local causal
    /// clock (`CausalTracer::now_ns`) read at acceptance — the skew anchor
    /// `ClusterObs::accept` shifts remote timestamps with.
    pub shipments: Mutex<Vec<(obs::RankObs, u64)>>,
    /// Status-query replies: (replying rank, text report, JSON report).
    pub status_replies: Mutex<Vec<(u32, String, String)>>,
    /// The report rendered the last time the finish watchdog tripped in
    /// this process (kept for crash artifacts).
    pub last_watchdog_report: Mutex<Option<String>>,
    /// Set once the serve-shutdown path has shipped this process's
    /// snapshot, so a re-delivered `H_SHUTDOWN` cannot ship twice.
    pub shutdown_shipped: AtomicBool,
}

impl ObsPlane {
    pub fn new() -> ObsPlane {
        ObsPlane {
            shipments: Mutex::new(Vec::new()),
            status_replies: Mutex::new(Vec::new()),
            last_watchdog_report: Mutex::new(None),
            shutdown_shipped: AtomicBool::new(false),
        }
    }
}

/// One hosted place's instantaneous state, collected under no global lock
/// (each field is an independent atomic or short critical section, so a
/// report never blocks the schedulers it describes).
struct PlaceStatus {
    place: u32,
    dead: bool,
    queue: usize,
    mailbox: usize,
    sleepers: usize,
    parks: u64,
    probing: usize,
    coalesced_bytes: u64,
    /// Resilient-finish backup snapshots this place holds for finishes
    /// homed elsewhere (nonzero after completion means a missed release).
    backup_roots: usize,
    /// (kind label, finish seq, progress events, done?)
    roots: Vec<(&'static str, u64, u64, bool)>,
}

impl PlaceStatus {
    /// Idle places are elided from reports so a 1,024-place dump stays
    /// readable; anything that could explain a stall keeps the place in.
    fn interesting(&self) -> bool {
        self.dead
            || self.queue > 0
            || self.mailbox > 0
            || self.probing > 0
            || self.coalesced_bytes > 0
            || self.backup_roots > 0
            || !self.roots.is_empty()
    }
}

fn collect(g: &Global) -> Vec<PlaceStatus> {
    let dead = g.transport.dead_places();
    let (start, count) = g
        .cfg
        .host_places
        .map(|(s, c)| (s as usize, c as usize))
        .unwrap_or((0, g.cfg.places));
    (start..start + count)
        .map(|i| {
            let p = &g.places[i];
            let roots = p
                .roots
                .lock()
                .values()
                .map(|r| (r.kind.label(), r.id.seq, r.progress_events(), r.is_done()))
                .collect();
            PlaceStatus {
                place: p.id.0,
                dead: dead.contains(&p.id),
                queue: p.queue.len(),
                mailbox: g.transport.queue_len(p.id),
                sleepers: p.sleepers.load(Ordering::Relaxed),
                parks: p.parks.load(Ordering::Relaxed),
                probing: p.probing.load(Ordering::Relaxed),
                coalesced_bytes: p.coalesced_bytes.load(Ordering::Relaxed),
                backup_roots: p.backup_roots.lock().len(),
                roots,
            }
        })
        .collect()
}

/// Render the process-wide status report as human-readable text.
pub(crate) fn report_text(g: &Global) -> String {
    let states = collect(g);
    let dead = g.transport.dead_places();
    let (start, count) = g
        .cfg
        .host_places
        .map(|(s, c)| (s as usize, c as usize))
        .unwrap_or((0, g.cfg.places));
    let mut s = String::new();
    let _ = writeln!(
        s,
        "runtime status: rank {} hosts places {}..{} of {} ({})",
        g.rank(),
        start,
        start + count,
        g.cfg.places,
        match g.cfg.executor_threads {
            Some(t) => format!("M:N, {t} executor threads"),
            None => format!("{} worker(s)/place", g.cfg.workers_per_place),
        }
    );
    let _ = writeln!(
        s,
        "shutdown: {}  dead places: {:?}",
        g.shutdown.load(Ordering::Acquire),
        dead.iter().map(|p| p.0).collect::<Vec<_>>()
    );
    let mut elided = 0usize;
    for ps in &states {
        if !ps.interesting() {
            elided += 1;
            continue;
        }
        let _ = writeln!(
            s,
            "place {}: {}  queue {}  mailbox {}  sleepers {}  parks {}  \
             probing {}  coalesced_bytes {}  backup_roots {}",
            ps.place,
            if ps.dead { "DEAD" } else { "alive" },
            ps.queue,
            ps.mailbox,
            ps.sleepers,
            ps.parks,
            ps.probing,
            ps.coalesced_bytes,
            ps.backup_roots
        );
        for (kind, seq, progress, done) in &ps.roots {
            let _ = writeln!(
                s,
                "  finish[{kind}] seq {seq}: progress {progress}, {}",
                if *done { "done" } else { "open" }
            );
        }
    }
    if elided > 0 {
        let _ = writeln!(s, "({elided} idle place(s) elided)");
    }
    let residue = g.residue();
    let _ = writeln!(
        s,
        "finish residue: roots {}  proxies {}  dense_pending {}",
        residue.roots, residue.proxies, residue.dense_pending
    );
    let _ = writeln!(s, "uncounted panics: {}", g.uncounted_panics.lock().len());
    if let Some(o) = &g.obs {
        s.push_str("# metrics\n");
        s.push_str(&o.metrics_text());
    }
    s
}

/// Render the process-wide status report as JSON (same data as
/// [`report_text`]; active places only, with an elided-idle count).
pub(crate) fn report_json(g: &Global) -> String {
    let states = collect(g);
    let dead = g.transport.dead_places();
    let (start, count) = g
        .cfg
        .host_places
        .map(|(s, c)| (s as usize, c as usize))
        .unwrap_or((0, g.cfg.places));
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"rank\": {}, \"places\": {}, \"hosted\": [{}, {}], \"shutdown\": {}, ",
        g.rank(),
        g.cfg.places,
        start,
        count,
        g.shutdown.load(Ordering::Acquire)
    );
    let _ = write!(
        s,
        "\"dead\": [{}], ",
        dead.iter()
            .map(|p| p.0.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    s.push_str("\"place_states\": [");
    let mut first = true;
    let mut elided = 0usize;
    for ps in &states {
        if !ps.interesting() {
            elided += 1;
            continue;
        }
        if !first {
            s.push_str(", ");
        }
        first = false;
        let _ = write!(
            s,
            "{{\"place\": {}, \"dead\": {}, \"queue\": {}, \"mailbox\": {}, \
             \"sleepers\": {}, \"parks\": {}, \"probing\": {}, \
             \"coalesced_bytes\": {}, \"backup_roots\": {}, \"roots\": [",
            ps.place,
            ps.dead,
            ps.queue,
            ps.mailbox,
            ps.sleepers,
            ps.parks,
            ps.probing,
            ps.coalesced_bytes,
            ps.backup_roots
        );
        for (i, (kind, seq, progress, done)) in ps.roots.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"kind\": \"{kind}\", \"seq\": {seq}, \"progress\": {progress}, \
                 \"done\": {done}}}"
            );
        }
        s.push_str("]}");
    }
    let residue = g.residue();
    let _ = write!(
        s,
        "], \"idle_places\": {elided}, \"residue\": {{\"roots\": {}, \
         \"proxies\": {}, \"dense_pending\": {}}}, \"uncounted_panics\": {}",
        residue.roots,
        residue.proxies,
        residue.dense_pending,
        g.uncounted_panics.lock().len()
    );
    if let Some(o) = &g.obs {
        let _ = write!(s, ", \"metrics\": {}", o.metrics_json());
    }
    s.push('}');
    s
}

/// A cloneable read-only handle on a runtime's status reports, detachable
/// from the [`crate::Runtime`] itself — the chaos harness smuggles one out
/// of a failing cell (alongside its `Obs`) so failure artifacts can include
/// the last watchdog report even while the cell thread is wedged.
#[derive(Clone)]
pub struct StatusHandle {
    pub(crate) g: Arc<Global>,
}

impl StatusHandle {
    /// The live status report as text (see [`crate::Runtime::status_report`]).
    pub fn text(&self) -> String {
        report_text(&self.g)
    }

    /// The live status report as JSON.
    pub fn json(&self) -> String {
        report_json(&self.g)
    }

    /// The report rendered the last time the finish watchdog tripped in
    /// this process, if it ever did.
    pub fn last_watchdog_report(&self) -> Option<String> {
        self.g.obs_plane.last_watchdog_report.lock().clone()
    }
}
