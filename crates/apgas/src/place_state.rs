//! Per-place shared state: the activity queue, finish tables, registries and
//! the worker wake-up machinery.

use crate::clock::ClockTables;
use crate::finish::dense::DenseAggregator;
use crate::finish::proxy::Proxy;
use crate::finish::root::RootState;
use crate::finish::{Attach, BackupSnapshot, FinishId};
use crate::team::TeamInbox;
use crate::worker::TaskFn;
use crossbeam_deque::Injector;
use parking_lot::{Condvar, Mutex, ReentrantMutex};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize};
use std::sync::Arc;
use x10rt::PlaceId;

/// A schedulable activity: its body plus its termination-detection
/// attachment.
pub struct Activity {
    /// The closure to run.
    pub body: TaskFn,
    /// How `finish` tracks it.
    pub attach: Attach,
    /// The causal identity of the message chain this activity belongs to
    /// (`None` when causal tracing is off or the chain has no recorded
    /// cause). Wire-arrived activities carry their spawn message's id;
    /// locally-spawned activities inherit their parent's id unchanged, so
    /// dependency chains stay unbroken through place-local hops.
    pub cause: Option<obs::causal::CausalId>,
    /// Did this activity arrive over the wire? Only wire arrivals record an
    /// execution span against `cause` — a local spawn sharing its parent's
    /// id must not add a second execution to the same DAG node.
    pub cause_remote: bool,
}

/// All state belonging to one place.
pub struct PlaceState {
    /// This place's id.
    pub id: PlaceId,
    /// Ready activities (FIFO injector; workers of this place pop from it).
    pub queue: Injector<Activity>,
    /// Condvar protocol for idle workers.
    pub wake_mutex: Mutex<()>,
    /// Signalled whenever a message or activity arrives.
    pub wake_cv: Condvar,
    /// Number of workers currently parked (wake fast-path check).
    pub sleepers: AtomicUsize,
    /// Times a worker of this place actually went to sleep (scheduler
    /// diagnostic; the aggregation ablation reports it).
    pub parks: AtomicU64,
    /// Finish roots homed at this place, by home-local sequence number.
    pub roots: Mutex<HashMap<u64, Arc<RootState>>>,
    /// Source of home-local finish sequence numbers.
    pub next_finish_seq: AtomicU64,
    /// Finish proxies for remotely-homed finishes with state at this place.
    pub proxies: Mutex<HashMap<FinishId, Proxy>>,
    /// Resilient-finish backup snapshots this place holds for finishes
    /// homed at its predecessor (home+1 replication; see DESIGN.md §6).
    /// Released when the home reports completion.
    pub backup_roots: Mutex<HashMap<FinishId, BackupSnapshot>>,
    /// FINISH_DENSE hop-aggregation buffer (this place acting as a master).
    pub dense_agg: Mutex<DenseAggregator>,
    /// Object registry backing `GlobalRef` / `PlaceLocalHandle`.
    pub registry: Mutex<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
    /// Team collective state.
    pub team: Mutex<TeamInbox>,
    /// Clock (distributed barrier) state.
    pub clocks: Mutex<ClockTables>,
    /// The place-wide lock implementing `atomic`/`when` (reentrant so nested
    /// atomic sections don't self-deadlock).
    pub atomic_lock: ReentrantMutex<()>,
    /// M:N mode: routes this place's wake-ups to the executor pool (marks
    /// the place's context runnable and kicks a sleeping executor) instead
    /// of the thread condvar above. Installed once at runtime construction,
    /// before any worker runs.
    pub mplex_waker: std::sync::OnceLock<Arc<dyn Fn() + Send + Sync>>,
    /// Activities of this place currently paused inside a `Ctx::probe`
    /// pump. Maintained only in deterministic mode: a probing activity has
    /// application work to continue even when every queue is empty, and the
    /// schedule controller must keep granting the place quanta to advance
    /// it (unlike a `wait_until` pause, which only a delivery can unblock).
    pub probing: AtomicUsize,
    /// Modeled bytes currently buffered in this place's worker coalescer
    /// (published by the worker after every buffered send and every flush;
    /// read by the status report). A gauge, not a counter.
    pub coalesced_bytes: AtomicU64,
}

impl PlaceState {
    /// Fresh state for place `id`.
    pub fn new(id: PlaceId) -> Self {
        PlaceState {
            id,
            queue: Injector::new(),
            wake_mutex: Mutex::new(()),
            wake_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            parks: AtomicU64::new(0),
            roots: Mutex::new(HashMap::new()),
            next_finish_seq: AtomicU64::new(1),
            proxies: Mutex::new(HashMap::new()),
            backup_roots: Mutex::new(HashMap::new()),
            dense_agg: Mutex::new(DenseAggregator::new()),
            registry: Mutex::new(HashMap::new()),
            team: Mutex::new(TeamInbox::default()),
            clocks: Mutex::new(ClockTables::default()),
            atomic_lock: ReentrantMutex::new(()),
            mplex_waker: std::sync::OnceLock::new(),
            probing: AtomicUsize::new(0),
            coalesced_bytes: AtomicU64::new(0),
        }
    }

    /// Wake any parked worker of this place. In M:N mode the place's worker
    /// is a parked *context*, not a parked thread, so the wake is routed to
    /// the executor pool unconditionally (the pool does its own
    /// sleeper-count fast path).
    pub fn wake(&self) {
        if let Some(w) = self.mplex_waker.get() {
            w();
            return;
        }
        if self.sleepers.load(std::sync::atomic::Ordering::Acquire) > 0 {
            let _g = self.wake_mutex.lock();
            self.wake_cv.notify_all();
        }
    }

    /// Enqueue an activity and wake a worker.
    pub fn enqueue(&self, act: Activity) {
        self.queue.push(act);
        self.wake();
    }
}
