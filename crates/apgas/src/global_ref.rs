//! Global references and place-local handles.
//!
//! `GlobalRef(obj)` computes a reference that "can be passed freely from
//! place to place but only dereferenced at the home place" (§2.1). X10's
//! type checker enforces the home-only dereference statically; here it is a
//! runtime check with the same error condition.
//!
//! `PlaceLocalHandle` is the standard-library companion: one logical handle
//! resolving to an independent per-place object, initialized by a place-group
//! broadcast.

use crate::ctx::Ctx;
use crate::place_group::PlaceGroup;
use std::marker::PhantomData;
use std::sync::Arc;
use x10rt::PlaceId;

/// A reference to an object living at a specific place.
///
/// Cheap to copy and to capture in spawned closures; dereferencing
/// ([`GlobalRef::get`]) is only legal at [`GlobalRef::home`].
pub struct GlobalRef<T: Send + Sync + 'static> {
    home: PlaceId,
    key: u64,
    _m: PhantomData<fn() -> T>,
}

impl<T: Send + Sync + 'static> Clone for GlobalRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Send + Sync + 'static> Copy for GlobalRef<T> {}

impl<T: Send + Sync + 'static> GlobalRef<T> {
    /// Register `value` at the current place and return a global reference
    /// to it.
    pub fn new(ctx: &Ctx, value: T) -> Self {
        let key = ctx.next_global_id();
        ctx.register_object(key, Arc::new(value));
        GlobalRef {
            home: ctx.here(),
            key,
            _m: PhantomData,
        }
    }

    /// The place where the referent lives.
    pub fn home(&self) -> PlaceId {
        self.home
    }

    /// Dereference at the home place.
    ///
    /// # Panics
    /// Panics when called away from home (X10 rejects this statically) or
    /// after [`GlobalRef::free`].
    pub fn get(&self, ctx: &Ctx) -> Arc<T> {
        assert_eq!(
            ctx.here(),
            self.home,
            "GlobalRef dereferenced at {} but its home is {} — X10's type \
             checker rejects this statically",
            ctx.here(),
            self.home
        );
        ctx.lookup_object(self.key)
            .unwrap_or_else(|| panic!("GlobalRef {} already freed", self.key))
            .downcast::<T>()
            .expect("GlobalRef type confusion")
    }

    /// Drop the registration (the object is freed once in-flight `Arc`s go).
    pub fn free(&self, ctx: &Ctx) {
        assert_eq!(ctx.here(), self.home, "free() away from home");
        ctx.remove_object(self.key);
    }
}

/// A handle resolving to one independent `T` per place.
pub struct PlaceLocalHandle<T: Send + Sync + 'static> {
    key: u64,
    _m: PhantomData<fn() -> T>,
}

impl<T: Send + Sync + 'static> Clone for PlaceLocalHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Send + Sync + 'static> Copy for PlaceLocalHandle<T> {}

impl<T: Send + Sync + 'static> PlaceLocalHandle<T> {
    /// Construct the per-place objects by evaluating `init` at every place
    /// of `group` (tree broadcast) and return the handle. Collective:
    /// returns once every place is initialized.
    pub fn init(
        ctx: &Ctx,
        group: &PlaceGroup,
        init: impl Fn(&Ctx) -> T + Send + Sync + 'static,
    ) -> Self {
        let key = ctx.next_global_id();
        let initf = Arc::new(init);
        group.broadcast(ctx, move |ctx| {
            ctx.register_object(key, Arc::new(initf(ctx)));
        });
        PlaceLocalHandle {
            key,
            _m: PhantomData,
        }
    }

    /// The current place's instance.
    ///
    /// # Panics
    /// Panics at places where the handle was never initialized.
    pub fn get(&self, ctx: &Ctx) -> Arc<T> {
        ctx.lookup_object(self.key)
            .unwrap_or_else(|| {
                panic!(
                    "PlaceLocalHandle {} not initialized at {}",
                    self.key,
                    ctx.here()
                )
            })
            .downcast::<T>()
            .expect("PlaceLocalHandle type confusion")
    }

    /// Remove this place's instance (call from each place to free).
    pub fn free_local(&self, ctx: &Ctx) {
        ctx.remove_object(self.key);
    }
}
