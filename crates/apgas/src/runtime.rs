//! Runtime construction, the main activity, and shutdown.

use crate::config::Config;
use crate::ctx::Ctx;
use crate::error::ApgasError;
use crate::finish::Attach;
use crate::place_state::{Activity, PlaceState};
use crate::step::StepGate;
use crate::worker::{TaskFn, Worker};
use obs::Obs;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use x10rt::codec::{self, HandlerId, WireMsg};
use x10rt::{
    CongruentAllocator, Envelope, FaultCounts, FaultTransport, LocalTransport, MsgClass, NetStats,
    PlaceId, SegmentTable, Topology, Transport,
};

/// A registered application command handler: runs with the receiving
/// activity's [`Ctx`] and the serialized argument bytes the sender passed to
/// [`Ctx::at_async_cmd`].
pub type AppHandler = Arc<dyn Fn(&Ctx, &[u8]) + Send + Sync>;

/// Shared state of one runtime instance (places, transport, allocators).
pub struct Global {
    /// Configuration the runtime was built with.
    pub cfg: Config,
    /// Place→host topology.
    pub topo: Topology,
    /// The transport connecting all places. The bare [`LocalTransport`]
    /// normally; a [`FaultTransport`] decorating it when the configuration
    /// carries a fault plan.
    pub transport: Arc<dyn Transport>,
    /// The fault-injection decorator, when one is installed (same object as
    /// [`Global::transport`], kept concretely typed for fault accounting).
    pub fault: Option<Arc<FaultTransport>>,
    /// Per-place state, indexed by place id.
    pub places: Vec<Arc<PlaceState>>,
    /// Registered-segment table (RDMA).
    pub seg_table: Arc<SegmentTable>,
    /// Congruent memory allocator.
    pub congruent: CongruentAllocator,
    /// Set to stop all worker loops.
    pub shutdown: AtomicBool,
    /// Runtime-unique id source (teams, clocks, global refs).
    pub ids: AtomicU64,
    /// Panics raised by uncounted activities (no finish to deliver them to).
    pub uncounted_panics: Mutex<Vec<String>>,
    /// Observability state (metrics + tracer); `None` with
    /// `Config::obs_disable` — every hook then reduces to this `None` check.
    pub obs: Option<Arc<Obs>>,
    /// Deterministic stepping gate; `Some` only with
    /// [`Config::deterministic`]. Workers then yield to it at the top of
    /// every scheduling quantum (see [`crate::step`]); the threaded path
    /// pays one `Option` check.
    pub step_gate: Option<Arc<StepGate>>,
    /// Application command handlers, keyed by handler id (ids ≥
    /// [`HandlerId::FIRST_APP`]; see `PROTOCOL.md` §3). Resolved at command
    /// *run* time, so registration order relative to spawns is free.
    pub(crate) handlers: RwLock<HashMap<u32, AppHandler>>,
    /// Cross-process observability-plane state: `H_OBS` shipments and
    /// status replies accepted from other ranks, the last watchdog report,
    /// and the serve-shutdown shipping guard (see [`crate::status`]).
    pub(crate) obs_plane: crate::status::ObsPlane,
}

impl Global {
    /// This process's rank tag in a multi-process launch — its first hosted
    /// place (0 for single-process runtimes). Shipped snapshots and status
    /// replies are attributed to it.
    pub(crate) fn rank(&self) -> u32 {
        self.cfg.host_places.map(|(s, _)| s).unwrap_or(0)
    }

    /// Capture this process's observability state as a rank-tagged
    /// shipment (`None` with `Config::obs_disable`).
    pub(crate) fn capture_rank_obs(&self) -> Option<obs::RankObs> {
        self.obs
            .as_ref()
            .map(|o| obs::distrib::capture(o, self.rank()))
    }

    /// Fold a remote rank's shipment into the pending set, stamped with the
    /// local causal clock (the skew anchor `ClusterObs::accept` needs).
    pub(crate) fn accept_shipment(&self, snap: obs::RankObs) {
        let now = self.obs.as_ref().map_or(0, |o| o.causal.now_ns());
        self.obs_plane.shipments.lock().push((snap, now));
    }

    /// Record a status-query reply from `rank`.
    pub(crate) fn accept_status_reply(&self, rank: u32, text: String, json: String) {
        self.obs_plane
            .status_replies
            .lock()
            .push((rank, text, json));
    }

    /// Residual finish-protocol state across all places (see
    /// [`FinishResidue`]).
    pub(crate) fn residue(&self) -> FinishResidue {
        let mut r = FinishResidue {
            roots: 0,
            proxies: 0,
            dense_pending: 0,
        };
        for p in &self.places {
            r.roots += p.roots.lock().len();
            r.proxies += p.proxies.lock().len();
            if p.dense_agg.lock().has_pending() {
                r.dense_pending += 1;
            }
        }
        r
    }

    /// [`Global::residue`] restricted to places the transport still reports
    /// alive. A killed place's tables are frozen mid-protocol — proxies and
    /// dense buffers stranded there are expected debris, not a quiescence
    /// violation; the kill-schedule oracles use this variant.
    pub(crate) fn residue_alive(&self) -> FinishResidue {
        let dead: Vec<x10rt::PlaceId> = self.transport.dead_places();
        let mut r = FinishResidue {
            roots: 0,
            proxies: 0,
            dense_pending: 0,
        };
        for p in &self.places {
            if dead.contains(&p.id) {
                continue;
            }
            r.roots += p.roots.lock().len();
            r.proxies += p.proxies.lock().len();
            if p.dense_agg.lock().has_pending() {
                r.dense_pending += 1;
            }
        }
        r
    }
}

/// Residual finish-protocol state left at the places, summed runtime-wide —
/// a quiescence oracle: after every `finish` has released and the runtime
/// is idle, all three counts must be zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FinishResidue {
    /// Finish roots still registered at their home places.
    pub roots: usize,
    /// Finish proxies still holding state for remotely-homed finishes.
    pub proxies: usize,
    /// Places whose dense-route delta aggregator still buffers undelivered
    /// deltas.
    pub dense_pending: usize,
}

impl FinishResidue {
    /// True when no residual protocol state exists anywhere.
    pub fn is_clean(&self) -> bool {
        self.roots == 0 && self.proxies == 0 && self.dense_pending == 0
    }
}

/// An APGAS runtime: `cfg.places` places, each with its own scheduler
/// thread(s), connected by an in-process X10RT transport.
///
/// The runtime is reusable: [`Runtime::run`] can be called repeatedly (the
/// benchmark harness runs many rounds on one runtime). Dropping the runtime
/// stops and joins all workers.
pub struct Runtime {
    g: Arc<Global>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Background metrics sampler, when `Config::sample_interval_ms` asked
    /// for one (stopped and joined on drop).
    sampler: Mutex<Option<obs::Sampler>>,
}

impl Runtime {
    /// Build a runtime and start its worker threads.
    pub fn new(cfg: Config) -> Self {
        Self::build(cfg, None)
    }

    /// Build a runtime over a caller-supplied transport instead of the
    /// default in-process [`LocalTransport`] — the seam the deterministic
    /// simulation harness (`crates/sim`) plugs its `SimTransport` into. A
    /// configured fault plan still wraps the supplied transport in a
    /// [`FaultTransport`], so fault injection composes with simulation.
    pub fn with_transport(cfg: Config, transport: Arc<dyn Transport>) -> Self {
        assert_eq!(
            transport.num_places(),
            cfg.places,
            "transport sized for a different number of places"
        );
        Self::build(cfg, Some(transport))
    }

    fn build(cfg: Config, external: Option<Arc<dyn Transport>>) -> Self {
        assert!(cfg.places > 0, "need at least one place");
        assert!(cfg.places <= u32::MAX as usize, "place ids are 32-bit");
        if cfg.deterministic {
            assert_eq!(
                cfg.workers_per_place, 1,
                "deterministic mode grants quanta per place, so it requires \
                 exactly one worker per place"
            );
        }
        if cfg.executor_threads.is_some() {
            assert_eq!(
                cfg.workers_per_place, 1,
                "M:N scheduling runs each place as one context, so it \
                 requires exactly one worker per place"
            );
        }
        let topo = Topology::new(cfg.places, cfg.places_per_host);
        let obs = if cfg.obs_disable {
            None
        } else {
            Some(Obs::with_causal(
                cfg.places,
                cfg.trace_enable,
                cfg.trace_buffer_events,
                cfg.causal_enable,
            ))
        };
        if let (Some(o), Some((start, _))) = (&obs, cfg.host_places) {
            // Multi-process: namespace this rank's causal sequence numbers
            // so ids minted by different ranks never collide when their
            // ring segments are stitched at rank 0 (2^40 ids per rank).
            o.causal.set_seq_base((start as u64) << 40);
        }
        let sampler = match (&obs, cfg.sample_interval_ms) {
            (Some(o), Some(ms)) => Some(obs::Sampler::start(
                o.clone(),
                ms,
                obs::sample::DEFAULT_SAMPLE_CAPACITY,
            )),
            _ => None,
        };
        let base: Arc<dyn Transport> = match external {
            Some(t) => t,
            None => {
                let mut lt =
                    LocalTransport::with_ring_capacity(cfg.places, cfg.mailbox_ring_capacity);
                if let Some(o) = &obs {
                    lt = lt.with_obs(&o.metrics);
                }
                Arc::new(lt)
            }
        };
        let (transport, fault): (Arc<dyn Transport>, Option<Arc<FaultTransport>>) =
            match &cfg.fault_plan {
                None => (base, None),
                Some(plan) => {
                    let mut ft = FaultTransport::new(base, plan.clone());
                    if let Some(o) = &obs {
                        ft = ft.with_obs(&o.metrics);
                    }
                    let ft = Arc::new(ft);
                    (ft.clone(), Some(ft))
                }
            };
        let places: Vec<Arc<PlaceState>> = (0..cfg.places)
            .map(|i| Arc::new(PlaceState::new(PlaceId(i as u32))))
            .collect();
        for p in &places {
            let ps = p.clone();
            transport.register_waker(p.id, Arc::new(move || ps.wake()));
        }
        let seg_table = Arc::new(SegmentTable::new());
        let step_gate = if cfg.deterministic {
            Some(Arc::new(StepGate::new()))
        } else {
            None
        };
        let g = Arc::new(Global {
            congruent: CongruentAllocator::new(cfg.places, seg_table.clone()),
            topo,
            transport,
            fault,
            places,
            seg_table,
            shutdown: AtomicBool::new(false),
            ids: AtomicU64::new(1),
            uncounted_panics: Mutex::new(Vec::new()),
            obs,
            step_gate,
            handlers: RwLock::new(HashMap::new()),
            obs_plane: crate::status::ObsPlane::new(),
            cfg,
        });
        // Multi-process: spawn worker threads only for the places this
        // process hosts; remote places are reached through the transport.
        let (host_start, host_count) = g
            .cfg
            .host_places
            .map(|(s, c)| (s as usize, c as usize))
            .unwrap_or((0, g.cfg.places));
        let mut handles = Vec::new();
        if let Some(threads) = g.cfg.executor_threads {
            // M:N mode: each hosted place becomes a stackful context; a
            // fixed pool of executor threads multiplexes them (see the
            // `context` and `executor` modules and DESIGN.md §"M:N place
            // scheduling"). Place counts and core counts are decoupled.
            let contexts: Vec<Arc<crate::context::PlaceContext>> = (host_start
                ..host_start + host_count)
                .map(|i| {
                    let g2 = g.clone();
                    let place = g.places[i].clone();
                    crate::context::PlaceContext::new(
                        g.cfg.context_stack_size,
                        Box::new(move || Worker::new(g2, place).main_loop()),
                    )
                })
                .collect();
            let pool = Arc::new(crate::executor::ExecutorPool::new(
                contexts,
                threads,
                g.cfg.park_timeout,
            ));
            // Route every hosted place's wake to the pool *before* any
            // executor runs: enqueues, deliveries and shutdown all funnel
            // through `PlaceState::wake`.
            for (slot, i) in (host_start..host_start + host_count).enumerate() {
                let p2 = pool.clone();
                let _ = g.places[i].mplex_waker.set(Arc::new(move || {
                    p2.wake_slot(slot);
                }));
            }
            // Deterministic M:N: a grant must rouse the granted context —
            // it polls the gate instead of blocking in step_wait.
            if let Some(gate) = &g.step_gate {
                let p2 = pool.clone();
                gate.set_grant_hook(Box::new(move |place| {
                    if let Some(slot) = (place as usize).checked_sub(host_start) {
                        if slot < host_count {
                            p2.wake_slot(slot);
                        }
                    }
                }));
            }
            for t in 0..threads {
                let p2 = pool.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("executor-{t}"))
                        .spawn(move || p2.run_executor(t))
                        .expect("spawn executor thread"),
                );
            }
        } else {
            for i in host_start..host_start + host_count {
                for w in 0..g.cfg.workers_per_place {
                    let g2 = g.clone();
                    let place = g.places[i].clone();
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("place-{i}.{w}"))
                            // Help-first waiting nests activity frames on the
                            // worker stack; give it room.
                            .stack_size(16 * 1024 * 1024)
                            .spawn(move || {
                                Worker::new(g2, place).main_loop();
                            })
                            .expect("spawn worker thread"),
                    );
                }
            }
        }
        Runtime {
            g,
            handles: Mutex::new(handles),
            sampler: Mutex::new(sampler),
        }
    }

    /// Does this process host `place` (spawn worker threads for it)?
    /// Always true without [`Config::host_places`].
    pub fn hosts_place(&self, place: PlaceId) -> bool {
        match self.g.cfg.host_places {
            None => (place.0 as usize) < self.g.cfg.places,
            Some((s, c)) => place.0 >= s && place.0 < s + c,
        }
    }

    /// Register an application command handler under `id` (ids must be ≥
    /// [`HandlerId::FIRST_APP`]; lower ids are reserved for the runtime —
    /// see `PROTOCOL.md` §3). [`Ctx::at_async_cmd`] spawns run the handler
    /// at the destination with the sender's argument bytes. Registering an
    /// id twice replaces the handler. In a multi-process launch every
    /// process must register its own handlers (ids name behavior, and
    /// behavior cannot cross the wire).
    pub fn register_handler(&self, id: HandlerId, f: impl Fn(&Ctx, &[u8]) + Send + Sync + 'static) {
        assert!(
            id.is_app(),
            "handler id #{} is in the runtime-reserved range (app ids start at {})",
            id.0,
            HandlerId::FIRST_APP.0
        );
        self.g.handlers.write().insert(id.0, Arc::new(f));
    }

    /// Serve remote work until the launch shuts down: block this thread (the
    /// workers keep running) until the shutdown flag is set — either by a
    /// remote process's [`Runtime::broadcast_shutdown`] arriving as an
    /// `H_SHUTDOWN` message, or locally. The non-zero ranks of a
    /// multi-process launch call this instead of [`Runtime::run`].
    pub fn serve(&self) {
        while !self.g.shutdown.load(Ordering::Acquire) {
            std::thread::park_timeout(std::time::Duration::from_millis(10));
        }
    }

    /// Tell every other place the launch is over: send an `H_SHUTDOWN`
    /// system message to each non-local place (remote processes release
    /// their [`Runtime::serve`] callers), then set the local shutdown flag.
    /// Rank 0 of a multi-process launch calls this after its main activity
    /// returns; single-process runtimes never need it (drop shuts down).
    pub fn broadcast_shutdown(&self) {
        let here = self
            .g
            .cfg
            .host_places
            .map(|(s, _)| PlaceId(s))
            .unwrap_or(PlaceId(0));
        for p in self.g.topo.iter() {
            if self.hosts_place(p) {
                continue;
            }
            let _ = self.g.transport.send(Envelope::new(
                here,
                p,
                MsgClass::System,
                1,
                Box::new(WireMsg::new(codec::H_SHUTDOWN, Vec::new())),
            ));
        }
        self.request_shutdown();
    }

    /// Run `f` as the main activity at place 0 (under an implicit root
    /// `finish`, as in X10) and return its result. Panics from `f` or from
    /// any activity it transitively governs propagate to the caller.
    pub fn run<R: Send + 'static>(&self, f: impl FnOnce(&Ctx) -> R + Send + 'static) -> R {
        assert!(
            self.hosts_place(PlaceId(0)),
            "run() enqueues at place 0, which this process does not host — \
             non-zero ranks call serve()"
        );
        let (tx, rx) = crossbeam_channel::bounded(1);
        let body: TaskFn = Box::new(move |ctx: &Ctx| {
            let result = catch_unwind(AssertUnwindSafe(|| ctx.finish(|c| f(c))));
            let _ = tx.send(result);
        });
        self.g.places[0].enqueue(Activity {
            body,
            attach: Attach::Uncounted,
            cause: None,
            cause_remote: false,
        });
        match rx.recv().expect("runtime workers terminated unexpectedly") {
            Ok(r) => r,
            Err(e) => resume_unwind(e),
        }
    }

    /// Like [`Runtime::run`], but fault-aware: a typed [`ApgasError`]
    /// raised by the runtime (e.g. the finish liveness watchdog detecting a
    /// dead place) is returned as an `Err` instead of propagating as a
    /// panic. Ordinary (user) panics still propagate.
    pub fn run_checked<R: Send + 'static>(
        &self,
        f: impl FnOnce(&Ctx) -> R + Send + 'static,
    ) -> Result<R, ApgasError> {
        let (tx, rx) = crossbeam_channel::bounded(1);
        let body: TaskFn = Box::new(move |ctx: &Ctx| {
            let result = catch_unwind(AssertUnwindSafe(|| ctx.finish(|c| f(c))));
            let _ = tx.send(result);
        });
        self.g.places[0].enqueue(Activity {
            body,
            attach: Attach::Uncounted,
            cause: None,
            cause_remote: false,
        });
        match rx.recv().expect("runtime workers terminated unexpectedly") {
            Ok(r) => Ok(r),
            Err(e) => match ApgasError::from_panic(&*e) {
                Some(err) => Err(err),
                None => resume_unwind(e),
            },
        }
    }

    /// Kill `place`: its mailbox black-holes, and sends to or from it fail
    /// with [`x10rt::TransportError::PlaceDead`]. Irreversible for the life
    /// of this runtime. The victim's worker threads keep running (they just
    /// lose all connectivity), mirroring a network-partitioned node.
    pub fn kill_place(&self, place: PlaceId) {
        self.g.transport.kill_place(place);
        // Wake everyone: waiters must notice the changed world and let the
        // watchdog (if armed) observe the stall.
        for p in &self.g.places {
            p.wake();
        }
    }

    /// Places the transport currently reports dead.
    pub fn dead_places(&self) -> Vec<PlaceId> {
        self.g.transport.dead_places()
    }

    /// Running totals of injected faults, when the runtime was built with a
    /// fault plan.
    pub fn fault_counts(&self) -> Option<FaultCounts> {
        self.g.fault.as_ref().map(|f| f.fault_counts())
    }

    /// Fault-layer work invisible to the transport beneath it: held
    /// (delayed) envelopes plus unfired scripted events. Zero without a
    /// fault plan. The DST controller drains this via
    /// [`Runtime::fault_poke`] before concluding a quiet network is a
    /// deadlocked one.
    pub fn fault_backlog(&self) -> usize {
        self.g
            .fault
            .as_ref()
            .map_or(0, |f| f.held_len() + f.pending_events())
    }

    /// The fault layer's logical clock (0 without a fault plan). Scripted
    /// events and delay releases are timed against this clock.
    pub fn fault_clock(&self) -> u64 {
        self.g.fault.as_ref().map_or(0, |f| f.logical_step())
    }

    /// Advance the fault layer's logical clock one trafficless step (no-op
    /// without a fault plan). See `FaultTransport::poke`.
    pub fn fault_poke(&self) {
        if let Some(f) = &self.g.fault {
            f.poke();
        }
    }

    /// Number of places.
    pub fn places(&self) -> usize {
        self.g.cfg.places
    }

    /// The place→host topology.
    pub fn topology(&self) -> &Topology {
        &self.g.topo
    }

    /// Network statistics (shared live counters).
    pub fn net_stats(&self) -> &NetStats {
        self.g.transport.stats()
    }

    /// Reset the network statistics (between benchmark phases).
    pub fn reset_net_stats(&self) {
        self.g.transport.stats().reset();
    }

    /// Observability state (metrics registry + tracer), unless the runtime
    /// was built with `Config::obs_disable`.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.g.obs.as_ref()
    }

    /// Render the current metric values as JSON (`None` when observability
    /// is disabled) — the `metrics` section of the bench output files.
    pub fn metrics_json(&self) -> Option<String> {
        self.g.obs.as_ref().map(|o| o.metrics_json())
    }

    /// Export the trace ring buffers as chrome-trace JSON, loadable in
    /// `about:tracing` / Perfetto (`None` when observability is disabled).
    /// With causal tracing on, the export includes cross-place flow events
    /// (rendered as arrows between place tracks).
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.g.obs.as_ref().map(|o| o.chrome_trace_json())
    }

    /// The metrics time series collected by the background sampler, as JSON
    /// (`None` unless the runtime was built with
    /// `Config::sample_interval_ms`).
    pub fn metrics_series_json(&self) -> Option<String> {
        self.sampler.lock().as_ref().map(|s| s.series_json())
    }

    /// Per-finish critical paths reconstructed from the causal DAG, as JSON
    /// (`None` when observability is disabled; empty paths when causal
    /// tracing never ran).
    pub fn critical_path_json(&self) -> Option<String> {
        self.g.obs.as_ref().map(|o| o.critical_path_json())
    }

    /// Human-readable critical-path report (same data as
    /// [`Runtime::critical_path_json`]).
    pub fn critical_path_text(&self) -> Option<String> {
        self.g.obs.as_ref().map(|o| o.critical_path_text())
    }

    /// Place-to-place traffic flow matrix from the causal DAG, as JSON.
    pub fn flow_matrix_json(&self) -> Option<String> {
        self.g.obs.as_ref().map(|o| o.flow_matrix_json())
    }

    // --- cluster observability plane (multi-process; PROTOCOL.md §4) ---

    /// Ask every remote process for its observability snapshot (an `H_OBS`
    /// `SnapshotRequest` to each non-hosted place; exactly one place per
    /// remote process replies) and wait — bounded by `timeout` — until the
    /// set of collected shipments goes quiet. Returns the number of remote
    /// shipments held afterwards. Rank 0 calls this *before*
    /// [`Runtime::broadcast_shutdown`]; it is a no-op (returning any
    /// already-shipped count) for single-process runtimes or with
    /// observability disabled.
    pub fn collect_cluster_obs(&self, timeout: std::time::Duration) -> usize {
        let held = || self.g.obs_plane.shipments.lock().len();
        if self.g.obs.is_none() || self.g.cfg.host_places.is_none() {
            return held();
        }
        let here = PlaceId(self.g.rank());
        let mut requested = 0usize;
        for p in self.g.topo.iter() {
            if self.hosts_place(p) {
                continue;
            }
            let body = crate::wire::encode_obs_msg(&crate::wire::ObsMsg::SnapshotRequest {
                reply_to: here.0,
            });
            let bytes = body.len();
            let _ = self.g.transport.send(Envelope::new(
                here,
                p,
                MsgClass::System,
                bytes,
                Box::new(WireMsg::new(codec::H_OBS, body)),
            ));
            requested += 1;
        }
        if requested == 0 {
            return held();
        }
        // The number of remote *processes* is unknown (only places are),
        // so wait for a quiet period: no new shipment for 250 ms once at
        // least one arrived, or the deadline.
        let deadline = std::time::Instant::now() + timeout;
        let quiet = std::time::Duration::from_millis(250);
        let mut count = held();
        let mut last_change = std::time::Instant::now();
        while std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
            let n = held();
            if n != count {
                count = n;
                last_change = std::time::Instant::now();
            } else if count > 0 && last_change.elapsed() >= quiet {
                break;
            }
        }
        count
    }

    /// The folded cluster view: the local rank's shipment plus every
    /// accepted remote shipment, timestamps shifted onto the local causal
    /// timeline (`None` with observability disabled).
    pub fn cluster_obs(&self) -> Option<obs::ClusterObs> {
        let o = self.g.obs.as_ref()?;
        let mut c = obs::ClusterObs::new(obs::distrib::capture(o, self.g.rank()));
        for (snap, at) in self.g.obs_plane.shipments.lock().iter() {
            c.accept(snap.clone(), *at);
        }
        Some(c)
    }

    /// Cluster-wide metrics as JSON: every rank's counters and histograms
    /// folded with `MetricsSnapshot::merge` under `"merged"`, per-rank
    /// snapshots under `"per_rank"`.
    pub fn cluster_metrics_json(&self) -> Option<String> {
        self.cluster_obs().map(|c| c.metrics_json())
    }

    /// Cluster-wide metrics as text: the merged name-sorted dump plus one
    /// drop-count breakdown line per rank.
    pub fn cluster_metrics_text(&self) -> Option<String> {
        self.cluster_obs().map(|c| c.metrics_text())
    }

    /// Chrome-trace JSON whose flow arrows come from the *stitched* causal
    /// DAG — a message that crossed the socket draws as an arrow between
    /// rank lanes.
    pub fn cluster_chrome_trace_json(&self) -> Option<String> {
        let o = self.g.obs.as_ref()?;
        self.cluster_obs()
            .map(|c| c.chrome_trace_json(&o.tracer.snapshot()))
    }

    /// Critical-path report over the stitched cluster DAG, as JSON.
    pub fn cluster_critical_path_json(&self) -> Option<String> {
        self.cluster_obs().map(|c| c.critical_path_json())
    }

    /// Critical-path report over the stitched cluster DAG, as text.
    pub fn cluster_critical_path_text(&self) -> Option<String> {
        self.cluster_obs().map(|c| c.critical_path_text())
    }

    // --- live introspection ---

    /// The process-wide status report as human-readable text: per-place run
    /// states, queue and mailbox depths, coalescer buffering, in-flight
    /// finish roots (protocol kind + liveness progress counter), finish
    /// residue, and the full sorted metrics dump. Also dumped automatically
    /// when the finish watchdog trips.
    pub fn status_report(&self) -> String {
        crate::status::report_text(&self.g)
    }

    /// The status report as JSON (same data as [`Runtime::status_report`]).
    pub fn status_report_json(&self) -> String {
        crate::status::report_json(&self.g)
    }

    /// The report rendered the last time the finish watchdog tripped in
    /// this process, if it ever did.
    pub fn last_watchdog_report(&self) -> Option<String> {
        self.g.obs_plane.last_watchdog_report.lock().clone()
    }

    /// A cloneable handle on this runtime's status reports, usable after
    /// the `Runtime` itself is out of reach (see [`crate::StatusHandle`]).
    pub fn status_handle(&self) -> crate::status::StatusHandle {
        crate::status::StatusHandle { g: self.g.clone() }
    }

    /// Query a remote place's process for its live status report over the
    /// transport (`H_OBS` `StatusRequest`): returns `(text, json)` from the
    /// first reply to arrive within `timeout`, `None` on timeout or when
    /// `place` is hosted locally (use [`Runtime::status_report`] then).
    pub fn remote_status(
        &self,
        place: PlaceId,
        timeout: std::time::Duration,
    ) -> Option<(String, String)> {
        if self.hosts_place(place) {
            return None;
        }
        let here = PlaceId(self.g.rank());
        let before = self.g.obs_plane.status_replies.lock().len();
        let body =
            crate::wire::encode_obs_msg(&crate::wire::ObsMsg::StatusRequest { reply_to: here.0 });
        let bytes = body.len();
        self.g
            .transport
            .send(Envelope::new(
                here,
                place,
                MsgClass::System,
                bytes,
                Box::new(WireMsg::new(codec::H_OBS, body)),
            ))
            .ok()?;
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            {
                let replies = self.g.obs_plane.status_replies.lock();
                if replies.len() > before {
                    let (_, text, json) = replies[before].clone();
                    return Some((text, json));
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        None
    }

    /// Total times any worker actually slept (scheduler diagnostic).
    pub fn total_parks(&self) -> u64 {
        self.g
            .places
            .iter()
            .map(|p| p.parks.load(std::sync::atomic::Ordering::Relaxed))
            .sum()
    }

    /// Drain panics recorded by uncounted activities.
    pub fn take_uncounted_panics(&self) -> Vec<String> {
        std::mem::take(&mut self.g.uncounted_panics.lock())
    }

    /// The deterministic stepping gate, when the runtime was built with
    /// [`Config::deterministic`]. The schedule controller (the `sim` crate)
    /// drives workers through it.
    pub fn step_gate(&self) -> Option<&Arc<StepGate>> {
        self.g.step_gate.as_ref()
    }

    /// Does `place` have local work — a queued activity, an undrained
    /// mailbox, or an activity paused inside a `Ctx::probe` pump (which
    /// will do application work as soon as it gets a quantum)? A schedule
    /// controller uses this to enumerate enabled steps.
    pub fn place_has_work(&self, place: PlaceId) -> bool {
        let ps = &self.g.places[place.0 as usize];
        !ps.queue.is_empty()
            || ps.probing.load(std::sync::atomic::Ordering::Acquire) > 0
            || self.g.transport.queue_len(place) > 0
    }

    /// Does `place` host a resilient finish root that has not yet adopted
    /// every dead place? Adoption runs in the waiting worker's quantum (the
    /// resilient wait re-polls [`Worker::resilient_recover`] each
    /// condition check), so a schedule controller must treat pending
    /// recovery as runnable work — it is invisible to [`Runtime::place_has_work`]
    /// because no queue or mailbox entry exists for it. Always `false` with
    /// `Config::resilient_finish` off: recovery will never run, and
    /// reporting it as work would mask the resulting (deliberate) wedge.
    pub fn place_needs_recovery(&self, place: PlaceId) -> bool {
        if !self.g.cfg.resilient_finish {
            return false;
        }
        let dead = self.g.transport.dead_places();
        if dead.is_empty() {
            return false;
        }
        self.g.places[place.0 as usize]
            .roots
            .lock()
            .values()
            .any(|r| r.needs_reconstruct(dead.len()))
    }

    /// Total activities queued across all places (not counting the one a
    /// worker may be executing — in deterministic mode nobody executes
    /// between quanta, so this is exact).
    pub fn total_queued(&self) -> usize {
        self.g.places.iter().map(|p| p.queue.len()).sum()
    }

    /// Residual finish-protocol state across all places — the quiescence
    /// oracle (see [`FinishResidue`]).
    pub fn finish_residue(&self) -> FinishResidue {
        self.g.residue()
    }

    /// [`Runtime::finish_residue`] counting only places still alive — the
    /// quiescence oracle for runs where places were deliberately killed
    /// (dead places legitimately strand frozen protocol state).
    pub fn finish_residue_alive(&self) -> FinishResidue {
        self.g.residue_alive()
    }

    /// Initiate shutdown without dropping the runtime: sets the shutdown
    /// flag, permanently releases the stepping gate (if any), and wakes all
    /// workers. Blocked `wait_until`s abort with the runtime-shutdown panic;
    /// the schedule controller uses this to convert a detected deadlock into
    /// a clean teardown instead of a hang.
    pub fn request_shutdown(&self) {
        self.g
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        if let Some(gate) = &self.g.step_gate {
            gate.release_all();
        }
        for p in &self.g.places {
            p.wake();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.g
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        if let Some(gate) = &self.g.step_gate {
            // Free-run the workers so teardown never waits on a controller.
            gate.release_all();
        }
        for p in &self.g.places {
            p.wake();
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}
