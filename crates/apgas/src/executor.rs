//! The shared executor pool that multiplexes place contexts over a fixed
//! number of OS threads (M:N scheduling; see `context`).
//!
//! Scheduling is deliberately simple: every executor thread scans the whole
//! context table (starting at its own offset to spread contention), claims
//! any runnable unfinished context with a CAS on its `claimed` flag, and
//! resumes it until it yields. There is no per-executor run queue and no
//! affinity — a context migrates freely to whichever executor claims it
//! next, which is exactly what the claimed-flag acquire/release handoff is
//! for.
//!
//! Wake protocol (the same Dekker pattern `PlaceState::wake` uses for
//! threads): a waker stores `runnable = true` (SeqCst) and then reads
//! `sleepers`; an executor increments `sleepers` (SeqCst) under the idle
//! lock and then re-scans for runnable contexts before sleeping. The SeqCst
//! total order means at least one side always sees the other, so a wake
//! cannot be lost; `notify_all` under the idle lock closes the window where
//! the executor holds the lock but has not started waiting yet.
//!
//! Idle executors wake on their own every `resweep` (the configured
//! `park_timeout`) and mark *every* unfinished context runnable. That
//! re-poll is what keeps time-based machinery alive — the finish watchdog,
//! GLB steal timeouts, and coalescer retry backoff all assume a parked
//! worker re-checks its condition on the park-timeout cadence.

use crate::context::PlaceContext;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub(crate) struct ExecutorPool {
    contexts: Vec<Arc<PlaceContext>>,
    threads: usize,
    sleepers: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    resweep: Duration,
}

impl ExecutorPool {
    pub(crate) fn new(
        contexts: Vec<Arc<PlaceContext>>,
        threads: usize,
        resweep: Duration,
    ) -> ExecutorPool {
        ExecutorPool {
            contexts,
            threads: threads.max(1),
            sleepers: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            // A zero resweep would busy-spin every idle executor.
            resweep: resweep.max(Duration::from_micros(10)),
        }
    }

    /// Mark one context runnable and kick a sleeping executor if any.
    pub(crate) fn wake_slot(&self, slot: usize) {
        self.contexts[slot].runnable.store(true, Ordering::SeqCst);
        self.notify_sleepers();
    }

    fn notify_sleepers(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.idle_lock.lock();
            self.idle_cv.notify_all();
        }
    }

    fn any_runnable(&self) -> bool {
        self.contexts
            .iter()
            .any(|c| !c.finished() && c.runnable.load(Ordering::SeqCst))
    }

    fn mark_all_runnable(&self) {
        for c in &self.contexts {
            if !c.finished() {
                c.runnable.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Body of one executor thread. Returns when every context has finished.
    pub(crate) fn run_executor(&self, who: usize) {
        let n = self.contexts.len();
        if n == 0 {
            return;
        }
        // Stagger scan starts so executors don't fight over context 0.
        let offset = (who * n) / self.threads;
        loop {
            let mut resumed = false;
            let mut unfinished = false;
            for i in 0..n {
                let ctx = &self.contexts[(offset + i) % n];
                if ctx.finished() {
                    continue;
                }
                unfinished = true;
                if !ctx.runnable.load(Ordering::SeqCst) {
                    continue;
                }
                if ctx.claimed.swap(true, Ordering::AcqRel) {
                    continue; // another executor is driving it right now
                }
                if ctx.finished() {
                    ctx.claimed.store(false, Ordering::Release);
                    continue;
                }
                // Clear-before-resume: wakes that land while the context
                // runs re-mark it and it gets rescanned, never lost.
                ctx.runnable.store(false, Ordering::SeqCst);
                ctx.resume();
                ctx.claimed.store(false, Ordering::Release);
                // The context may have become runnable again mid-quantum;
                // notify in case every other executor already went idle.
                if ctx.runnable.load(Ordering::SeqCst) && !ctx.finished() {
                    self.notify_sleepers();
                }
                resumed = true;
            }
            if !unfinished {
                return;
            }
            if !resumed {
                let mut guard = self.idle_lock.lock();
                self.sleepers.fetch_add(1, Ordering::SeqCst);
                let timed_out = if self.any_runnable() {
                    false
                } else {
                    self.idle_cv.wait_for(&mut guard, self.resweep).timed_out()
                };
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                drop(guard);
                if timed_out {
                    self.mark_all_runnable();
                }
            }
        }
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// N ping-pong contexts on a single executor thread: each yields between
    /// increments, all must finish — proof that a yielded context never
    /// wedges the thread.
    #[test]
    fn single_executor_interleaves_many_contexts() {
        let count = Arc::new(AtomicU64::new(0));
        let contexts: Vec<_> = (0..16)
            .map(|i| {
                let c = count.clone();
                let _ = i;
                PlaceContext::new(
                    crate::context::MIN_STACK,
                    Box::new(move || {
                        for _ in 0..8 {
                            c.fetch_add(1, Ordering::SeqCst);
                            crate::context::yield_now();
                        }
                    }),
                )
            })
            .collect();
        let pool = Arc::new(ExecutorPool::new(contexts, 1, Duration::from_micros(50)));
        // Idle-yielded contexts are only re-marked by the resweep here, so
        // this also exercises the timeout path.
        pool.run_executor(0);
        assert_eq!(count.load(Ordering::SeqCst), 16 * 8);
    }

    #[test]
    fn wake_slot_rouses_a_sleeping_executor() {
        let fired = Arc::new(AtomicU64::new(0));
        let f2 = fired.clone();
        let gate = Arc::new(AtomicU64::new(0));
        let g2 = gate.clone();
        let ctx = PlaceContext::new(
            crate::context::MIN_STACK,
            Box::new(move || {
                while g2.load(Ordering::SeqCst) == 0 {
                    crate::context::yield_now();
                }
                f2.store(1, Ordering::SeqCst);
            }),
        );
        // Long resweep: without the explicit wake the run would take ~1s.
        let pool = Arc::new(ExecutorPool::new(vec![ctx], 1, Duration::from_secs(1)));
        let p2 = pool.clone();
        let h = std::thread::spawn(move || p2.run_executor(0));
        std::thread::sleep(Duration::from_millis(30));
        gate.store(1, Ordering::SeqCst);
        let start = std::time::Instant::now();
        pool.wake_slot(0);
        h.join().unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert!(
            start.elapsed() < Duration::from_millis(900),
            "wake_slot did not rouse the sleeping executor"
        );
    }

    #[test]
    fn contexts_migrate_across_executor_threads() {
        // 32 contexts × 3 executors, every context records which thread ids
        // resumed it; with yields in between, at least one context should be
        // driven by more than one executor. (Not asserted — thread schedules
        // vary — but the run completing proves migration is at least safe.)
        let total = Arc::new(AtomicU64::new(0));
        let contexts: Vec<_> = (0..32)
            .map(|i| {
                let t = total.clone();
                let _ = i;
                PlaceContext::new(
                    crate::context::MIN_STACK,
                    Box::new(move || {
                        for _ in 0..50 {
                            t.fetch_add(1, Ordering::SeqCst);
                            crate::context::yield_now();
                        }
                    }),
                )
            })
            .collect();
        let pool = Arc::new(ExecutorPool::new(contexts, 3, Duration::from_micros(50)));
        let hs: Vec<_> = (0..3)
            .map(|w| {
                let p = pool.clone();
                std::thread::spawn(move || p.run_executor(w))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 32 * 50);
    }
}
